//! A transcript of every message that crossed the client boundary.
//!
//! The privacy claim of the paper — only statistics, losses, and model
//! parameters leave a client — becomes a testable property here: the
//! integration suite replays the log and asserts no raw sample sequences
//! appear in any payload.
//!
//! Retaining every payload forever is the original sin of this module:
//! a long tuning run clones megabytes of model blobs per round into the
//! log and never frees them. [`Retention`] fixes that — the default
//! [`Retention::Full`] keeps the historical behavior for tests, while
//! [`Retention::Counting`] (what the engine uses) keeps exact per-client
//! byte/message totals plus only a bounded window of recent payloads so
//! leak checks still have material to scan.

use ff_trace::Tracer;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Direction of a logged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server → client.
    ToClient,
    /// Client → server.
    ToServer,
}

/// One logged transmission.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Client involved.
    pub client_id: usize,
    /// Direction of travel.
    pub direction: Direction,
    /// The full encoded payload.
    pub payload: Vec<u8>,
}

/// How much payload history the log retains. Byte and message *totals*
/// are always exact regardless of mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep every payload (unbounded memory — only for short runs and
    /// the privacy test, which must scan all traffic).
    Full,
    /// Keep only the most recent `window` payloads; older ones are
    /// dropped after their bytes are counted.
    Counting {
        /// Number of recent payloads retained for leak checks.
        window: usize,
    },
}

impl Retention {
    /// The counting mode with the default leak-check window.
    pub fn counting_default() -> Retention {
        Retention::Counting { window: 256 }
    }
}

/// Exact per-client traffic totals, maintained in every retention mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientComms {
    /// Bytes sent server → this client.
    pub bytes_to_client: usize,
    /// Bytes sent this client → server.
    pub bytes_to_server: usize,
    /// Messages in either direction.
    pub messages: usize,
}

/// Durable snapshot of a [`MessageLog`]'s exact counters, as exported by
/// [`MessageLog::export_totals`]. Payloads are not part of it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogTotals {
    /// Messages recorded in either direction.
    pub recorded: usize,
    /// Total bytes sent server → clients.
    pub to_client_bytes: usize,
    /// Total bytes sent clients → server.
    pub to_server_bytes: usize,
    /// Exact per-client totals, sorted by client id.
    pub per_client: Vec<(usize, ClientComms)>,
}

#[derive(Debug, Default)]
struct LogState {
    retention: Option<Retention>, // None = Full
    window: VecDeque<LogEntry>,
    recorded: usize,
    to_client_bytes: usize,
    to_server_bytes: usize,
    per_client: BTreeMap<usize, ClientComms>,
    tracer: Tracer,
}

/// Shared, thread-safe message log.
#[derive(Debug, Clone, Default)]
pub struct MessageLog {
    inner: Arc<Mutex<LogState>>,
}

impl MessageLog {
    /// Creates an empty log with [`Retention::Full`].
    pub fn new() -> MessageLog {
        MessageLog::default()
    }

    /// Creates an empty log with the given retention mode.
    pub fn with_retention(retention: Retention) -> MessageLog {
        let log = MessageLog::new();
        log.set_retention(retention);
        log
    }

    /// Switches retention mode. Moving to `Counting` trims the retained
    /// window immediately; totals are unaffected.
    pub fn set_retention(&self, retention: Retention) {
        let mut s = self.inner.lock();
        s.retention = match retention {
            Retention::Full => None,
            r => Some(r),
        };
        trim(&mut s);
    }

    /// The current retention mode.
    pub fn retention(&self) -> Retention {
        self.inner.lock().retention.unwrap_or(Retention::Full)
    }

    /// Attaches a tracer: subsequent messages feed the
    /// `fl.msg_bytes_to_client` / `fl.msg_bytes_to_server` histograms.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.lock().tracer = tracer;
    }

    /// Records a transmission.
    pub fn record(&self, client_id: usize, direction: Direction, payload: &[u8]) {
        let mut s = self.inner.lock();
        s.recorded += 1;
        let comms = s.per_client.entry(client_id).or_default();
        comms.messages += 1;
        match direction {
            Direction::ToClient => {
                comms.bytes_to_client += payload.len();
                s.to_client_bytes += payload.len();
            }
            Direction::ToServer => {
                comms.bytes_to_server += payload.len();
                s.to_server_bytes += payload.len();
            }
        }
        if s.tracer.is_enabled() {
            let name = match direction {
                Direction::ToClient => "fl.msg_bytes_to_client",
                Direction::ToServer => "fl.msg_bytes_to_server",
            };
            s.tracer
                .record_labeled(name, client_id as u64, payload.len() as f64);
        }
        s.window.push_back(LogEntry {
            client_id,
            direction,
            payload: payload.to_vec(),
        });
        trim(&mut s);
    }

    /// Snapshot of the retained entries (all of them under
    /// [`Retention::Full`], the recent window under
    /// [`Retention::Counting`]).
    pub fn entries(&self) -> Vec<LogEntry> {
        self.inner.lock().window.iter().cloned().collect()
    }

    /// Total bytes sent in each direction: `(to_clients, to_server)`.
    /// Exact in every retention mode.
    pub fn byte_totals(&self) -> (usize, usize) {
        let s = self.inner.lock();
        (s.to_client_bytes, s.to_server_bytes)
    }

    /// Exact per-client byte/message totals, sorted by client id.
    pub fn client_totals(&self) -> Vec<(usize, ClientComms)> {
        let s = self.inner.lock();
        s.per_client.iter().map(|(&id, &c)| (id, c)).collect()
    }

    /// Number of messages recorded (not merely retained). Exact in every
    /// retention mode.
    pub fn len(&self) -> usize {
        self.inner.lock().recorded
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().recorded == 0
    }

    /// Number of payloads currently held in memory.
    pub fn retained(&self) -> usize {
        self.inner.lock().window.len()
    }

    /// Exports the exact traffic totals for durable checkpointing. The
    /// retained payload window is deliberately excluded — it exists only
    /// for leak checks on live traffic and is not part of resume state.
    pub fn export_totals(&self) -> LogTotals {
        let s = self.inner.lock();
        LogTotals {
            recorded: s.recorded,
            to_client_bytes: s.to_client_bytes,
            to_server_bytes: s.to_server_bytes,
            per_client: s.per_client.iter().map(|(&id, &c)| (id, c)).collect(),
        }
    }

    /// Overwrites the totals with a previously exported snapshot. Used on
    /// resume to fast-forward counters past replayed work; the payload
    /// window and retention mode are untouched.
    pub fn restore_totals(&self, totals: &LogTotals) {
        let mut s = self.inner.lock();
        s.recorded = totals.recorded;
        s.to_client_bytes = totals.to_client_bytes;
        s.to_server_bytes = totals.to_server_bytes;
        s.per_client = totals.per_client.iter().copied().collect();
    }

    /// Searches retained client→server payloads for a run of consecutive
    /// f64 values equal to `needle` (a fragment of raw client data). Used
    /// by the privacy test: if a client leaked its raw series, the exact
    /// little-endian byte pattern of `needle` would appear in some
    /// payload. Under [`Retention::Counting`] only the recent window is
    /// scanned — the privacy test opts into [`Retention::Full`].
    pub fn leaks_float_run(&self, needle: &[f64]) -> bool {
        if needle.is_empty() {
            return false;
        }
        let pattern: Vec<u8> = needle.iter().flat_map(|v| v.to_le_bytes()).collect();
        let s = self.inner.lock();
        s.window
            .iter()
            .filter(|e| e.direction == Direction::ToServer)
            .any(|e| {
                e.payload
                    .windows(pattern.len())
                    .any(|w| w == pattern.as_slice())
            })
    }
}

fn trim(s: &mut LogState) {
    if let Some(Retention::Counting { window }) = s.retention {
        while s.window.len() > window {
            s.window.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let log = MessageLog::new();
        log.record(0, Direction::ToClient, &[1, 2, 3]);
        log.record(0, Direction::ToServer, &[4, 5]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.byte_totals(), (3, 2));
    }

    #[test]
    fn clone_shares_state() {
        let log = MessageLog::new();
        let log2 = log.clone();
        log.record(1, Direction::ToServer, &[9]);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn detects_leaked_float_runs() {
        let log = MessageLog::new();
        let secret = [1.5f64, -2.25, 3.125];
        let mut payload = vec![0xABu8; 4];
        payload.extend(secret.iter().flat_map(|v| v.to_le_bytes()));
        log.record(0, Direction::ToServer, &payload);
        assert!(log.leaks_float_run(&secret));
        assert!(!log.leaks_float_run(&[9.0, 9.0, 9.0]));
    }

    #[test]
    fn to_client_payloads_do_not_count_as_leaks() {
        let log = MessageLog::new();
        let secret = [7.0f64, 8.0];
        let payload: Vec<u8> = secret.iter().flat_map(|v| v.to_le_bytes()).collect();
        log.record(0, Direction::ToClient, &payload);
        assert!(!log.leaks_float_run(&secret));
    }

    #[test]
    fn counting_mode_bounds_memory_but_keeps_exact_totals() {
        let log = MessageLog::with_retention(Retention::Counting { window: 4 });
        for i in 0..100usize {
            log.record(i % 3, Direction::ToServer, &[0u8; 10]);
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.retained(), 4);
        assert_eq!(log.byte_totals(), (0, 1000));
        let totals = log.client_totals();
        assert_eq!(totals.len(), 3);
        let sum: usize = totals.iter().map(|(_, c)| c.bytes_to_server).sum();
        assert_eq!(sum, 1000);
        assert_eq!(totals[0].0, 0);
        assert_eq!(totals[0].1.messages, 34);
    }

    #[test]
    fn counting_window_still_catches_recent_leaks() {
        let log = MessageLog::with_retention(Retention::Counting { window: 8 });
        let secret = [4.75f64, -1.5];
        for _ in 0..50 {
            log.record(0, Direction::ToServer, &[0u8; 16]);
        }
        let payload: Vec<u8> = secret.iter().flat_map(|v| v.to_le_bytes()).collect();
        log.record(1, Direction::ToServer, &payload);
        assert!(log.leaks_float_run(&secret));
    }

    #[test]
    fn switching_to_counting_trims_immediately() {
        let log = MessageLog::new();
        for _ in 0..10 {
            log.record(0, Direction::ToClient, &[1u8; 4]);
        }
        assert_eq!(log.retained(), 10);
        log.set_retention(Retention::Counting { window: 2 });
        assert_eq!(log.retained(), 2);
        assert_eq!(log.len(), 10);
        assert_eq!(log.byte_totals(), (40, 0));
    }

    #[test]
    fn totals_round_trip_without_payloads() {
        let log = MessageLog::with_retention(Retention::Counting { window: 2 });
        for i in 0..20usize {
            log.record(i % 3, Direction::ToServer, &[0u8; 7]);
            log.record(i % 3, Direction::ToClient, &[0u8; 11]);
        }
        let totals = log.export_totals();
        let fresh = MessageLog::with_retention(Retention::Counting { window: 2 });
        fresh.restore_totals(&totals);
        assert_eq!(fresh.len(), log.len());
        assert_eq!(fresh.byte_totals(), log.byte_totals());
        assert_eq!(fresh.client_totals(), log.client_totals());
        assert_eq!(fresh.retained(), 0, "payloads must not be restored");
        // Counters keep advancing correctly after the restore.
        fresh.record(9, Direction::ToServer, &[0u8; 5]);
        assert_eq!(fresh.len(), 41);
        assert_eq!(fresh.byte_totals(), (220, 145));
    }

    #[test]
    fn tracer_sees_per_message_byte_histograms() {
        let tracer = Tracer::enabled();
        let log = MessageLog::new();
        log.set_tracer(tracer.clone());
        log.record(0, Direction::ToClient, &[0u8; 100]);
        log.record(0, Direction::ToServer, &[0u8; 50]);
        log.record(1, Direction::ToServer, &[0u8; 25]);
        let snap = tracer.snapshot();
        let to_server: u64 = snap
            .histograms
            .iter()
            .filter(|(id, _)| id.name == "fl.msg_bytes_to_server")
            .map(|(_, h)| h.count())
            .sum();
        assert_eq!(to_server, 2);
        let to_client = snap
            .histograms
            .iter()
            .find(|(id, _)| id.name == "fl.msg_bytes_to_client")
            .map(|(_, h)| h.sum())
            .unwrap();
        assert_eq!(to_client, 100.0);
    }
}
