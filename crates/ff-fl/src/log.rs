//! A transcript of every message that crossed the client boundary.
//!
//! The privacy claim of the paper — only statistics, losses, and model
//! parameters leave a client — becomes a testable property here: the
//! integration suite replays the log and asserts no raw sample sequences
//! appear in any payload.

use parking_lot::Mutex;
use std::sync::Arc;

/// Direction of a logged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server → client.
    ToClient,
    /// Client → server.
    ToServer,
}

/// One logged transmission.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Client involved.
    pub client_id: usize,
    /// Direction of travel.
    pub direction: Direction,
    /// The full encoded payload.
    pub payload: Vec<u8>,
}

/// Shared, thread-safe message log.
#[derive(Debug, Clone, Default)]
pub struct MessageLog {
    inner: Arc<Mutex<Vec<LogEntry>>>,
}

impl MessageLog {
    /// Creates an empty log.
    pub fn new() -> MessageLog {
        MessageLog::default()
    }

    /// Records a transmission.
    pub fn record(&self, client_id: usize, direction: Direction, payload: &[u8]) {
        self.inner.lock().push(LogEntry {
            client_id,
            direction,
            payload: payload.to_vec(),
        });
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.inner.lock().clone()
    }

    /// Total bytes sent in each direction: `(to_clients, to_server)`.
    pub fn byte_totals(&self) -> (usize, usize) {
        let entries = self.inner.lock();
        let mut to_client = 0;
        let mut to_server = 0;
        for e in entries.iter() {
            match e.direction {
                Direction::ToClient => to_client += e.payload.len(),
                Direction::ToServer => to_server += e.payload.len(),
            }
        }
        (to_client, to_server)
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Searches every client→server payload for a run of consecutive f64
    /// values equal to `needle` (a fragment of raw client data). Used by the
    /// privacy test: if a client leaked its raw series, the exact little-
    /// endian byte pattern of `needle` would appear in some payload.
    pub fn leaks_float_run(&self, needle: &[f64]) -> bool {
        if needle.is_empty() {
            return false;
        }
        let pattern: Vec<u8> = needle.iter().flat_map(|v| v.to_le_bytes()).collect();
        let entries = self.inner.lock();
        entries
            .iter()
            .filter(|e| e.direction == Direction::ToServer)
            .any(|e| {
                e.payload
                    .windows(pattern.len())
                    .any(|w| w == pattern.as_slice())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let log = MessageLog::new();
        log.record(0, Direction::ToClient, &[1, 2, 3]);
        log.record(0, Direction::ToServer, &[4, 5]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.byte_totals(), (3, 2));
    }

    #[test]
    fn clone_shares_state() {
        let log = MessageLog::new();
        let log2 = log.clone();
        log.record(1, Direction::ToServer, &[9]);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn detects_leaked_float_runs() {
        let log = MessageLog::new();
        let secret = [1.5f64, -2.25, 3.125];
        let mut payload = vec![0xABu8; 4];
        payload.extend(secret.iter().flat_map(|v| v.to_le_bytes()));
        log.record(0, Direction::ToServer, &payload);
        assert!(log.leaks_float_run(&secret));
        assert!(!log.leaks_float_run(&[9.0, 9.0, 9.0]));
    }

    #[test]
    fn to_client_payloads_do_not_count_as_leaks() {
        let log = MessageLog::new();
        let secret = [7.0f64, 8.0];
        let payload: Vec<u8> = secret.iter().flat_map(|v| v.to_le_bytes()).collect();
        log.record(0, Direction::ToClient, &payload);
        assert!(!log.leaks_float_run(&secret));
    }
}
