//! Pairwise-masked secure aggregation (Bonawitz-style, simulation grade).
//!
//! The paper's privacy argument rests on clients sharing only model
//! parameters and statistics. Secure aggregation goes one step further:
//! the server learns **only the weighted sum** of client vectors, never an
//! individual client's contribution. Each ordered client pair `(i, j)`
//! derives a shared mask from a common seed; client `i` adds it, client `j`
//! subtracts it, so all masks cancel in the sum:
//!
//! `upload_i = w_i·x_i + Σ_{j>i} m(i,j) − Σ_{j<i} m(j,i)`
//! `Σ_i upload_i = Σ_i w_i·x_i`
//!
//! This module implements the masking arithmetic (the key-agreement and
//! dropout-recovery machinery of the full protocol are out of scope for an
//! in-process simulation — pair seeds are derived from a shared round
//! seed, which models the result of a Diffie–Hellman exchange).

/// Deterministic mask stream for an ordered client pair in a round.
fn pair_mask(round_seed: u64, low: usize, high: usize, dim: usize) -> Vec<f64> {
    // SplitMix64 over a seed unique to (round, pair).
    let mut state = round_seed
        ^ (low as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (high as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    (0..dim)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // Uniform in [-1, 1): bounded masks keep f64 summation exact
            // enough that cancellation error stays near machine epsilon.
            (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Client-side: masks a weighted parameter vector for secure summation.
///
/// `weight` is the FedAvg weight (`num_examples`); the server can only
/// recover `Σ weight·params` and `Σ weight`, i.e. the weighted average.
pub fn mask_contribution(
    params: &[f64],
    weight: f64,
    client_id: usize,
    n_clients: usize,
    round_seed: u64,
) -> Vec<f64> {
    assert!(client_id < n_clients, "client id out of range");
    let mut out: Vec<f64> = params.iter().map(|&p| p * weight).collect();
    for other in 0..n_clients {
        if other == client_id {
            continue;
        }
        let (low, high) = (client_id.min(other), client_id.max(other));
        let mask = pair_mask(round_seed, low, high, params.len());
        // The lower-id member of the pair adds, the higher-id subtracts.
        let sign = if client_id == low { 1.0 } else { -1.0 };
        for (o, m) in out.iter_mut().zip(mask) {
            *o += sign * m;
        }
    }
    out
}

/// Server-side: recovers the weighted average from the masked uploads and
/// the (public) total weight. Returns `None` when shapes disagree or the
/// total weight is not positive.
pub fn unmask_average(uploads: &[Vec<f64>], total_weight: f64) -> Option<Vec<f64>> {
    let first = uploads.first()?;
    let dim = first.len();
    if uploads.iter().any(|u| u.len() != dim) || total_weight <= 0.0 {
        return None;
    }
    let mut sum = vec![0.0; dim];
    for u in uploads {
        for (s, &v) in sum.iter_mut().zip(u) {
            *s += v;
        }
    }
    for s in sum.iter_mut() {
        *s /= total_weight;
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_vectors() -> Vec<(Vec<f64>, f64)> {
        vec![
            (vec![1.0, 2.0, 3.0], 10.0),
            (vec![-1.0, 0.5, 2.0], 30.0),
            (vec![4.0, -2.0, 0.0], 20.0),
        ]
    }

    #[test]
    fn masks_cancel_and_recover_weighted_average() {
        let clients = client_vectors();
        let n = clients.len();
        let uploads: Vec<Vec<f64>> = clients
            .iter()
            .enumerate()
            .map(|(i, (p, w))| mask_contribution(p, *w, i, n, 42))
            .collect();
        let total_w: f64 = clients.iter().map(|(_, w)| w).sum();
        let avg = unmask_average(&uploads, total_w).unwrap();
        // Expected weighted average.
        for (k, &a) in avg.iter().enumerate() {
            let expect: f64 = clients.iter().map(|(p, w)| p[k] * w).sum::<f64>() / total_w;
            assert!((a - expect).abs() < 1e-9, "dim {k}: {a} vs {expect}");
        }
    }

    #[test]
    fn individual_uploads_hide_the_contribution() {
        let clients = client_vectors();
        let n = clients.len();
        for (i, (p, w)) in clients.iter().enumerate() {
            let upload = mask_contribution(p, *w, i, n, 7);
            // The masked upload must differ substantially from the raw
            // weighted vector in every dimension (masks are dense).
            let mut hidden = 0;
            for (u, &raw) in upload.iter().zip(p) {
                if (u - raw * w).abs() > 1e-6 {
                    hidden += 1;
                }
            }
            assert_eq!(hidden, p.len(), "client {i} leaked raw dimensions");
        }
    }

    #[test]
    fn different_rounds_use_different_masks() {
        let (p, w) = (&[1.0, 2.0][..], 5.0);
        let a = mask_contribution(p, w, 0, 3, 1);
        let b = mask_contribution(p, w, 0, 3, 2);
        assert_ne!(a, b);
        // But the same round is deterministic.
        let c = mask_contribution(p, w, 0, 3, 1);
        assert_eq!(a, c);
    }

    #[test]
    fn matches_plain_fedavg() {
        let clients = client_vectors();
        let n = clients.len();
        let uploads: Vec<Vec<f64>> = clients
            .iter()
            .enumerate()
            .map(|(i, (p, w))| mask_contribution(p, *w, i, n, 99))
            .collect();
        let total_w: f64 = clients.iter().map(|(_, w)| w).sum();
        let secure = unmask_average(&uploads, total_w).unwrap();
        let plain = crate::strategy::fedavg(
            &clients
                .iter()
                .map(|(p, w)| (p.clone(), *w as u64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for (s, p) in secure.iter().zip(&plain) {
            assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn single_client_degenerates_to_its_own_average() {
        let upload = mask_contribution(&[2.0, 4.0], 3.0, 0, 1, 5);
        // No pairs ⇒ no masks.
        assert_eq!(upload, vec![6.0, 12.0]);
        let avg = unmask_average(&[upload], 3.0).unwrap();
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    fn unmask_rejects_bad_inputs() {
        assert!(unmask_average(&[], 1.0).is_none());
        assert!(unmask_average(&[vec![1.0], vec![1.0, 2.0]], 1.0).is_none());
        assert!(unmask_average(&[vec![1.0]], 0.0).is_none());
    }
}
