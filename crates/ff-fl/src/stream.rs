//! Streaming robust aggregation: server memory O(model), not
//! O(clients × model).
//!
//! The batch [`Aggregator`] rules materialize
//! every surviving update before combining them — fine for 8 clients,
//! fatal for 10,000. [`StreamAgg`] is the incremental form used by the
//! fleet scheduler ([`crate::fleet`]): updates **fold** in as they
//! arrive and are dropped immediately, shard partials **merge** in a
//! fixed order, and `finalize` produces the global vector.
//!
//! Per rule:
//!
//! - **FedAvg / NormClippedFedAvg** fold exactly — the running
//!   `(Σ wᵢθᵢ, Σ wᵢ)` accumulator performs the *same floating-point
//!   operations in the same order* as the batch
//!   [`weighted_mean`](crate::robust) path, so a single-partial fold is
//!   bit-identical to the batch aggregate over the same update sequence.
//!   Clipping happens inline per coordinate; no clipped copy of the
//!   update is ever allocated.
//! - **CoordinateMedian / TrimmedMean** are rank statistics and have no
//!   exact bounded-memory form. They run in two phases: an **exact
//!   buffer** of up to `exact_cap` updates (finalizing from the buffer
//!   runs the batch rule — bit-identical), and on overflow a **spill**
//!   into one signed weighted [`QuantileSketch`] per coordinate, after
//!   which memory is O(model × occupied buckets) regardless of cohort
//!   size. Sketch answers carry the documented error bound below.
//! - **Krum / Multi-Krum** need all pairwise update distances and are
//!   rejected at construction — they are inherently O(clients × model)
//!   and must use the batch path.
//!
//! # Error bounds (spilled phase)
//!
//! Let `ε =` [`QuantileSketch::RELATIVE_ERROR`] (≈ 2.19%).
//!
//! - **Median**: per coordinate, the spilled result `m̂` vs the batch
//!   weighted median `m` of the same updates satisfies
//!   `|m̂ − m| ≤ ε·|m|` — the sketch picks a bucket containing a true
//!   weighted median point and returns its geometric midpoint. (The
//!   batch rule's midpoint-averaging of exact weight ties can move `m`
//!   to a neighbouring value; the bound still holds against either tie
//!   endpoint.)
//! - **Trimmed mean**: the batch rule trims a *count* (`⌊trim·n⌋`
//!   updates per tail) while the sketch trims *weight mass*
//!   (`trim·Σw` per tail). For equal weights these differ by at most
//!   one update per tail, so per coordinate
//!   `|t̂ − t| ≤ ε·max|v| + 2·range/(n·(1 − 2·trim))` where `range` is
//!   the coordinate's value spread and `n` the update count. The crate's
//!   property tests assert exactly this bound.
//!
//! Determinism: folds and merges are floating-point accumulations, so
//! results are bit-deterministic for a fixed fold/merge order. The fleet
//! scheduler fixes that order structurally (shards partitioned by cohort
//! size, merged by shard index), which is what makes a full fleet round
//! bit-identical across `FF_THREADS` settings.

use crate::robust::{AggregationStrategy, Aggregator, CoordinateMedian, TrimmedMean};
use crate::{FlError, Result};
use ff_trace::QuantileSketch;

/// Which incremental rule a [`StreamAgg`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StreamRule {
    /// Running weighted mean.
    FedAvg,
    /// Running weighted mean over inline-clipped updates.
    NormClipped {
        /// Clipping radius.
        max_norm: f64,
    },
    /// Per-coordinate weighted median (exact buffer, then sketches).
    Median,
    /// Per-coordinate trimmed weighted mean (exact buffer, then
    /// sketches).
    Trimmed {
        /// Fraction trimmed from each end, in `[0, 0.5)`.
        trim_ratio: f64,
    },
}

/// Incremental aggregation state for one round. See the module docs for
/// the memory model and error bounds.
#[derive(Debug, Clone)]
pub struct StreamAgg {
    rule: StreamRule,
    exact_cap: usize,
    dim: Option<usize>,
    /// Mean-family state: Σ wᵢθᵢ per coordinate.
    acc: Vec<f64>,
    /// Mean-family state: Σ wᵢ.
    total_w: f64,
    /// Rank-family exact phase: buffered updates, ≤ `exact_cap`.
    buffer: Vec<(Vec<f64>, u64)>,
    /// Rank-family spilled phase: one sketch per coordinate.
    sketches: Vec<QuantileSketch>,
    /// Non-finite updates dropped by the rank-family rules (the
    /// mean-family rules error instead, matching their batch forms).
    dropped_non_finite: usize,
    folded: usize,
    peak_bytes: usize,
}

impl StreamAgg {
    /// Builds the streaming form of `strategy`. `exact_cap` bounds the
    /// rank-family exact buffer (clamped to ≥ 1); within it, `finalize`
    /// is bit-identical to the batch rule. Krum and Multi-Krum are
    /// refused — they need every pairwise update distance and cannot
    /// stream.
    pub fn new(strategy: &AggregationStrategy, exact_cap: usize) -> Result<StreamAgg> {
        strategy.validate()?;
        let rule = match *strategy {
            AggregationStrategy::FedAvg => StreamRule::FedAvg,
            AggregationStrategy::NormClippedFedAvg { max_norm } => {
                StreamRule::NormClipped { max_norm }
            }
            AggregationStrategy::CoordinateMedian => StreamRule::Median,
            AggregationStrategy::TrimmedMean { trim_ratio } => StreamRule::Trimmed { trim_ratio },
            AggregationStrategy::Krum { .. } | AggregationStrategy::MultiKrum { .. } => {
                return Err(FlError::Client(
                    "Krum cannot stream: it needs all pairwise update distances \
                     (O(clients × model) memory); use the batch aggregator"
                        .into(),
                ))
            }
        };
        Ok(StreamAgg {
            rule,
            exact_cap: exact_cap.max(1),
            dim: None,
            acc: Vec::new(),
            total_w: 0.0,
            buffer: Vec::new(),
            sketches: Vec::new(),
            dropped_non_finite: 0,
            folded: 0,
            peak_bytes: 0,
        })
    }

    /// Number of updates folded in (including merged partials, excluding
    /// dropped non-finite and empty ones).
    pub fn count(&self) -> usize {
        self.folded
    }

    /// Non-finite updates dropped by the rank-family rules.
    pub fn dropped_non_finite(&self) -> usize {
        self.dropped_non_finite
    }

    /// Whether the rank-family state has spilled from the exact buffer
    /// into sketches. Mean-family rules never spill (they are exact).
    pub fn spilled(&self) -> bool {
        !self.sketches.is_empty()
    }

    /// Approximate bytes of live aggregation state right now.
    pub fn state_bytes(&self) -> usize {
        let base = std::mem::size_of::<StreamAgg>();
        let acc = self.acc.capacity() * 8;
        let buf: usize = self.buffer.iter().map(|(p, _)| p.capacity() * 8 + 32).sum();
        let sk: usize = self.sketches.iter().map(QuantileSketch::state_bytes).sum();
        base + acc + buf + sk
    }

    /// High-water mark of [`state_bytes`](Self::state_bytes) across the
    /// folds and merges so far.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_bytes.max(self.state_bytes())
    }

    fn note_peak(&mut self) {
        let now = self.state_bytes();
        if now > self.peak_bytes {
            self.peak_bytes = now;
        }
    }

    fn check_dim(&mut self, len: usize) -> Result<()> {
        match self.dim {
            None => {
                self.dim = Some(len);
                Ok(())
            }
            Some(d) if d == len => Ok(()),
            Some(d) => Err(FlError::Client(format!(
                "parameter length mismatch: {len} vs {d}"
            ))),
        }
    }

    /// Moves the exact buffer into per-coordinate sketches.
    fn spill(&mut self) {
        let dim = self.dim.unwrap_or(0);
        if self.sketches.is_empty() {
            self.sketches = vec![QuantileSketch::new(); dim];
        }
        for (p, w) in self.buffer.drain(..) {
            let wf = w as f64;
            for (sk, &v) in self.sketches.iter_mut().zip(&p) {
                sk.add(v, wf);
            }
        }
    }

    /// Folds one update in. Empty parameter vectors are skipped (clients
    /// whose results travel in metrics), matching the batch rules.
    /// Non-finite updates: the mean-family rules error with
    /// [`FlError::NonFiniteUpdate`] exactly like batch
    /// [`fedavg`](crate::strategy::fedavg); the rank-family rules drop
    /// them (counted), exactly like the batch robust aggregators.
    pub fn fold(&mut self, params: Vec<f64>, num_examples: u64) -> Result<()> {
        if params.is_empty() {
            return Ok(());
        }
        let finite = params.iter().all(|v| v.is_finite());
        match self.rule {
            StreamRule::FedAvg | StreamRule::NormClipped { .. } => {
                if !finite {
                    return Err(FlError::NonFiniteUpdate {
                        client: self.folded,
                    });
                }
                self.check_dim(params.len())?;
                if self.acc.is_empty() {
                    self.acc = vec![0.0; params.len()];
                }
                let wf = num_examples as f64;
                // Same op order as the batch weighted_mean: weight total
                // first, then wf·v per coordinate.
                self.total_w += wf;
                match self.rule {
                    StreamRule::NormClipped { max_norm } => {
                        let norm = params.iter().map(|v| v * v).sum::<f64>().sqrt();
                        if norm > max_norm {
                            // Inline clip: identical arithmetic to the
                            // batch rule's `(v * scale)` then `wf * v'`,
                            // but no clipped vector is materialized.
                            let scale = max_norm / norm;
                            for (a, &v) in self.acc.iter_mut().zip(&params) {
                                *a += wf * (v * scale);
                            }
                        } else {
                            for (a, &v) in self.acc.iter_mut().zip(&params) {
                                *a += wf * v;
                            }
                        }
                    }
                    _ => {
                        for (a, &v) in self.acc.iter_mut().zip(&params) {
                            *a += wf * v;
                        }
                    }
                }
            }
            StreamRule::Median | StreamRule::Trimmed { .. } => {
                if !finite {
                    self.dropped_non_finite += 1;
                    return Ok(());
                }
                self.check_dim(params.len())?;
                if self.spilled() {
                    let wf = num_examples as f64;
                    for (sk, &v) in self.sketches.iter_mut().zip(&params) {
                        sk.add(v, wf);
                    }
                } else {
                    self.buffer.push((params, num_examples));
                    if self.buffer.len() > self.exact_cap {
                        self.spill();
                    }
                }
            }
        }
        self.folded += 1;
        self.note_peak();
        Ok(())
    }

    /// Merges a shard partial into this state. Mean-family partials add
    /// their accumulators; rank-family partials concatenate exact
    /// buffers while the combined count fits in `exact_cap`, otherwise
    /// both sides spill and the sketches merge. Callers must merge
    /// partials in a fixed order for deterministic results.
    pub fn merge(&mut self, mut other: StreamAgg) -> Result<()> {
        if std::mem::discriminant(&self.rule) != std::mem::discriminant(&other.rule) {
            return Err(FlError::Client("merging mismatched stream rules".into()));
        }
        if other.folded == 0 && other.dropped_non_finite == 0 {
            return Ok(());
        }
        if let Some(d) = other.dim {
            self.check_dim(d)?;
        }
        let (other_dropped, other_folded, other_peak) =
            (other.dropped_non_finite, other.folded, other.peak_bytes);
        match self.rule {
            StreamRule::FedAvg | StreamRule::NormClipped { .. } => {
                if self.acc.is_empty() {
                    self.acc = other.acc;
                    self.total_w = other.total_w;
                } else {
                    self.total_w += other.total_w;
                    for (a, b) in self.acc.iter_mut().zip(&other.acc) {
                        *a += b;
                    }
                }
            }
            StreamRule::Median | StreamRule::Trimmed { .. } => {
                let both_exact = !self.spilled() && !other.spilled();
                if both_exact && self.buffer.len() + other.buffer.len() <= self.exact_cap {
                    self.buffer.extend(other.buffer);
                } else {
                    self.spill();
                    other.spill();
                    if self.sketches.is_empty() {
                        self.sketches = other.sketches;
                    } else {
                        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
                            a.merge(b);
                        }
                    }
                }
            }
        }
        self.dropped_non_finite += other_dropped;
        self.folded += other_folded;
        self.peak_bytes = self.peak_bytes.max(other_peak);
        self.note_peak();
        Ok(())
    }

    /// Produces the aggregate. Mean-family: the exact weighted mean.
    /// Rank-family: the batch rule over the exact buffer when it never
    /// spilled (bit-identical to batch), or per-coordinate sketch
    /// queries otherwise (documented error bound).
    pub fn finalize(self) -> Result<Vec<f64>> {
        match self.rule {
            StreamRule::FedAvg | StreamRule::NormClipped { .. } => {
                if self.total_w <= 0.0 {
                    return Err(FlError::Client("zero total weight".into()));
                }
                let mut acc = self.acc;
                for a in acc.iter_mut() {
                    *a /= self.total_w;
                }
                Ok(acc)
            }
            StreamRule::Median => {
                if !self.spilled() {
                    return CoordinateMedian.aggregate(&self.buffer);
                }
                self.sketches
                    .iter()
                    .map(|sk| {
                        sk.median()
                            .ok_or_else(|| FlError::Client("no updates to aggregate".into()))
                    })
                    .collect()
            }
            StreamRule::Trimmed { trim_ratio } => {
                if !self.spilled() {
                    return TrimmedMean { trim_ratio }.aggregate(&self.buffer);
                }
                self.sketches
                    .iter()
                    .map(|sk| {
                        sk.trimmed_mean(trim_ratio)
                            .ok_or_else(|| FlError::Client("no updates to aggregate".into()))
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robust::{FedAvg as BatchFedAvg, NormClippedFedAvg};

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn synth_updates(n: usize, dim: usize, seed: u64) -> Vec<(Vec<f64>, u64)> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let p: Vec<f64> = (0..dim).map(|_| (next() - 0.5) * 20.0).collect();
                let w = 1 + (next() * 9.0) as u64;
                (p, w)
            })
            .collect()
    }

    #[test]
    fn fedavg_fold_is_bit_identical_to_batch() {
        let updates = synth_updates(37, 8, 3);
        let mut agg = StreamAgg::new(&AggregationStrategy::FedAvg, 4).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        let stream = agg.finalize().unwrap();
        let batch = BatchFedAvg.aggregate(&updates).unwrap();
        assert_eq!(bits(&stream), bits(&batch));
    }

    #[test]
    fn clipped_fold_is_bit_identical_to_batch() {
        let mut updates = synth_updates(20, 6, 9);
        updates.push((vec![1e9; 6], 2)); // must be clipped
        let strategy = AggregationStrategy::NormClippedFedAvg { max_norm: 5.0 };
        let mut agg = StreamAgg::new(&strategy, 4).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        let stream = agg.finalize().unwrap();
        let batch = NormClippedFedAvg { max_norm: 5.0 }
            .aggregate(&updates)
            .unwrap();
        assert_eq!(bits(&stream), bits(&batch));
    }

    #[test]
    fn median_within_exact_cap_is_bit_identical_to_batch() {
        let updates = synth_updates(16, 5, 11);
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 16).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        assert!(!agg.spilled());
        let stream = agg.finalize().unwrap();
        let batch = CoordinateMedian.aggregate(&updates).unwrap();
        assert_eq!(bits(&stream), bits(&batch));
    }

    #[test]
    fn spilled_median_is_within_documented_bound() {
        let updates = synth_updates(200, 4, 17);
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 8).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        assert!(agg.spilled());
        let stream = agg.finalize().unwrap();
        // The documented bound is against a true weighted-median *point*.
        // The batch rule midpoint-averages exact weight ties, which can
        // place its answer between two update values; per the module
        // docs the bound holds against either tie endpoint, so compare
        // against both.
        for (j, s) in stream.iter().enumerate() {
            let mut col: Vec<(f64, u64)> = updates.iter().map(|(p, w)| (p[j], *w)).collect();
            col.sort_by(|a, b| a.0.total_cmp(&b.0));
            let total: u64 = col.iter().map(|&(_, w)| w).sum();
            let half = total as f64 / 2.0;
            let mut cum = 0.0;
            let mut lo = col[0].0;
            let mut hi = col[col.len() - 1].0;
            let mut found_lo = false;
            for &(v, w) in &col {
                cum += w as f64;
                if !found_lo && cum >= half {
                    lo = v;
                    found_lo = true;
                }
                if cum > half {
                    hi = v;
                    break;
                }
            }
            let ok = [lo, hi]
                .iter()
                .any(|m| (s - m).abs() <= QuantileSketch::RELATIVE_ERROR * m.abs() + 1e-9);
            assert!(
                ok,
                "coord {j}: spilled {s} vs median endpoints [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn spilled_trimmed_mean_is_within_documented_bound() {
        // Equal weights so the count-trim vs mass-trim correspondence in
        // the documented bound applies directly.
        let updates: Vec<(Vec<f64>, u64)> = synth_updates(100, 3, 23)
            .into_iter()
            .map(|(p, _)| (p, 1))
            .collect();
        let trim = 0.1;
        let strategy = AggregationStrategy::TrimmedMean { trim_ratio: trim };
        let mut agg = StreamAgg::new(&strategy, 8).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        assert!(agg.spilled());
        let stream = agg.finalize().unwrap();
        let batch = TrimmedMean { trim_ratio: trim }
            .aggregate(&updates)
            .unwrap();
        let n = updates.len() as f64;
        for j in 0..3 {
            let col: Vec<f64> = updates.iter().map(|(p, _)| p[j]).collect();
            let max_abs = col.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let range = col.iter().fold(f64::MIN, |m, &v| m.max(v))
                - col.iter().fold(f64::MAX, |m, &v| m.min(v));
            let bound =
                QuantileSketch::RELATIVE_ERROR * max_abs + 2.0 * range / (n * (1.0 - 2.0 * trim));
            assert!(
                (stream[j] - batch[j]).abs() <= bound,
                "coord {j}: stream {} vs batch {} (bound {bound})",
                stream[j],
                batch[j]
            );
        }
    }

    #[test]
    fn sharded_merge_matches_sequential_fold_for_mean_family() {
        // Two shards merged in order — not necessarily bit-identical to
        // a single fold (different FP grouping), but must be exact in
        // value terms and deterministic: merging the same partials twice
        // gives bit-identical results.
        let updates = synth_updates(30, 4, 5);
        let build = || {
            let mut parts: Vec<StreamAgg> = (0..3)
                .map(|_| StreamAgg::new(&AggregationStrategy::FedAvg, 4).unwrap())
                .collect();
            for (i, (p, w)) in updates.iter().enumerate() {
                parts[i % 3].fold(p.clone(), *w).unwrap();
            }
            let mut it = parts.into_iter();
            let mut merged = it.next().unwrap();
            for part in it {
                merged.merge(part).unwrap();
            }
            merged.finalize().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(bits(&a), bits(&b));
        let batch = BatchFedAvg.aggregate(&updates).unwrap();
        for (x, y) in a.iter().zip(&batch) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_merge_stays_exact_when_combined_fits() {
        let updates = synth_updates(10, 3, 7);
        let mut left = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 16).unwrap();
        let mut right = left.clone();
        for (p, w) in &updates[..5] {
            left.fold(p.clone(), *w).unwrap();
        }
        for (p, w) in &updates[5..] {
            right.fold(p.clone(), *w).unwrap();
        }
        left.merge(right).unwrap();
        assert!(!left.spilled());
        let stream = left.finalize().unwrap();
        let batch = CoordinateMedian.aggregate(&updates).unwrap();
        assert_eq!(bits(&stream), bits(&batch));
    }

    #[test]
    fn state_stays_bounded_after_spill() {
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 8).unwrap();
        let mut sizes = Vec::new();
        for (p, w) in synth_updates(2000, 16, 31) {
            agg.fold(p, w).unwrap();
            sizes.push(agg.state_bytes());
        }
        assert!(agg.spilled());
        // Memory is O(model × occupied buckets), not O(count). Occupied
        // buckets still fill in logarithmically as smaller magnitudes
        // land in new doublings, so assert sub-linearity, not a flat
        // line: 4× the folds (500 → 2000) must cost well under 2× the
        // state, and the final state must be a fraction of what
        // buffering every update would cost.
        let at_500 = sizes[499];
        let final_size = *sizes.last().unwrap();
        assert!(
            final_size < at_500 * 2,
            "state grew linearly with count: {at_500} -> {final_size}"
        );
        let naive = 2000 * (16 * 8 + 32);
        assert!(
            final_size * 2 < naive,
            "state {final_size} is not far below the O(count) cost {naive}"
        );
        assert!(agg.peak_state_bytes() >= final_size);
    }

    #[test]
    fn non_finite_handling_matches_batch_contracts() {
        // Mean family: error, like batch fedavg.
        let mut agg = StreamAgg::new(&AggregationStrategy::FedAvg, 4).unwrap();
        agg.fold(vec![1.0], 1).unwrap();
        assert!(matches!(
            agg.fold(vec![f64::NAN], 1),
            Err(FlError::NonFiniteUpdate { .. })
        ));
        // Rank family: drop and count, like the batch robust rules.
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 4).unwrap();
        agg.fold(vec![1.0], 1).unwrap();
        agg.fold(vec![f64::NAN], 1).unwrap();
        agg.fold(vec![3.0], 1).unwrap();
        assert_eq!(agg.dropped_non_finite(), 1);
        assert_eq!(agg.finalize().unwrap(), vec![2.0]);
    }

    #[test]
    fn krum_is_refused() {
        assert!(StreamAgg::new(&AggregationStrategy::Krum { f: 1 }, 4).is_err());
        assert!(StreamAgg::new(&AggregationStrategy::MultiKrum { f: 1, m: 2 }, 4).is_err());
    }

    #[test]
    fn empty_params_are_skipped_and_dim_mismatch_rejected() {
        let mut agg = StreamAgg::new(&AggregationStrategy::FedAvg, 4).unwrap();
        agg.fold(vec![], 100).unwrap();
        agg.fold(vec![2.0], 1).unwrap();
        assert_eq!(agg.count(), 1);
        assert!(agg.fold(vec![1.0, 2.0], 1).is_err());
    }
}
