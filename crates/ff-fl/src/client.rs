//! The client-side trait, mirroring Flower's `Client` API.

use crate::config::ConfigMap;

/// Output of a local training step.
#[derive(Debug, Clone)]
pub struct FitOutput {
    /// Updated local parameters (flat); empty for models whose state
    /// travels as bytes in `metrics`.
    pub params: Vec<f64>,
    /// Number of local training examples (FedAvg weight).
    pub num_examples: u64,
    /// Free-form metrics.
    pub metrics: ConfigMap,
}

/// Output of a local evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// Local validation loss.
    pub loss: f64,
    /// Number of local validation examples.
    pub num_examples: u64,
    /// Free-form metrics.
    pub metrics: ConfigMap,
}

/// A federated client. Implementations own their private data split; the
/// runtime moves each client onto its own thread, so `Send` is required.
pub trait FlClient: Send {
    /// Returns client properties or locally computed statistics
    /// (e.g. meta-features). Never raw data.
    fn get_properties(&mut self, config: &ConfigMap) -> ConfigMap;

    /// Trains locally from the given global parameters and round config.
    fn fit(&mut self, params: &[f64], config: &ConfigMap) -> FitOutput;

    /// Evaluates the given parameters/config on the local validation split.
    fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput;

    /// Transforms the encoded reply just before it crosses the wire — the
    /// fault-injection hook used by [`crate::chaos::ChaosClient`].
    /// Returning `None` drops the reply entirely (the server observes a
    /// timeout); returning modified bytes simulates wire corruption (the
    /// server observes a codec failure). The default is the identity;
    /// well-behaved clients never override this.
    fn wire_transform(&mut self, encoded_reply: Vec<u8>) -> Option<Vec<u8>> {
        Some(encoded_reply)
    }
}
