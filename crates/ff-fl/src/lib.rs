//! Flower-style federated learning simulation substrate.
//!
//! The paper implements FedForecaster on the Flower framework (reference
//! \[4\] of the paper); this
//! crate is the Rust stand-in. It reproduces Flower's execution model:
//!
//! - [`client::FlClient`]: the client-side trait (`get_properties`, `fit`,
//!   `evaluate`) with free-form typed config maps.
//! - [`message`]: the instruction/reply protocol with a hand-rolled binary
//!   wire codec over [`bytes`] — every message crosses a real
//!   serialization boundary, exactly like a networked deployment, so the
//!   privacy surface (what leaves a client) is explicit and auditable.
//! - [`runtime::FederatedRuntime`]: the in-process simulation engine; each
//!   client runs on its own thread and the server broadcasts instructions
//!   and collects replies in parallel.
//! - [`strategy`]: FedAvg weighted parameter averaging and weighted loss
//!   aggregation (`α_j = |D_j| / |D|`, Equation 1 of the paper).
//! - [`log::MessageLog`]: a transcript of every transmitted payload with
//!   byte counts — used by the test suite to assert that no raw
//!   time-series samples ever leave a client.
//!
//! # Fault tolerance
//!
//! Stragglers, crashed devices, and flaky links are the normal operating
//! condition of a real FL deployment, so the runtime treats partial
//! participation as the default rather than the exception:
//!
//! - [`runtime::RoundPolicy`] bounds every collect with a deadline and a
//!   response quorum; [`runtime::FederatedRuntime::run_round`] completes a
//!   round with whichever healthy subset replied in time and reports the
//!   rest as structured dropouts ([`FlError::Timeout`],
//!   [`FlError::ClientPanicked`], [`FlError::Codec`]).
//! - Client threads wrap handler dispatch in `catch_unwind`, so a panicked
//!   client answers with [`message::Reply::Panicked`] instead of poisoning
//!   its channel and killing the federation.
//! - [`health::HealthRegistry`] tracks per-client Healthy → Suspect →
//!   Quarantined state across rounds, with exponential-backoff re-admission
//!   probes so recovered clients rejoin without starving.
//! - [`chaos::ChaosClient`] deterministically injects panics, delays,
//!   dropped replies, and corrupted payloads into any inner client — the
//!   test substrate for all of the above.
//!
//! # Byzantine robustness
//!
//! Availability faults are only half the threat model: a client can also
//! reply *on time with garbage* — NaN floods, sign-flipped or scaled
//! gradients, stuck constants. [`robust`] adds the integrity half:
//! pre-aggregation screening ([`robust::UpdateGuard`]), robust
//! aggregation rules ([`robust::AggregationStrategy`] — coordinate
//! median, trimmed mean, norm clipping, Krum/Multi-Krum), and guard
//! rejections feeding the same [`health::HealthRegistry`] escalation as
//! crash faults ([`health::HealthRegistry::record_rejection`]).
//! [`chaos::AdversarialMode`] injects the matching attacks.
//!
//! # Fleet scale
//!
//! The thread-per-client runtime tops out around hundreds of clients.
//! [`fleet::FleetRuntime`] is the 10,000-client shape: a seeded
//! per-round cohort sampler ([`fleet::CohortSampler`]), sharded
//! execution on the [`ff_par`] pool, and streaming robust aggregation
//! ([`stream::StreamAgg`]) that keeps server memory O(model) instead of
//! O(clients × model). Rounds are bit-identical across thread counts
//! under a fixed seed.

pub mod chaos;
pub mod client;
pub mod compress;
pub mod config;
pub mod fleet;
pub mod health;
pub mod log;
pub mod message;
pub mod robust;
pub mod runtime;
pub mod secure;
pub mod strategy;
pub mod stream;

/// Errors produced by the federated runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlError {
    /// Decoding a wire message failed.
    Codec(String),
    /// A client thread has died or disconnected.
    ClientUnavailable(usize),
    /// A client returned an application error.
    Client(String),
    /// A client did not reply before the round deadline.
    Timeout(usize),
    /// A client panicked while handling an instruction.
    ClientPanicked(usize),
    /// Fewer healthy replies than the round policy requires.
    Quorum {
        /// Healthy replies collected.
        healthy: usize,
        /// Replies the policy required.
        required: usize,
    },
    /// A client submitted NaN/±inf parameters to an aggregation that
    /// requires finite values. The index is the client's position in the
    /// aggregation input.
    NonFiniteUpdate {
        /// Position of the offending update in the input slice.
        client: usize,
    },
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlError::Codec(m) => write!(f, "codec error: {m}"),
            FlError::ClientUnavailable(id) => write!(f, "client {id} unavailable"),
            FlError::Client(m) => write!(f, "client error: {m}"),
            FlError::Timeout(id) => write!(f, "client {id} timed out"),
            FlError::ClientPanicked(id) => write!(f, "client {id} panicked"),
            FlError::Quorum { healthy, required } => {
                write!(
                    f,
                    "quorum unmet: {healthy} healthy replies, {required} required"
                )
            }
            FlError::NonFiniteUpdate { client } => {
                write!(f, "client {client} submitted a non-finite parameter update")
            }
        }
    }
}

impl std::error::Error for FlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FlError>;
