//! Update compression for communication-constrained federations.
//!
//! The paper motivates FL partly by "reducing communication overhead"
//! (§1, CMFL \[21\]). These utilities shrink parameter uploads: lossless-ish
//! f32 truncation (2×) and linear u8 quantization (8×) with per-message
//! min/max scaling. Both round-trip through plain byte vectors so they
//! compose with [`crate::config::ConfigValue::Bytes`] payloads.

use crate::{FlError, Result};
use ff_trace::Tracer;

/// Compression scheme for a flat f64 parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Truncate to IEEE f32 (≈ 2× smaller, ~1e-7 relative error).
    F32,
    /// Linear quantization to u8 over the message's `[min, max]` range
    /// (≈ 8× smaller, error ≤ range/510).
    Q8,
}

/// Compresses a parameter vector. The output embeds everything needed to
/// decompress (scheme tag, length, scaling).
pub fn compress(params: &[f64], scheme: Compression) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + params.len());
    match scheme {
        Compression::F32 => {
            out.push(1u8);
            out.extend_from_slice(&(params.len() as u32).to_le_bytes());
            for &p in params {
                out.extend_from_slice(&(p as f32).to_le_bytes());
            }
        }
        Compression::Q8 => {
            out.push(2u8);
            out.extend_from_slice(&(params.len() as u32).to_le_bytes());
            let lo = params.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = params.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let (lo, hi) = if lo.is_finite() && hi > lo {
                (lo, hi)
            } else {
                (0.0, 1.0)
            };
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            let scale = 255.0 / (hi - lo);
            for &p in params {
                let q = ((p - lo) * scale).round().clamp(0.0, 255.0) as u8;
                out.push(q);
            }
        }
    }
    out
}

/// [`compress`] plus telemetry: when the tracer is enabled, records the
/// bytes saved versus raw f64 encoding (`fl.compress_bytes_saved`
/// counter) and the achieved compression ratio (`fl.compress_ratio`
/// histogram — mergeable across clients like any other histogram).
pub fn compress_traced(params: &[f64], scheme: Compression, tracer: &Tracer) -> Vec<u8> {
    let out = compress(params, scheme);
    if tracer.is_enabled() {
        let raw = params.len() * 8;
        tracer.counter_add(
            "fl.compress_bytes_saved",
            raw.saturating_sub(out.len()) as u64,
        );
        if !out.is_empty() {
            tracer.record("fl.compress_ratio", raw as f64 / out.len() as f64);
        }
    }
    out
}

/// Decompresses a vector produced by [`compress`]. Truncated, misaligned,
/// or unrecognized input yields a typed [`FlError::Codec`] — a corrupted
/// compressed update is a wire fault like any other, so the runtime's
/// fault handling (dropout + retry policy) applies to it uniformly.
pub fn decompress(bytes: &[u8]) -> Result<Vec<f64>> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| FlError::Codec("empty compressed payload".into()))?;
    let header: [u8; 4] = rest
        .get(..4)
        .and_then(|h| h.try_into().ok())
        .ok_or_else(|| FlError::Codec("truncated compressed length header".into()))?;
    let n = u32::from_le_bytes(header) as usize;
    let body = &rest[4..];
    match tag {
        1 => {
            if body.len() != n * 4 {
                return Err(FlError::Codec(format!(
                    "f32 body length {} does not match {n} elements",
                    body.len()
                )));
            }
            Ok(body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
                .collect())
        }
        2 => {
            if body.len() != 16 + n {
                return Err(FlError::Codec(format!(
                    "q8 body length {} does not match {n} elements",
                    body.len()
                )));
            }
            let lo = f64::from_le_bytes(body[..8].try_into().unwrap());
            let hi = f64::from_le_bytes(body[8..16].try_into().unwrap());
            let scale = (hi - lo) / 255.0;
            Ok(body[16..].iter().map(|&q| lo + q as f64 * scale).collect())
        }
        t => Err(FlError::Codec(format!("unknown compression tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<f64> {
        (0..500).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect()
    }

    #[test]
    fn f32_halves_bytes_with_tiny_error() {
        let p = params();
        let c = compress(&p, Compression::F32);
        assert!(c.len() < p.len() * 8 / 2 + 16, "size {}", c.len());
        let d = decompress(&c).unwrap();
        for (a, b) in p.iter().zip(&d) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn q8_is_eightfold_smaller_with_bounded_error() {
        let p = params();
        let c = compress(&p, Compression::Q8);
        assert!(c.len() < p.len() + 32, "size {}", c.len());
        let d = decompress(&c).unwrap();
        let range = 6.0; // values span [-3, 3]
        for (a, b) in p.iter().zip(&d) {
            assert!((a - b).abs() <= range / 255.0 + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_vectors_survive_q8() {
        let p = vec![2.5; 40];
        let d = decompress(&compress(&p, Compression::Q8)).unwrap();
        // Degenerate range falls back to [0,1] scaling; values stay finite
        // and the f32 path is exact.
        assert!(d.iter().all(|v| v.is_finite()));
        let d32 = decompress(&compress(&p, Compression::F32)).unwrap();
        assert_eq!(d32, p);
    }

    #[test]
    fn corrupt_input_returns_codec_errors() {
        let c = compress(&params(), Compression::Q8);
        assert!(matches!(
            decompress(&c[..c.len() - 1]),
            Err(FlError::Codec(_))
        ));
        assert!(matches!(decompress(&[]), Err(FlError::Codec(_))));
        assert!(matches!(decompress(&[1, 9]), Err(FlError::Codec(_))));
        assert!(matches!(
            decompress(&[7, 0, 0, 0, 0]),
            Err(FlError::Codec(_))
        ));
    }

    #[test]
    fn traced_compression_records_savings() {
        let tracer = Tracer::enabled();
        let p = params();
        let c = compress_traced(&p, Compression::Q8, &tracer);
        assert_eq!(c, compress(&p, Compression::Q8));
        let snap = tracer.snapshot();
        assert_eq!(
            snap.counter("fl.compress_bytes_saved") as usize,
            p.len() * 8 - c.len()
        );
        let ratio = snap.histogram("fl.compress_ratio").unwrap();
        assert_eq!(ratio.count(), 1);
        assert!(ratio.min().unwrap() > 6.0);
        // Disabled tracer: identical bytes, no metrics.
        let off = Tracer::disabled();
        assert_eq!(compress_traced(&p, Compression::Q8, &off), c);
        assert!(off.snapshot().histograms.is_empty());
    }

    #[test]
    fn quantized_fedavg_stays_close_to_exact() {
        // The real consumer: average compressed client updates and compare
        // against exact FedAvg.
        let clients: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                (0..200)
                    .map(|i| ((i + c * 37) as f64 * 0.11).cos())
                    .collect()
            })
            .collect();
        let exact = crate::strategy::fedavg(
            &clients
                .iter()
                .map(|p| (p.clone(), 1u64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let lossy: Vec<Vec<f64>> = clients
            .iter()
            .map(|p| decompress(&compress(p, Compression::Q8)).unwrap())
            .collect();
        let approx =
            crate::strategy::fedavg(&lossy.iter().map(|p| (p.clone(), 1u64)).collect::<Vec<_>>())
                .unwrap();
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.01, "{e} vs {a}");
        }
    }
}
