//! Per-client health tracking across federated rounds.
//!
//! The runtime records a transport-level outcome (reply, timeout, panic,
//! corrupt payload, disconnect) for every client in every tolerant round
//! and feeds it into this registry. The state machine per client:
//!
//! ```text
//!            failure                      failure × quarantine_after
//! Healthy ───────────▶ Suspect ──────────────────────▶ Quarantined
//!    ▲                    │                                  │
//!    └────── success ─────┘            probe round (admitted again,
//!    ▲                                  exponential backoff on repeat
//!    └──────────── successful probe ◀── failures, capped at probe_max)
//! ```
//!
//! Quarantined clients are excluded from rounds until their next probe
//! round comes up; a successful probe restores them to `Healthy`
//! immediately, a failed probe doubles the wait (capped at
//! [`HealthPolicy::probe_max`] rounds, so a recovered client is always
//! re-admitted within a bounded number of rounds — the no-starvation
//! property checked by the crate's proptests).

/// Health state of one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Replying normally.
    Healthy,
    /// Failed recently, but not often enough to quarantine.
    Suspect,
    /// Excluded from rounds except periodic re-admission probes.
    Quarantined,
}

/// Knobs of the health state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive transport failures before a client is quarantined.
    pub quarantine_after: u32,
    /// Rounds to wait before the first re-admission probe.
    pub probe_base: u64,
    /// Cap on the exponential probe backoff, in rounds. This bounds the
    /// time a recovered client waits before it is probed again.
    pub probe_max: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_after: 2,
            probe_base: 2,
            probe_max: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct ClientRecord {
    state: ClientState,
    consecutive_failures: u32,
    successes: u64,
    failures: u64,
    probe_level: u32,
    next_probe_round: u64,
}

impl ClientRecord {
    fn new() -> ClientRecord {
        ClientRecord {
            state: ClientState::Healthy,
            consecutive_failures: 0,
            successes: 0,
            failures: 0,
            probe_level: 0,
            next_probe_round: 0,
        }
    }
}

/// Tracks health state for a fixed set of clients across rounds.
#[derive(Debug, Clone)]
pub struct HealthRegistry {
    policy: HealthPolicy,
    records: Vec<ClientRecord>,
    round: u64,
}

impl HealthRegistry {
    /// A registry for `n_clients` clients, all initially healthy.
    pub fn new(n_clients: usize, policy: HealthPolicy) -> HealthRegistry {
        HealthRegistry {
            policy,
            records: (0..n_clients).map(|_| ClientRecord::new()).collect(),
            round: 0,
        }
    }

    /// Advances the round counter and returns the new round number
    /// (1-based).
    pub fn begin_round(&mut self) -> u64 {
        self.round += 1;
        self.round
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Clients admitted to the given round: everyone who is not
    /// quarantined, plus quarantined clients whose probe round has come up.
    pub fn admitted(&self, round: u64) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| match r.state {
                ClientState::Healthy | ClientState::Suspect => true,
                ClientState::Quarantined => round >= r.next_probe_round,
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Records a transport-level success: the client returns to `Healthy`
    /// and its probe backoff resets.
    pub fn record_success(&mut self, id: usize) {
        let Some(rec) = self.records.get_mut(id) else {
            return;
        };
        rec.successes += 1;
        rec.consecutive_failures = 0;
        rec.probe_level = 0;
        rec.state = ClientState::Healthy;
    }

    /// Records a transport-level failure (timeout, panic, corrupt payload,
    /// disconnect), advancing the state machine. Returns the client's new
    /// state so callers can observe transitions (e.g. count fresh
    /// quarantines), or `None` for an unknown id.
    pub fn record_failure(&mut self, id: usize) -> Option<ClientState> {
        let round = self.round;
        let probe_base = self.policy.probe_base;
        let probe_max = self.policy.probe_max;
        let quarantine_after = self.policy.quarantine_after;
        let rec = self.records.get_mut(id)?;
        rec.failures += 1;
        rec.consecutive_failures += 1;
        let wait = |level: u32| -> u64 {
            probe_base
                .saturating_mul(1u64 << level.min(20))
                .min(probe_max)
                .max(1)
        };
        match rec.state {
            ClientState::Quarantined => {
                // Failed probe: deepen the backoff (capped, so the client
                // is still probed again within probe_max rounds).
                rec.probe_level = rec.probe_level.saturating_add(1).min(32);
                rec.next_probe_round = round + wait(rec.probe_level);
            }
            _ if rec.consecutive_failures >= quarantine_after => {
                rec.state = ClientState::Quarantined;
                rec.probe_level = 0;
                rec.next_probe_round = round + wait(0);
            }
            _ => rec.state = ClientState::Suspect,
        }
        Some(rec.state)
    }

    /// The state of one client, or `None` for an unknown id.
    pub fn state(&self, id: usize) -> Option<ClientState> {
        self.records.get(id).map(|r| r.state)
    }

    /// A snapshot of every client's health counters.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            rounds: self.round,
            clients: self
                .records
                .iter()
                .enumerate()
                .map(|(id, r)| ClientHealthSnapshot {
                    client_id: id,
                    state: r.state,
                    successes: r.successes,
                    failures: r.failures,
                    consecutive_failures: r.consecutive_failures,
                })
                .collect(),
        }
    }
}

/// One client's health counters at report time.
#[derive(Debug, Clone)]
pub struct ClientHealthSnapshot {
    /// Client id.
    pub client_id: usize,
    /// Current state.
    pub state: ClientState,
    /// Total transport-level successes.
    pub successes: u64,
    /// Total transport-level failures.
    pub failures: u64,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
}

/// Snapshot of the whole federation's health.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Rounds elapsed.
    pub rounds: u64,
    /// Per-client counters.
    pub clients: Vec<ClientHealthSnapshot>,
}

impl HealthReport {
    /// Number of clients currently in `state`.
    pub fn count(&self, state: ClientState) -> usize {
        self.clients.iter().filter(|c| c.state == state).count()
    }

    /// Ids of clients currently in `state`.
    pub fn ids_in(&self, state: ClientState) -> Vec<usize> {
        self.clients
            .iter()
            .filter(|c| c.state == state)
            .map(|c| c.client_id)
            .collect()
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "health after {} rounds: {} healthy / {} suspect / {} quarantined",
            self.rounds,
            self.count(ClientState::Healthy),
            self.count(ClientState::Suspect),
            self.count(ClientState::Quarantined)
        )?;
        for c in &self.clients {
            writeln!(
                f,
                "  client {:>3}: {:?} (ok {}, failed {}, streak {})",
                c.client_id, c.state, c.successes, c.failures, c.consecutive_failures
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(n: usize) -> HealthRegistry {
        HealthRegistry::new(n, HealthPolicy::default())
    }

    #[test]
    fn all_clients_start_healthy_and_admitted() {
        let mut reg = registry(3);
        let round = reg.begin_round();
        assert_eq!(reg.admitted(round), vec![0, 1, 2]);
        assert_eq!(reg.state(1), Some(ClientState::Healthy));
    }

    #[test]
    fn single_failure_makes_suspect_not_quarantined() {
        let mut reg = registry(2);
        let round = reg.begin_round();
        let _ = reg.record_failure(0);
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
        // Still admitted next round.
        let _ = round;
        let next = reg.begin_round();
        assert!(reg.admitted(next).contains(&0));
    }

    #[test]
    fn consecutive_failures_quarantine_and_exclude() {
        let mut reg = registry(2);
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(0);
        }
        assert_eq!(reg.state(0), Some(ClientState::Quarantined));
        let next = reg.begin_round();
        assert_eq!(reg.admitted(next), vec![1]);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut reg = registry(1);
        let _ = reg.begin_round();
        let _ = reg.record_failure(0);
        let _ = reg.begin_round();
        reg.record_success(0);
        let _ = reg.begin_round();
        let _ = reg.record_failure(0);
        // One failure after a success: suspect, not quarantined.
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
    }

    #[test]
    fn quarantined_client_is_probed_and_readmitted_on_success() {
        let policy = HealthPolicy {
            quarantine_after: 2,
            probe_base: 2,
            probe_max: 16,
        };
        let mut reg = HealthRegistry::new(1, policy);
        // Rounds 1-2 fail → quarantined with probe at round 4.
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(0);
        }
        let r3 = reg.begin_round();
        assert!(reg.admitted(r3).is_empty());
        let r4 = reg.begin_round();
        assert_eq!(reg.admitted(r4), vec![0]);
        reg.record_success(0);
        assert_eq!(reg.state(0), Some(ClientState::Healthy));
    }

    #[test]
    fn failed_probes_back_off_exponentially_but_stay_bounded() {
        let policy = HealthPolicy {
            quarantine_after: 1,
            probe_base: 2,
            probe_max: 8,
        };
        let mut reg = HealthRegistry::new(1, policy.clone());
        let mut admitted_rounds = Vec::new();
        for _ in 0..60 {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                admitted_rounds.push(round);
                let _ = reg.record_failure(0);
            }
        }
        // Gaps grow (2, 4, 8) and then stay capped at probe_max.
        let gaps: Vec<u64> = admitted_rounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.len() >= 4,
            "expected several probes, got {admitted_rounds:?}"
        );
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0]),
            "gaps must not shrink: {gaps:?}"
        );
        assert!(
            gaps.iter().all(|&g| g <= policy.probe_max),
            "gap exceeds cap: {gaps:?}"
        );
        assert_eq!(*gaps.last().unwrap(), policy.probe_max);
    }

    #[test]
    fn report_counts_states() {
        let mut reg = registry(3);
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(2);
            reg.record_success(0);
        }
        let _ = reg.begin_round();
        let _ = reg.record_failure(1);
        let report = reg.report();
        assert_eq!(report.count(ClientState::Healthy), 1);
        assert_eq!(report.count(ClientState::Suspect), 1);
        assert_eq!(report.count(ClientState::Quarantined), 1);
        assert_eq!(report.ids_in(ClientState::Quarantined), vec![2]);
        let rendered = report.to_string();
        assert!(rendered.contains("1 healthy / 1 suspect / 1 quarantined"));
    }
}
