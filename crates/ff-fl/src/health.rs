//! Per-client health tracking across federated rounds.
//!
//! The runtime records a transport-level outcome (reply, timeout, panic,
//! corrupt payload, disconnect) for every client in every tolerant round
//! and feeds it into this registry. The state machine per client:
//!
//! ```text
//!            failure                      failure × quarantine_after
//! Healthy ───────────▶ Suspect ──────────────────────▶ Quarantined
//!    ▲                    │                                  │
//!    └────── success ─────┘            probe round (admitted again,
//!    ▲                                  exponential backoff on repeat
//!    └──────────── successful probe ◀── failures, capped at probe_max)
//! ```
//!
//! Quarantined clients are excluded from rounds until their next probe
//! round comes up; a successful probe restores them to `Healthy`
//! immediately, a failed probe doubles the wait (capped at
//! [`HealthPolicy::probe_max`] rounds, so a recovered client is always
//! re-admitted within a bounded number of rounds — the no-starvation
//! property checked by the crate's proptests).
//!
//! Two failure kinds feed the same state machine but keep separate
//! streaks: *transport* failures ([`HealthRegistry::record_failure`]:
//! timeouts, panics, corrupt payloads) and *integrity* failures
//! ([`HealthRegistry::record_rejection`]: the robust-aggregation guard
//! rejected the client's on-time reply as Byzantine). A transport-level
//! success does **not** clear an integrity streak — a Byzantine client
//! replies punctually every round — only an accepted update
//! ([`HealthRegistry::record_accepted`]) restores trust.

use std::collections::BTreeSet;

/// Health state of one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Replying normally.
    Healthy,
    /// Failed recently, but not often enough to quarantine.
    Suspect,
    /// Excluded from rounds except periodic re-admission probes.
    Quarantined,
}

/// Knobs of the health state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive transport failures before a client is quarantined.
    pub quarantine_after: u32,
    /// Rounds to wait before the first re-admission probe.
    pub probe_base: u64,
    /// Cap on the exponential probe backoff, in rounds. This bounds the
    /// time a recovered client waits before it is probed again.
    pub probe_max: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_after: 2,
            probe_base: 2,
            probe_max: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct ClientRecord {
    state: ClientState,
    consecutive_failures: u32,
    successes: u64,
    failures: u64,
    byzantine: u64,
    consecutive_rejections: u32,
    probe_level: u32,
    next_probe_round: u64,
}

impl ClientRecord {
    fn new() -> ClientRecord {
        ClientRecord {
            state: ClientState::Healthy,
            consecutive_failures: 0,
            successes: 0,
            failures: 0,
            byzantine: 0,
            consecutive_rejections: 0,
            probe_level: 0,
            next_probe_round: 0,
        }
    }

    /// Escalates after a failure of either kind, `streak` being the
    /// relevant consecutive counter.
    fn escalate(&mut self, streak: u32, round: u64, policy: &HealthPolicy) {
        let wait = |level: u32| -> u64 {
            policy
                .probe_base
                .saturating_mul(1u64 << level.min(20))
                .min(policy.probe_max)
                .max(1)
        };
        match self.state {
            ClientState::Quarantined => {
                // Failed probe: deepen the backoff (capped, so the client
                // is still probed again within probe_max rounds).
                self.probe_level = self.probe_level.saturating_add(1).min(32);
                self.next_probe_round = round + wait(self.probe_level);
            }
            _ if streak >= policy.quarantine_after => {
                self.state = ClientState::Quarantined;
                self.probe_level = 0;
                self.next_probe_round = round + wait(0);
            }
            _ => self.state = ClientState::Suspect,
        }
    }
}

/// Tracks health state for a fixed set of clients across rounds.
///
/// Alongside the per-client records, the registry maintains two indexes
/// so fleet-scale schedulers pay per-*cohort* costs, not per-fleet:
/// the set of currently quarantined ids and a `(next_probe_round, id)`
/// ordered index. [`is_admitted`](Self::is_admitted) answers a single
/// admission query in O(1) and [`probes_due`](Self::probes_due) finds
/// every due probe with one range scan — no walk over 10,000 records.
#[derive(Debug, Clone)]
pub struct HealthRegistry {
    policy: HealthPolicy,
    records: Vec<ClientRecord>,
    round: u64,
    /// Ids currently in [`ClientState::Quarantined`].
    quarantined: BTreeSet<usize>,
    /// `(next_probe_round, id)` for every quarantined client, kept
    /// coherent by routing every state transition through
    /// [`sync_quarantine_index`](Self::sync_quarantine_index).
    probe_index: BTreeSet<(u64, usize)>,
}

impl HealthRegistry {
    /// A registry for `n_clients` clients, all initially healthy.
    pub fn new(n_clients: usize, policy: HealthPolicy) -> HealthRegistry {
        HealthRegistry {
            policy,
            records: (0..n_clients).map(|_| ClientRecord::new()).collect(),
            round: 0,
            quarantined: BTreeSet::new(),
            probe_index: BTreeSet::new(),
        }
    }

    /// Re-syncs the quarantine indexes for `id` after a record mutation.
    /// `was_quarantined`/`old_probe` capture the pre-mutation state.
    fn sync_quarantine_index(&mut self, id: usize, was_quarantined: bool, old_probe: u64) {
        let rec = &self.records[id];
        let now_quarantined = rec.state == ClientState::Quarantined;
        if was_quarantined && (!now_quarantined || rec.next_probe_round != old_probe) {
            self.probe_index.remove(&(old_probe, id));
        }
        if now_quarantined {
            self.quarantined.insert(id);
            self.probe_index.insert((rec.next_probe_round, id));
        } else if was_quarantined {
            self.quarantined.remove(&id);
        }
    }

    /// Advances the round counter and returns the new round number
    /// (1-based).
    pub fn begin_round(&mut self) -> u64 {
        self.round += 1;
        self.round
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Clients admitted to the given round: everyone who is not
    /// quarantined, plus quarantined clients whose probe round has come up.
    pub fn admitted(&self, round: u64) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| match r.state {
                ClientState::Healthy | ClientState::Suspect => true,
                ClientState::Quarantined => round >= r.next_probe_round,
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether one client would be admitted to `round` — the same
    /// predicate as [`admitted`](Self::admitted), answered in O(1) for a
    /// single id via the quarantine index. Unknown ids are not admitted.
    /// Fleet schedulers use this per sampled cohort member so admission
    /// costs scale with the cohort, not the fleet.
    pub fn is_admitted(&self, id: usize, round: u64) -> bool {
        match self.records.get(id) {
            None => false,
            Some(rec) => match rec.state {
                ClientState::Healthy | ClientState::Suspect => true,
                ClientState::Quarantined => round >= rec.next_probe_round,
            },
        }
    }

    /// Quarantined clients whose re-admission probe is due at `round`,
    /// sorted by id. One ordered range scan over the probe index — cost
    /// proportional to the number of *due* probes, independent of fleet
    /// size. (A failed probe pushes the client's entry into the future,
    /// so an id leaves this list the round after it is probed.)
    pub fn probes_due(&self, round: u64) -> Vec<usize> {
        let mut due: Vec<usize> = self
            .probe_index
            .range(..=(round, usize::MAX))
            .map(|&(_, id)| id)
            .collect();
        due.sort_unstable();
        due
    }

    /// Number of currently quarantined clients (O(1) from the index).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Records a transport-level success: the client returns to `Healthy`
    /// and its probe backoff resets — unless it has an open integrity
    /// streak, in which case replying on time earns nothing (a Byzantine
    /// client is punctual by design) and only
    /// [`record_accepted`](Self::record_accepted) restores it.
    pub fn record_success(&mut self, id: usize) {
        let Some(rec) = self.records.get_mut(id) else {
            return;
        };
        let (was_q, old_probe) = (rec.state == ClientState::Quarantined, rec.next_probe_round);
        rec.successes += 1;
        rec.consecutive_failures = 0;
        if rec.consecutive_rejections == 0 {
            rec.probe_level = 0;
            rec.state = ClientState::Healthy;
        }
        self.sync_quarantine_index(id, was_q, old_probe);
    }

    /// Records a transport-level failure (timeout, panic, corrupt payload,
    /// disconnect), advancing the state machine. Returns the client's new
    /// state so callers can observe transitions (e.g. count fresh
    /// quarantines), or `None` for an unknown id.
    pub fn record_failure(&mut self, id: usize) -> Option<ClientState> {
        let round = self.round;
        let policy = self.policy.clone();
        let rec = self.records.get_mut(id)?;
        let (was_q, old_probe) = (rec.state == ClientState::Quarantined, rec.next_probe_round);
        rec.failures += 1;
        rec.consecutive_failures += 1;
        rec.escalate(rec.consecutive_failures, round, &policy);
        let state = rec.state;
        self.sync_quarantine_index(id, was_q, old_probe);
        Some(state)
    }

    /// Records an integrity failure: the robust-aggregation guard rejected
    /// this client's on-time reply (non-finite, dimension mismatch, norm
    /// or loss outlier). Escalates through the same Suspect → Quarantined
    /// machinery as transport faults — repeat offenders are excluded and
    /// probed on backoff exactly like crashed clients. Returns the new
    /// state, or `None` for an unknown id.
    pub fn record_rejection(&mut self, id: usize) -> Option<ClientState> {
        let round = self.round;
        let policy = self.policy.clone();
        let rec = self.records.get_mut(id)?;
        let (was_q, old_probe) = (rec.state == ClientState::Quarantined, rec.next_probe_round);
        rec.byzantine += 1;
        rec.consecutive_rejections += 1;
        rec.escalate(rec.consecutive_rejections, round, &policy);
        let state = rec.state;
        self.sync_quarantine_index(id, was_q, old_probe);
        Some(state)
    }

    /// Records that the guard accepted this client's update: the
    /// integrity streak clears and the client returns to `Healthy` (its
    /// transport streak is necessarily clear too — an accepted update
    /// implies an on-time reply this round).
    pub fn record_accepted(&mut self, id: usize) {
        let Some(rec) = self.records.get_mut(id) else {
            return;
        };
        let (was_q, old_probe) = (rec.state == ClientState::Quarantined, rec.next_probe_round);
        rec.consecutive_rejections = 0;
        if rec.consecutive_failures == 0 {
            rec.probe_level = 0;
            rec.state = ClientState::Healthy;
        }
        self.sync_quarantine_index(id, was_q, old_probe);
    }

    /// The state of one client, or `None` for an unknown id.
    pub fn state(&self, id: usize) -> Option<ClientState> {
        self.records.get(id).map(|r| r.state)
    }

    /// Exports the full registry state — round counter plus every
    /// per-client record — for durable checkpointing. The quarantine and
    /// probe indexes are *not* exported: they are derived data, rebuilt
    /// from the records on [`restore_state`](Self::restore_state).
    pub fn export_state(&self) -> HealthState {
        HealthState {
            round: self.round,
            clients: self
                .records
                .iter()
                .map(|r| ClientHealthState {
                    state: r.state,
                    consecutive_failures: r.consecutive_failures,
                    successes: r.successes,
                    failures: r.failures,
                    byzantine: r.byzantine,
                    consecutive_rejections: r.consecutive_rejections,
                    probe_level: r.probe_level,
                    next_probe_round: r.next_probe_round,
                })
                .collect(),
        }
    }

    /// Overwrites this registry with a previously exported state,
    /// rebuilding the quarantine and probe indexes. Errors if the client
    /// count differs — a checkpoint from one federation must not be
    /// grafted onto another.
    pub fn restore_state(&mut self, state: &HealthState) -> Result<(), String> {
        if state.clients.len() != self.records.len() {
            return Err(format!(
                "health state has {} clients, registry has {}",
                state.clients.len(),
                self.records.len()
            ));
        }
        self.round = state.round;
        self.quarantined.clear();
        self.probe_index.clear();
        for (id, (rec, saved)) in self.records.iter_mut().zip(&state.clients).enumerate() {
            rec.state = saved.state;
            rec.consecutive_failures = saved.consecutive_failures;
            rec.successes = saved.successes;
            rec.failures = saved.failures;
            rec.byzantine = saved.byzantine;
            rec.consecutive_rejections = saved.consecutive_rejections;
            rec.probe_level = saved.probe_level;
            rec.next_probe_round = saved.next_probe_round;
            if rec.state == ClientState::Quarantined {
                self.quarantined.insert(id);
                self.probe_index.insert((rec.next_probe_round, id));
            }
        }
        Ok(())
    }

    /// A snapshot of every client's health counters.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            rounds: self.round,
            clients: self
                .records
                .iter()
                .enumerate()
                .map(|(id, r)| ClientHealthSnapshot {
                    client_id: id,
                    state: r.state,
                    successes: r.successes,
                    failures: r.failures,
                    byzantine: r.byzantine,
                    consecutive_failures: r.consecutive_failures,
                })
                .collect(),
        }
    }
}

/// One client's complete durable state, as exported by
/// [`HealthRegistry::export_state`]. Unlike [`ClientHealthSnapshot`]
/// (a reporting view), this carries everything the state machine needs
/// to resume: both failure streaks and the probe backoff schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHealthState {
    /// Current state.
    pub state: ClientState,
    /// Consecutive transport-failure streak.
    pub consecutive_failures: u32,
    /// Total transport-level successes.
    pub successes: u64,
    /// Total transport-level failures.
    pub failures: u64,
    /// Total integrity failures (guard-rejected updates).
    pub byzantine: u64,
    /// Consecutive integrity-rejection streak.
    pub consecutive_rejections: u32,
    /// Probe backoff level (exponent).
    pub probe_level: u32,
    /// Round at which the next re-admission probe is due.
    pub next_probe_round: u64,
}

/// Durable snapshot of a whole [`HealthRegistry`], suitable for
/// checkpointing and exact resume via
/// [`restore_state`](HealthRegistry::restore_state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthState {
    /// Round counter at export time.
    pub round: u64,
    /// Per-client durable state, indexed by client id.
    pub clients: Vec<ClientHealthState>,
}

/// One client's health counters at report time.
#[derive(Debug, Clone)]
pub struct ClientHealthSnapshot {
    /// Client id.
    pub client_id: usize,
    /// Current state.
    pub state: ClientState,
    /// Total transport-level successes.
    pub successes: u64,
    /// Total transport-level failures.
    pub failures: u64,
    /// Total integrity failures (guard-rejected updates).
    pub byzantine: u64,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
}

/// Snapshot of the whole federation's health.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Rounds elapsed.
    pub rounds: u64,
    /// Per-client counters.
    pub clients: Vec<ClientHealthSnapshot>,
}

impl HealthReport {
    /// Number of clients currently in `state`.
    pub fn count(&self, state: ClientState) -> usize {
        self.clients.iter().filter(|c| c.state == state).count()
    }

    /// Ids of clients currently in `state`.
    pub fn ids_in(&self, state: ClientState) -> Vec<usize> {
        self.clients
            .iter()
            .filter(|c| c.state == state)
            .map(|c| c.client_id)
            .collect()
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "health after {} rounds: {} healthy / {} suspect / {} quarantined",
            self.rounds,
            self.count(ClientState::Healthy),
            self.count(ClientState::Suspect),
            self.count(ClientState::Quarantined)
        )?;
        for c in &self.clients {
            writeln!(
                f,
                "  client {:>3}: {:?} (ok {}, failed {}, rejected {}, streak {})",
                c.client_id, c.state, c.successes, c.failures, c.byzantine, c.consecutive_failures
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(n: usize) -> HealthRegistry {
        HealthRegistry::new(n, HealthPolicy::default())
    }

    #[test]
    fn all_clients_start_healthy_and_admitted() {
        let mut reg = registry(3);
        let round = reg.begin_round();
        assert_eq!(reg.admitted(round), vec![0, 1, 2]);
        assert_eq!(reg.state(1), Some(ClientState::Healthy));
    }

    #[test]
    fn single_failure_makes_suspect_not_quarantined() {
        let mut reg = registry(2);
        let round = reg.begin_round();
        let _ = reg.record_failure(0);
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
        // Still admitted next round.
        let _ = round;
        let next = reg.begin_round();
        assert!(reg.admitted(next).contains(&0));
    }

    #[test]
    fn consecutive_failures_quarantine_and_exclude() {
        let mut reg = registry(2);
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(0);
        }
        assert_eq!(reg.state(0), Some(ClientState::Quarantined));
        let next = reg.begin_round();
        assert_eq!(reg.admitted(next), vec![1]);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut reg = registry(1);
        let _ = reg.begin_round();
        let _ = reg.record_failure(0);
        let _ = reg.begin_round();
        reg.record_success(0);
        let _ = reg.begin_round();
        let _ = reg.record_failure(0);
        // One failure after a success: suspect, not quarantined.
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
    }

    #[test]
    fn quarantined_client_is_probed_and_readmitted_on_success() {
        let policy = HealthPolicy {
            quarantine_after: 2,
            probe_base: 2,
            probe_max: 16,
        };
        let mut reg = HealthRegistry::new(1, policy);
        // Rounds 1-2 fail → quarantined with probe at round 4.
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(0);
        }
        let r3 = reg.begin_round();
        assert!(reg.admitted(r3).is_empty());
        let r4 = reg.begin_round();
        assert_eq!(reg.admitted(r4), vec![0]);
        reg.record_success(0);
        assert_eq!(reg.state(0), Some(ClientState::Healthy));
    }

    #[test]
    fn failed_probes_back_off_exponentially_but_stay_bounded() {
        let policy = HealthPolicy {
            quarantine_after: 1,
            probe_base: 2,
            probe_max: 8,
        };
        let mut reg = HealthRegistry::new(1, policy.clone());
        let mut admitted_rounds = Vec::new();
        for _ in 0..60 {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                admitted_rounds.push(round);
                let _ = reg.record_failure(0);
            }
        }
        // Gaps grow (2, 4, 8) and then stay capped at probe_max.
        let gaps: Vec<u64> = admitted_rounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.len() >= 4,
            "expected several probes, got {admitted_rounds:?}"
        );
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0]),
            "gaps must not shrink: {gaps:?}"
        );
        assert!(
            gaps.iter().all(|&g| g <= policy.probe_max),
            "gap exceeds cap: {gaps:?}"
        );
        assert_eq!(*gaps.last().unwrap(), policy.probe_max);
    }

    #[test]
    fn repeated_rejections_quarantine_like_crashes() {
        let mut reg = registry(2);
        let _ = reg.begin_round();
        reg.record_success(0); // replied on time...
        let _ = reg.record_rejection(0); // ...with garbage
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
        let _ = reg.begin_round();
        reg.record_success(0);
        let _ = reg.record_rejection(0);
        assert_eq!(reg.state(0), Some(ClientState::Quarantined));
        let next = reg.begin_round();
        assert_eq!(reg.admitted(next), vec![1]);
    }

    #[test]
    fn transport_success_does_not_clear_integrity_streak() {
        let mut reg = registry(1);
        let _ = reg.begin_round();
        let _ = reg.record_rejection(0);
        // Next round: punctual reply, but no accepted update.
        let _ = reg.begin_round();
        reg.record_success(0);
        assert_eq!(
            reg.state(0),
            Some(ClientState::Suspect),
            "punctuality must not launder a Byzantine streak"
        );
        let _ = reg.record_rejection(0);
        assert_eq!(reg.state(0), Some(ClientState::Quarantined));
    }

    #[test]
    fn accepted_update_restores_health() {
        let mut reg = registry(1);
        let _ = reg.begin_round();
        reg.record_success(0);
        let _ = reg.record_rejection(0);
        let _ = reg.begin_round();
        reg.record_success(0);
        reg.record_accepted(0);
        assert_eq!(reg.state(0), Some(ClientState::Healthy));
        // A later single rejection is suspect, not quarantined: the
        // streak reset.
        let _ = reg.begin_round();
        let _ = reg.record_rejection(0);
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
    }

    #[test]
    fn rejected_probes_back_off_like_failed_probes() {
        let mut reg = registry(1);
        // Quarantine via rejections.
        for _ in 0..2 {
            let _ = reg.begin_round();
            reg.record_success(0);
            let _ = reg.record_rejection(0);
        }
        assert_eq!(reg.state(0), Some(ClientState::Quarantined));
        let mut probes = Vec::new();
        for _ in 0..40 {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                probes.push(round);
                reg.record_success(0);
                let _ = reg.record_rejection(0);
            }
        }
        assert!(probes.len() >= 3, "expected repeated probes: {probes:?}");
        let gaps: Vec<u64> = probes.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0]),
            "gaps shrank: {gaps:?}"
        );
        let report = reg.report();
        assert!(report.clients[0].byzantine >= 4);
        assert!(report.to_string().contains("rejected"));
    }

    #[test]
    fn is_admitted_agrees_with_admitted_everywhere() {
        let mut reg = registry(6);
        // Drive a mixed history: crashes, rejections, recoveries.
        for step in 0..30u64 {
            let round = reg.begin_round();
            for id in reg.admitted(round) {
                match (id + step as usize) % 4 {
                    0 => {
                        let _ = reg.record_failure(id);
                    }
                    1 => {
                        reg.record_success(id);
                        let _ = reg.record_rejection(id);
                    }
                    2 => {
                        reg.record_success(id);
                        reg.record_accepted(id);
                    }
                    _ => reg.record_success(id),
                }
            }
            let round = reg.round();
            let slow: Vec<usize> = reg.admitted(round);
            let fast: Vec<usize> = (0..6).filter(|&id| reg.is_admitted(id, round)).collect();
            assert_eq!(slow, fast, "divergence at round {round}");
        }
        assert!(!reg.is_admitted(99, 1), "unknown id admitted");
    }

    #[test]
    fn probes_due_tracks_quarantined_probe_rounds() {
        let mut reg = registry(3);
        // Quarantine clients 0 and 2.
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(0);
            let _ = reg.record_failure(2);
        }
        assert_eq!(reg.quarantined_count(), 2);
        // Probes become due at their scheduled round, all at once, and a
        // recovery removes the client from the index.
        let mut saw_due = false;
        for _ in 0..10 {
            let round = reg.begin_round();
            let due = reg.probes_due(round);
            for &id in &due {
                assert!(reg.is_admitted(id, round), "due probe not admitted");
            }
            if !due.is_empty() {
                saw_due = true;
                assert_eq!(due, vec![0, 2]);
                reg.record_success(0); // client 0 recovers
                let _ = reg.record_failure(2); // client 2 fails its probe
                break;
            }
        }
        assert!(saw_due, "no probe ever came due");
        assert_eq!(reg.quarantined_count(), 1);
        let round = reg.round();
        assert!(reg.probes_due(round).is_empty(), "failed probe still due");
        assert_eq!(reg.state(0), Some(ClientState::Healthy));
        // Client 2's deepened backoff eventually comes due again.
        let mut due_again = false;
        for _ in 0..20 {
            let round = reg.begin_round();
            if reg.probes_due(round) == vec![2] {
                due_again = true;
                break;
            }
        }
        assert!(due_again, "backoff starved the failed probe");
    }

    /// Drives a registry through a scripted future and returns the full
    /// observable trace: per-round admitted sets plus the final report.
    fn drive(reg: &mut HealthRegistry, rounds: u64) -> Vec<Vec<usize>> {
        let mut trace = Vec::new();
        for step in 0..rounds {
            let round = reg.begin_round();
            let admitted = reg.admitted(round);
            for &id in &admitted {
                match (id as u64 + step) % 5 {
                    0 => {
                        let _ = reg.record_failure(id);
                    }
                    1 => {
                        reg.record_success(id);
                        let _ = reg.record_rejection(id);
                    }
                    2 => {
                        reg.record_success(id);
                        reg.record_accepted(id);
                    }
                    _ => reg.record_success(id),
                }
            }
            trace.push(admitted);
        }
        trace
    }

    #[test]
    fn export_restore_round_trips_exactly() {
        let mut reg = registry(5);
        let _ = drive(&mut reg, 13);
        let state = reg.export_state();
        let mut restored = registry(5);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.export_state(), state);
        // Indexes were rebuilt, not copied: O(1) queries agree.
        assert_eq!(restored.quarantined_count(), reg.quarantined_count());
        let round = reg.round();
        for id in 0..5 {
            assert_eq!(restored.state(id), reg.state(id));
            assert_eq!(restored.is_admitted(id, round), reg.is_admitted(id, round));
        }
        assert_eq!(restored.probes_due(round + 4), reg.probes_due(round + 4));
    }

    #[test]
    fn restored_registry_drives_future_rounds_identically() {
        // Quarantine sets, integrity streaks, and probe backoff schedules
        // must all survive the round trip: the restored registry and the
        // original must admit the same clients in every future round.
        let mut reg = registry(6);
        let _ = drive(&mut reg, 17);
        let state = reg.export_state();
        let mut restored = registry(6);
        restored.restore_state(&state).unwrap();
        let future_a = drive(&mut reg, 25);
        let future_b = drive(&mut restored, 25);
        assert_eq!(future_a, future_b, "futures diverged after restore");
        assert_eq!(reg.export_state(), restored.export_state());
    }

    #[test]
    fn restore_preserves_integrity_streaks() {
        // A client one rejection away from quarantine must still be one
        // rejection away after restore — punctual replies in between must
        // not launder the streak (same rule as the live registry).
        let mut reg = registry(1);
        let _ = reg.begin_round();
        reg.record_success(0);
        let _ = reg.record_rejection(0);
        assert_eq!(reg.state(0), Some(ClientState::Suspect));
        let mut restored = registry(1);
        restored.restore_state(&reg.export_state()).unwrap();
        let _ = restored.begin_round();
        restored.record_success(0);
        assert_eq!(restored.state(0), Some(ClientState::Suspect));
        let _ = restored.record_rejection(0);
        assert_eq!(restored.state(0), Some(ClientState::Quarantined));
    }

    #[test]
    fn restore_preserves_probe_backoff_schedule() {
        let policy = HealthPolicy {
            quarantine_after: 1,
            probe_base: 2,
            probe_max: 8,
        };
        let mut reg = HealthRegistry::new(1, policy.clone());
        // Fail several probes to deepen the backoff.
        for _ in 0..20 {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                let _ = reg.record_failure(0);
            }
        }
        let mut restored = HealthRegistry::new(1, policy);
        restored.restore_state(&reg.export_state()).unwrap();
        for _ in 0..20 {
            let ra = reg.begin_round();
            let rb = restored.begin_round();
            assert_eq!(ra, rb);
            assert_eq!(reg.admitted(ra), restored.admitted(rb));
            assert_eq!(reg.probes_due(ra), restored.probes_due(rb));
            if reg.admitted(ra).contains(&0) {
                let _ = reg.record_failure(0);
                let _ = restored.record_failure(0);
            }
        }
    }

    #[test]
    fn restore_rejects_client_count_mismatch() {
        let reg = registry(3);
        let state = reg.export_state();
        let mut other = registry(4);
        let err = other.restore_state(&state).unwrap_err();
        assert!(err.contains("3 clients"), "unhelpful error: {err}");
    }

    #[test]
    fn report_counts_states() {
        let mut reg = registry(3);
        for _ in 0..2 {
            let _ = reg.begin_round();
            let _ = reg.record_failure(2);
            reg.record_success(0);
        }
        let _ = reg.begin_round();
        let _ = reg.record_failure(1);
        let report = reg.report();
        assert_eq!(report.count(ClientState::Healthy), 1);
        assert_eq!(report.count(ClientState::Suspect), 1);
        assert_eq!(report.count(ClientState::Quarantined), 1);
        assert_eq!(report.ids_in(ClientState::Quarantined), vec![2]);
        let rendered = report.to_string();
        assert!(rendered.contains("1 healthy / 1 suspect / 1 quarantined"));
    }
}
