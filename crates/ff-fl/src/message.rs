//! The server↔client protocol and its binary wire codec.
//!
//! Messages are length-prefixed tagged values over [`bytes`]. The codec is
//! deliberately hand-rolled (no serde data format is in the allowed
//! dependency set) and round-trip tested; the runtime encodes every
//! instruction and decodes every reply so nothing "accidentally" crosses
//! the client boundary without passing through here.

use crate::config::{ConfigMap, ConfigValue};
use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Server → client instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Request client properties / locally computed statistics.
    GetProperties(ConfigMap),
    /// Train locally. `params` seed the local model (may be empty).
    Fit {
        /// Global model parameters (flat), possibly empty on round one.
        params: Vec<f64>,
        /// Round configuration (hyperparameters, algorithm choice, …).
        config: ConfigMap,
    },
    /// Evaluate the given parameters/configuration on the local validation
    /// split.
    Evaluate {
        /// Model parameters to evaluate.
        params: Vec<f64>,
        /// Evaluation configuration.
        config: ConfigMap,
    },
    /// Terminate the client thread.
    Shutdown,
}

/// Client → server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Properties in response to [`Instruction::GetProperties`].
    Properties(ConfigMap),
    /// Fit result.
    FitRes {
        /// Updated local parameters (flat), possibly empty for non-parametric
        /// models whose state travels in `metrics` as bytes.
        params: Vec<f64>,
        /// Number of local training examples (FedAvg weight).
        num_examples: u64,
        /// Free-form metrics (local loss, serialized model, timings…).
        metrics: ConfigMap,
    },
    /// Evaluate result.
    EvaluateRes {
        /// Local validation loss.
        loss: f64,
        /// Number of local validation examples.
        num_examples: u64,
        /// Free-form metrics.
        metrics: ConfigMap,
    },
    /// Acknowledges shutdown.
    ShutdownAck,
    /// Application-level error.
    Error(String),
    /// The client panicked while handling the instruction. Produced by the
    /// runtime's `catch_unwind` wrapper, never by well-behaved clients; the
    /// payload is the panic message.
    Panicked(String),
}

const TAG_GET_PROPERTIES: u8 = 1;
const TAG_FIT: u8 = 2;
const TAG_EVALUATE: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
const TAG_PROPERTIES: u8 = 11;
const TAG_FIT_RES: u8 = 12;
const TAG_EVALUATE_RES: u8 = 13;
const TAG_SHUTDOWN_ACK: u8 = 14;
const TAG_ERROR: u8 = 15;
const TAG_PANICKED: u8 = 16;

const VTAG_FLOAT: u8 = 1;
const VTAG_INT: u8 = 2;
const VTAG_STR: u8 = 3;
const VTAG_BYTES: u8 = 4;
const VTAG_FLOATVEC: u8 = 5;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, FlError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(FlError::Codec("truncated string".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| FlError::Codec("invalid utf8".into()))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, FlError> {
    if buf.remaining() < 4 {
        return Err(FlError::Codec("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, FlError> {
    if buf.remaining() < 8 {
        return Err(FlError::Codec("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, FlError> {
    if buf.remaining() < 8 {
        return Err(FlError::Codec("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, FlError> {
    if buf.remaining() < 1 {
        return Err(FlError::Codec("truncated tag".into()));
    }
    Ok(buf.get_u8())
}

fn put_floats(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f64_le(x);
    }
}

fn get_floats(buf: &mut Bytes) -> Result<Vec<f64>, FlError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len * 8 {
        return Err(FlError::Codec("truncated float vec".into()));
    }
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

fn put_config(buf: &mut BytesMut, map: &ConfigMap) {
    buf.put_u32_le(map.len() as u32);
    for (k, v) in map {
        put_str(buf, k);
        match v {
            ConfigValue::Float(x) => {
                buf.put_u8(VTAG_FLOAT);
                buf.put_f64_le(*x);
            }
            ConfigValue::Int(x) => {
                buf.put_u8(VTAG_INT);
                buf.put_i64_le(*x);
            }
            ConfigValue::Str(s) => {
                buf.put_u8(VTAG_STR);
                put_str(buf, s);
            }
            ConfigValue::Bytes(b) => {
                buf.put_u8(VTAG_BYTES);
                buf.put_u32_le(b.len() as u32);
                buf.put_slice(b);
            }
            ConfigValue::FloatVec(v) => {
                buf.put_u8(VTAG_FLOATVEC);
                put_floats(buf, v);
            }
        }
    }
}

fn get_config(buf: &mut Bytes) -> Result<ConfigMap, FlError> {
    let n = get_u32(buf)? as usize;
    let mut map = ConfigMap::new();
    for _ in 0..n {
        let key = get_str(buf)?;
        let vtag = get_u8(buf)?;
        let value = match vtag {
            VTAG_FLOAT => ConfigValue::Float(get_f64(buf)?),
            VTAG_INT => {
                if buf.remaining() < 8 {
                    return Err(FlError::Codec("truncated i64".into()));
                }
                ConfigValue::Int(buf.get_i64_le())
            }
            VTAG_STR => ConfigValue::Str(get_str(buf)?),
            VTAG_BYTES => {
                let len = get_u32(buf)? as usize;
                if buf.remaining() < len {
                    return Err(FlError::Codec("truncated bytes".into()));
                }
                ConfigValue::Bytes(buf.copy_to_bytes(len).to_vec())
            }
            VTAG_FLOATVEC => ConfigValue::FloatVec(get_floats(buf)?),
            t => return Err(FlError::Codec(format!("unknown value tag {t}"))),
        };
        map.insert(key, value);
    }
    Ok(map)
}

impl Instruction {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Instruction::GetProperties(cfg) => {
                buf.put_u8(TAG_GET_PROPERTIES);
                put_config(&mut buf, cfg);
            }
            Instruction::Fit { params, config } => {
                buf.put_u8(TAG_FIT);
                put_floats(&mut buf, params);
                put_config(&mut buf, config);
            }
            Instruction::Evaluate { params, config } => {
                buf.put_u8(TAG_EVALUATE);
                put_floats(&mut buf, params);
                put_config(&mut buf, config);
            }
            Instruction::Shutdown => buf.put_u8(TAG_SHUTDOWN),
        }
        buf.freeze()
    }

    /// Decodes from wire bytes.
    pub fn decode(mut raw: Bytes) -> Result<Instruction, FlError> {
        let tag = get_u8(&mut raw)?;
        let ins = match tag {
            TAG_GET_PROPERTIES => Instruction::GetProperties(get_config(&mut raw)?),
            TAG_FIT => Instruction::Fit {
                params: get_floats(&mut raw)?,
                config: get_config(&mut raw)?,
            },
            TAG_EVALUATE => Instruction::Evaluate {
                params: get_floats(&mut raw)?,
                config: get_config(&mut raw)?,
            },
            TAG_SHUTDOWN => Instruction::Shutdown,
            t => return Err(FlError::Codec(format!("unknown instruction tag {t}"))),
        };
        if raw.has_remaining() {
            return Err(FlError::Codec("trailing bytes".into()));
        }
        Ok(ins)
    }
}

impl Reply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Reply::Properties(cfg) => {
                buf.put_u8(TAG_PROPERTIES);
                put_config(&mut buf, cfg);
            }
            Reply::FitRes {
                params,
                num_examples,
                metrics,
            } => {
                buf.put_u8(TAG_FIT_RES);
                put_floats(&mut buf, params);
                buf.put_u64_le(*num_examples);
                put_config(&mut buf, metrics);
            }
            Reply::EvaluateRes {
                loss,
                num_examples,
                metrics,
            } => {
                buf.put_u8(TAG_EVALUATE_RES);
                buf.put_f64_le(*loss);
                buf.put_u64_le(*num_examples);
                put_config(&mut buf, metrics);
            }
            Reply::ShutdownAck => buf.put_u8(TAG_SHUTDOWN_ACK),
            Reply::Error(msg) => {
                buf.put_u8(TAG_ERROR);
                put_str(&mut buf, msg);
            }
            Reply::Panicked(msg) => {
                buf.put_u8(TAG_PANICKED);
                put_str(&mut buf, msg);
            }
        }
        buf.freeze()
    }

    /// Decodes from wire bytes.
    pub fn decode(mut raw: Bytes) -> Result<Reply, FlError> {
        let tag = get_u8(&mut raw)?;
        let reply = match tag {
            TAG_PROPERTIES => Reply::Properties(get_config(&mut raw)?),
            TAG_FIT_RES => Reply::FitRes {
                params: get_floats(&mut raw)?,
                num_examples: get_u64(&mut raw)?,
                metrics: get_config(&mut raw)?,
            },
            TAG_EVALUATE_RES => Reply::EvaluateRes {
                loss: get_f64(&mut raw)?,
                num_examples: get_u64(&mut raw)?,
                metrics: get_config(&mut raw)?,
            },
            TAG_SHUTDOWN_ACK => Reply::ShutdownAck,
            TAG_ERROR => Reply::Error(get_str(&mut raw)?),
            TAG_PANICKED => Reply::Panicked(get_str(&mut raw)?),
            t => return Err(FlError::Codec(format!("unknown reply tag {t}"))),
        };
        if raw.has_remaining() {
            return Err(FlError::Codec("trailing bytes".into()));
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigMapExt;

    fn sample_config() -> ConfigMap {
        ConfigMap::new()
            .with_float("lr", 0.01)
            .with_int("round", 3)
            .with_str("algo", "xgb")
            .with_bytes("blob", vec![1, 2, 3, 255])
            .with_floats("mf", vec![0.5, -1.5, 2.25])
    }

    #[test]
    fn instruction_roundtrips() {
        for ins in [
            Instruction::GetProperties(sample_config()),
            Instruction::Fit {
                params: vec![1.0, -2.0, 3.5],
                config: sample_config(),
            },
            Instruction::Evaluate {
                params: vec![],
                config: ConfigMap::new(),
            },
            Instruction::Shutdown,
        ] {
            let encoded = ins.encode();
            let decoded = Instruction::decode(encoded).unwrap();
            assert_eq!(ins, decoded);
        }
    }

    #[test]
    fn reply_roundtrips() {
        for reply in [
            Reply::Properties(sample_config()),
            Reply::FitRes {
                params: vec![0.1; 7],
                num_examples: 1234,
                metrics: sample_config(),
            },
            Reply::EvaluateRes {
                loss: 0.125,
                num_examples: 55,
                metrics: ConfigMap::new(),
            },
            Reply::ShutdownAck,
            Reply::Error("boom".into()),
            Reply::Panicked("index out of bounds".into()),
        ] {
            let encoded = reply.encode();
            let decoded = Reply::decode(encoded).unwrap();
            assert_eq!(reply, decoded);
        }
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let full = Instruction::Fit {
            params: vec![1.0, 2.0],
            config: sample_config(),
        }
        .encode();
        for cut in 1..full.len() - 1 {
            let truncated = full.slice(0..cut);
            assert!(
                Instruction::decode(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let raw = Bytes::from_static(&[99]);
        assert!(Instruction::decode(raw.clone()).is_err());
        assert!(Reply::decode(raw).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(4); // Shutdown
        buf.put_u8(0); // junk
        assert!(Instruction::decode(buf.freeze()).is_err());
    }
}
