//! The in-process federated simulation engine.
//!
//! Each client runs on a dedicated OS thread (mirroring Flower's simulation
//! mode, where clients are independent processes) and communicates with the
//! server over channels carrying *encoded* messages — serialization is not
//! skipped, so the communication boundary behaves like a real network hop
//! minus the latency.

use crate::client::FlClient;
use crate::config::ConfigMap;
use crate::log::{Direction, MessageLog};
use crate::message::{Instruction, Reply};
use crate::{FlError, Result};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;

struct ClientHandle {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    join: Option<JoinHandle<()>>,
}

/// The federated runtime: owns the client threads and offers broadcast /
/// collect primitives that higher layers (FedForecaster's Algorithm 1, the
/// FedAvg loop) build on.
pub struct FederatedRuntime {
    clients: Vec<ClientHandle>,
    log: MessageLog,
}

impl FederatedRuntime {
    /// Spawns one thread per client.
    pub fn new(clients: Vec<Box<dyn FlClient>>) -> FederatedRuntime {
        let log = MessageLog::new();
        let handles = clients
            .into_iter()
            .map(|mut client| {
                let (tx_ins, rx_ins) = unbounded::<Bytes>();
                let (tx_rep, rx_rep) = unbounded::<Bytes>();
                let join = std::thread::spawn(move || {
                    while let Ok(raw) = rx_ins.recv() {
                        let reply = match Instruction::decode(raw) {
                            Ok(Instruction::GetProperties(cfg)) => {
                                Reply::Properties(client.get_properties(&cfg))
                            }
                            Ok(Instruction::Fit { params, config }) => {
                                let out = client.fit(&params, &config);
                                Reply::FitRes {
                                    params: out.params,
                                    num_examples: out.num_examples,
                                    metrics: out.metrics,
                                }
                            }
                            Ok(Instruction::Evaluate { params, config }) => {
                                let out = client.evaluate(&params, &config);
                                Reply::EvaluateRes {
                                    loss: out.loss,
                                    num_examples: out.num_examples,
                                    metrics: out.metrics,
                                }
                            }
                            Ok(Instruction::Shutdown) => {
                                let _ = tx_rep.send(Reply::ShutdownAck.encode());
                                break;
                            }
                            Err(e) => Reply::Error(e.to_string()),
                        };
                        if tx_rep.send(reply.encode()).is_err() {
                            break;
                        }
                    }
                });
                ClientHandle {
                    tx: tx_ins,
                    rx: rx_rep,
                    join: Some(join),
                }
            })
            .collect();
        FederatedRuntime {
            clients: handles,
            log,
        }
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// The message transcript.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Sends an instruction to one client and waits for its reply.
    pub fn call(&self, client_id: usize, ins: &Instruction) -> Result<Reply> {
        let handle = self
            .clients
            .get(client_id)
            .ok_or(FlError::ClientUnavailable(client_id))?;
        let encoded = ins.encode();
        self.log
            .record(client_id, Direction::ToClient, &encoded);
        handle
            .tx
            .send(encoded)
            .map_err(|_| FlError::ClientUnavailable(client_id))?;
        let raw = handle
            .rx
            .recv()
            .map_err(|_| FlError::ClientUnavailable(client_id))?;
        self.log.record(client_id, Direction::ToServer, &raw);
        Reply::decode(raw)
    }

    /// Broadcasts an instruction to the given clients *in parallel* and
    /// collects `(client_id, reply)` pairs in client order.
    pub fn broadcast(&self, client_ids: &[usize], ins: &Instruction) -> Result<Vec<(usize, Reply)>> {
        // Send phase.
        for &id in client_ids {
            let handle = self
                .clients
                .get(id)
                .ok_or(FlError::ClientUnavailable(id))?;
            let encoded = ins.encode();
            self.log.record(id, Direction::ToClient, &encoded);
            handle
                .tx
                .send(encoded)
                .map_err(|_| FlError::ClientUnavailable(id))?;
        }
        // Collect phase (clients compute concurrently on their threads).
        let mut replies = Vec::with_capacity(client_ids.len());
        for &id in client_ids {
            let handle = &self.clients[id];
            let raw = handle
                .rx
                .recv()
                .map_err(|_| FlError::ClientUnavailable(id))?;
            self.log.record(id, Direction::ToServer, &raw);
            replies.push((id, Reply::decode(raw)?));
        }
        Ok(replies)
    }

    /// Broadcasts to every client.
    pub fn broadcast_all(&self, ins: &Instruction) -> Result<Vec<(usize, Reply)>> {
        let ids: Vec<usize> = (0..self.n_clients()).collect();
        self.broadcast(&ids, ins)
    }

    /// Broadcasts to a random subset of clients — Flower-style per-round
    /// client sampling (`fraction_fit`). At least one client is always
    /// selected; the draw is deterministic in `seed`.
    pub fn broadcast_sample(
        &self,
        fraction: f64,
        seed: u64,
        ins: &Instruction,
    ) -> Result<Vec<(usize, Reply)>> {
        let n = self.n_clients();
        let k = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n);
        // Fisher–Yates prefix with a seeded LCG (no rand dependency here).
        let mut ids: Vec<usize> = (0..n).collect();
        let mut state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
        for i in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = i + (state >> 33) as usize % (n - i);
            ids.swap(i, j);
        }
        let mut selected = ids[..k].to_vec();
        selected.sort_unstable();
        self.broadcast(&selected, ins)
    }

    /// Fault-tolerant broadcast: clients that answer with
    /// [`Reply::Error`] are treated as dropouts and filtered out. Errors
    /// only when fewer than `min_responses` healthy replies arrive —
    /// the availability contract of a real FL deployment where stragglers
    /// and crashed devices are routine.
    pub fn broadcast_tolerant(
        &self,
        ins: &Instruction,
        min_responses: usize,
    ) -> Result<Vec<(usize, Reply)>> {
        let replies = self.broadcast_all(ins)?;
        let healthy: Vec<(usize, Reply)> = replies
            .into_iter()
            .filter(|(_, r)| !matches!(r, Reply::Error(_)))
            .collect();
        if healthy.len() < min_responses.max(1) {
            return Err(FlError::Client(format!(
                "only {} of {} clients responded (need {})",
                healthy.len(),
                self.n_clients(),
                min_responses
            )));
        }
        Ok(healthy)
    }

    /// Convenience: `GetProperties` to every client, returning config maps.
    pub fn collect_properties(&self, config: &ConfigMap) -> Result<Vec<ConfigMap>> {
        let replies = self.broadcast_all(&Instruction::GetProperties(config.clone()))?;
        replies
            .into_iter()
            .map(|(_, r)| match r {
                Reply::Properties(cfg) => Ok(cfg),
                Reply::Error(e) => Err(FlError::Client(e)),
                other => Err(FlError::Codec(format!("unexpected reply {other:?}"))),
            })
            .collect()
    }

    /// Shuts all clients down and joins their threads.
    pub fn shutdown(&mut self) {
        for (id, handle) in self.clients.iter_mut().enumerate() {
            let encoded = Instruction::Shutdown.encode();
            self.log.record(id, Direction::ToClient, &encoded);
            let _ = handle.tx.send(encoded);
        }
        for handle in self.clients.iter_mut() {
            let _ = handle.rx.recv(); // ShutdownAck (best effort)
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for FederatedRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{EvalOutput, FitOutput};
    use crate::config::ConfigMapExt;

    /// Toy client: holds a private scalar dataset; fit returns its mean.
    struct MeanClient {
        data: Vec<f64>,
    }

    impl FlClient for MeanClient {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            ConfigMap::new().with_int("n", self.data.len() as i64)
        }

        fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
            let mean = self.data.iter().sum::<f64>() / self.data.len() as f64;
            FitOutput {
                params: vec![mean],
                num_examples: self.data.len() as u64,
                metrics: ConfigMap::new(),
            }
        }

        fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
            let center = params.first().copied().unwrap_or(0.0);
            let loss = self
                .data
                .iter()
                .map(|v| (v - center) * (v - center))
                .sum::<f64>()
                / self.data.len() as f64;
            EvalOutput {
                loss,
                num_examples: self.data.len() as u64,
                metrics: ConfigMap::new(),
            }
        }
    }

    fn runtime() -> FederatedRuntime {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient { data: vec![1.0, 2.0, 3.0] }),
            Box::new(MeanClient { data: vec![10.0, 20.0] }),
        ];
        FederatedRuntime::new(clients)
    }

    #[test]
    fn properties_roundtrip_through_runtime() {
        let rt = runtime();
        let props = rt.collect_properties(&ConfigMap::new()).unwrap();
        assert_eq!(props[0].int_or("n", 0), 3);
        assert_eq!(props[1].int_or("n", 0), 2);
    }

    #[test]
    fn broadcast_fit_returns_all_results_in_order() {
        let rt = runtime();
        let replies = rt
            .broadcast_all(&Instruction::Fit {
                params: vec![],
                config: ConfigMap::new(),
            })
            .unwrap();
        assert_eq!(replies.len(), 2);
        match &replies[0].1 {
            Reply::FitRes { params, num_examples, .. } => {
                assert!((params[0] - 2.0).abs() < 1e-12);
                assert_eq!(*num_examples, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1].1 {
            Reply::FitRes { params, .. } => assert!((params[0] - 15.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn evaluate_computes_local_losses() {
        let rt = runtime();
        let replies = rt
            .broadcast_all(&Instruction::Evaluate {
                params: vec![2.0],
                config: ConfigMap::new(),
            })
            .unwrap();
        match &replies[0].1 {
            Reply::EvaluateRes { loss, .. } => assert!((loss - 2.0 / 3.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subset_broadcast_only_touches_selected_clients() {
        let rt = runtime();
        let replies = rt
            .broadcast(&[1], &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, 1);
    }

    #[test]
    fn log_records_all_traffic() {
        let rt = runtime();
        rt.collect_properties(&ConfigMap::new()).unwrap();
        // 2 instructions + 2 replies.
        assert_eq!(rt.log().len(), 4);
        let (to_client, to_server) = rt.log().byte_totals();
        assert!(to_client > 0 && to_server > 0);
    }

    #[test]
    fn sampled_broadcast_hits_a_subset() {
        let clients: Vec<Box<dyn FlClient>> = (0..10)
            .map(|i| Box::new(MeanClient { data: vec![i as f64 + 1.0] }) as Box<dyn FlClient>)
            .collect();
        let rt = FederatedRuntime::new(clients);
        let replies = rt
            .broadcast_sample(0.3, 7, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(replies.len(), 3);
        // Deterministic per seed.
        let again = rt
            .broadcast_sample(0.3, 7, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(
            replies.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            again.iter().map(|(i, _)| *i).collect::<Vec<_>>()
        );
        // Zero fraction still reaches one client.
        let one = rt
            .broadcast_sample(0.0, 3, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn tolerant_broadcast_filters_error_replies() {
        let rt = runtime();
        // Send an undecodable-op style request: MeanClient answers fine, so
        // simulate failures by checking the filter logic on Error replies
        // produced by a decode failure — craft one via a direct call.
        let replies = rt
            .broadcast_tolerant(&Instruction::GetProperties(ConfigMap::new()), 2)
            .unwrap();
        assert_eq!(replies.len(), 2);
        // Requiring more healthy replies than clients exist fails.
        assert!(rt
            .broadcast_tolerant(&Instruction::GetProperties(ConfigMap::new()), 5)
            .is_err());
    }

    #[test]
    fn out_of_range_client_errors() {
        let rt = runtime();
        assert!(matches!(
            rt.call(5, &Instruction::Shutdown),
            Err(FlError::ClientUnavailable(5))
        ));
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let mut rt = runtime();
        rt.shutdown();
        // Dropping after an explicit shutdown must not hang or panic.
        drop(rt);
    }
}
