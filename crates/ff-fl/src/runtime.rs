//! The in-process federated simulation engine.
//!
//! Each client runs on a dedicated OS thread (mirroring Flower's simulation
//! mode, where clients are independent processes) and communicates with the
//! server over channels carrying *encoded* messages — serialization is not
//! skipped, so the communication boundary behaves like a real network hop
//! minus the latency.
//!
//! # Fault model
//!
//! Channels carry `(sequence, payload)` pairs. Every instruction gets a
//! per-client monotonically increasing sequence number and the server only
//! accepts the reply matching the sequence it is waiting for; replies from
//! earlier, timed-out rounds that arrive late are drained and discarded, so
//! a straggler can never desynchronize the protocol. Client threads wrap
//! handler dispatch in `catch_unwind`, turning a panic into a structured
//! [`Reply::Panicked`] instead of a dead channel. [`run_round`] layers a
//! [`RoundPolicy`] (deadline, response quorum, retries) on top and reports
//! non-responders as typed dropouts while the [`crate::health`] registry
//! decides who participates in future rounds.
//!
//! The legacy [`broadcast`]/[`call`] primitives keep their original
//! blocking semantics for well-behaved clients; only [`run_round`] is safe
//! against clients that hang or drop replies.
//!
//! [`run_round`]: FederatedRuntime::run_round
//! [`broadcast`]: FederatedRuntime::broadcast
//! [`call`]: FederatedRuntime::call

use crate::client::FlClient;
use crate::config::ConfigMap;
use crate::health::{ClientState, HealthPolicy, HealthRegistry, HealthReport};
use crate::log::{Direction, MessageLog};
use crate::message::{Instruction, Reply};
use crate::{FlError, Result};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use ff_trace::Tracer;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-round fault-tolerance policy for [`FederatedRuntime::run_round`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPolicy {
    /// How long to wait for all replies after the send phase. `None`
    /// blocks indefinitely (only safe with well-behaved clients).
    pub deadline: Option<Duration>,
    /// Minimum healthy replies for the round to count (clamped to ≥ 1).
    /// Below this the round fails with [`FlError::Quorum`].
    pub min_responses: usize,
    /// How many times to re-send to clients that timed out or returned
    /// undecodable bytes (transient faults). Panics and disconnects are
    /// never retried.
    pub retries: u32,
    /// Sleep between retry attempts, scaled linearly by attempt number.
    pub backoff: Duration,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        RoundPolicy {
            deadline: Some(Duration::from_secs(30)),
            min_responses: 1,
            retries: 0,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Result of one fault-tolerant round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round number (1-based, shared with the health registry).
    pub round: u64,
    /// Clients the health registry admitted to this round.
    pub participants: Vec<usize>,
    /// Healthy `(client_id, reply)` pairs, in client order.
    pub replies: Vec<(usize, Reply)>,
    /// Clients that dropped out and why, in client order.
    pub dropouts: Vec<(usize, FlError)>,
}

struct ClientHandle {
    tx: Sender<(u64, Bytes)>,
    rx: Receiver<(u64, Bytes)>,
    join: Option<JoinHandle<()>>,
    next_seq: AtomicU64,
}

/// The federated runtime: owns the client threads and offers broadcast /
/// collect primitives that higher layers (FedForecaster's Algorithm 1, the
/// FedAvg loop) build on.
pub struct FederatedRuntime {
    clients: Vec<ClientHandle>,
    log: MessageLog,
    health: Mutex<HealthRegistry>,
    shutdown_timeout: Duration,
    tracer: Mutex<Tracer>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".into()
    }
}

fn client_loop(
    mut client: Box<dyn FlClient>,
    rx_ins: Receiver<(u64, Bytes)>,
    tx_rep: Sender<(u64, Bytes)>,
) {
    while let Ok((seq, raw)) = rx_ins.recv() {
        let ins = match Instruction::decode(raw) {
            Ok(ins) => ins,
            Err(e) => {
                if tx_rep
                    .send((seq, Reply::Error(e.to_string()).encode()))
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        if matches!(ins, Instruction::Shutdown) {
            // Acks bypass wire_transform so a chaos wrapper cannot turn
            // shutdown into a guaranteed timeout.
            let _ = tx_rep.send((seq, Reply::ShutdownAck.encode()));
            break;
        }
        let reply = match catch_unwind(AssertUnwindSafe(|| match ins {
            Instruction::GetProperties(cfg) => Reply::Properties(client.get_properties(&cfg)),
            Instruction::Fit { params, config } => {
                let out = client.fit(&params, &config);
                Reply::FitRes {
                    params: out.params,
                    num_examples: out.num_examples,
                    metrics: out.metrics,
                }
            }
            Instruction::Evaluate { params, config } => {
                let out = client.evaluate(&params, &config);
                Reply::EvaluateRes {
                    loss: out.loss,
                    num_examples: out.num_examples,
                    metrics: out.metrics,
                }
            }
            Instruction::Shutdown => unreachable!("handled above"),
        })) {
            Ok(reply) => reply,
            Err(payload) => Reply::Panicked(panic_message(payload)),
        };
        // A `None` transform means the reply dropped on the wire; the
        // server times out.
        if let Some(bytes) = client.wire_transform(reply.encode().to_vec()) {
            if tx_rep.send((seq, Bytes::from(bytes))).is_err() {
                break;
            }
        }
    }
}

impl FederatedRuntime {
    /// Spawns one thread per client with the default [`HealthPolicy`].
    pub fn new(clients: Vec<Box<dyn FlClient>>) -> FederatedRuntime {
        FederatedRuntime::with_health_policy(clients, HealthPolicy::default())
    }

    /// Spawns one thread per client with an explicit health policy.
    pub fn with_health_policy(
        clients: Vec<Box<dyn FlClient>>,
        policy: HealthPolicy,
    ) -> FederatedRuntime {
        let log = MessageLog::new();
        let handles: Vec<ClientHandle> = clients
            .into_iter()
            .map(|client| {
                let (tx_ins, rx_ins) = unbounded::<(u64, Bytes)>();
                let (tx_rep, rx_rep) = unbounded::<(u64, Bytes)>();
                let join = std::thread::spawn(move || client_loop(client, rx_ins, tx_rep));
                ClientHandle {
                    tx: tx_ins,
                    rx: rx_rep,
                    join: Some(join),
                    next_seq: AtomicU64::new(0),
                }
            })
            .collect();
        let n = handles.len();
        FederatedRuntime {
            clients: handles,
            log,
            health: Mutex::new(HealthRegistry::new(n, policy)),
            shutdown_timeout: Duration::from_secs(5),
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    /// Attaches a tracer: rounds get `fl.round` spans and the
    /// `fl.rounds` / `fl.probes` / `fl.retries` / `fl.deadline_misses` /
    /// `fl.dropouts` / `fl.quarantines` counters; the message log feeds
    /// per-message byte histograms.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.log.set_tracer(tracer.clone());
        *self.tracer.lock() = tracer;
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// The message transcript.
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// A snapshot of every client's health state.
    pub fn health_report(&self) -> HealthReport {
        self.health.lock().report()
    }

    /// The health state of one client, or `None` for an unknown id.
    pub fn client_state(&self, id: usize) -> Option<ClientState> {
        self.health.lock().state(id)
    }

    /// Exports the full health-registry state for durable checkpointing.
    pub fn export_health(&self) -> crate::health::HealthState {
        self.health.lock().export_state()
    }

    /// Restores a previously exported health-registry state (round
    /// counter, per-client streaks, quarantine and probe schedules).
    /// Errors if the client count differs from this runtime's.
    pub fn restore_health(&self, state: &crate::health::HealthState) -> Result<()> {
        self.health
            .lock()
            .restore_state(state)
            .map_err(FlError::Client)
    }

    /// Bounds how long [`shutdown`](Self::shutdown) (and therefore `Drop`)
    /// waits for acks before detaching hung client threads. Default: 5 s.
    pub fn set_shutdown_timeout(&mut self, timeout: Duration) {
        self.shutdown_timeout = timeout;
    }

    fn send_to(&self, id: usize, ins: &Instruction) -> Result<u64> {
        self.send_encoded(id, &ins.encode())
    }

    /// Sends pre-encoded instruction bytes to one client. Broadcast paths
    /// encode the instruction once and share the buffer across all
    /// recipients ([`Bytes::clone`] is a reference-count bump, not a
    /// copy) — at 10,000 clients, re-encoding per recipient would
    /// dominate the send phase.
    fn send_encoded(&self, id: usize, encoded: &Bytes) -> Result<u64> {
        let handle = self.clients.get(id).ok_or(FlError::ClientUnavailable(id))?;
        self.log.record(id, Direction::ToClient, encoded);
        let seq = handle.next_seq.fetch_add(1, AtomicOrdering::SeqCst);
        handle
            .tx
            .send((seq, encoded.clone()))
            .map_err(|_| FlError::ClientUnavailable(id))?;
        Ok(seq)
    }

    /// Waits for the reply carrying `seq`, draining stale replies left
    /// over from earlier timed-out rounds.
    fn collect_from(&self, id: usize, seq: u64, deadline: Option<Instant>) -> Result<Reply> {
        let handle = self.clients.get(id).ok_or(FlError::ClientUnavailable(id))?;
        loop {
            let (got, raw) = match deadline {
                None => handle
                    .rx
                    .recv()
                    .map_err(|_| FlError::ClientUnavailable(id))?,
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        match handle.rx.try_recv() {
                            Ok(pair) => pair,
                            Err(TryRecvError::Empty) => return Err(FlError::Timeout(id)),
                            Err(TryRecvError::Disconnected) => {
                                return Err(FlError::ClientUnavailable(id))
                            }
                        }
                    } else {
                        match handle.rx.recv_timeout(at - now) {
                            Ok(pair) => pair,
                            Err(RecvTimeoutError::Timeout) => return Err(FlError::Timeout(id)),
                            Err(RecvTimeoutError::Disconnected) => {
                                return Err(FlError::ClientUnavailable(id))
                            }
                        }
                    }
                }
            };
            self.log.record(id, Direction::ToServer, &raw);
            if got < seq {
                continue; // stale reply from a timed-out round
            }
            if got > seq {
                return Err(FlError::Codec(format!(
                    "sequence desync on client {id}: got {got}, expected {seq}"
                )));
            }
            return Reply::decode(raw);
        }
    }

    /// Sends an instruction to one client and waits for its reply.
    pub fn call(&self, client_id: usize, ins: &Instruction) -> Result<Reply> {
        let seq = self.send_to(client_id, ins)?;
        self.collect_from(client_id, seq, None)
    }

    /// Broadcasts an instruction to the given clients *in parallel* and
    /// collects `(client_id, reply)` pairs in client order. Blocks until
    /// every client replies — use [`run_round`](Self::run_round) when
    /// clients may hang or drop replies.
    pub fn broadcast(
        &self,
        client_ids: &[usize],
        ins: &Instruction,
    ) -> Result<Vec<(usize, Reply)>> {
        // Send phase: encode once, share the buffer.
        let encoded = ins.encode();
        let mut seqs = Vec::with_capacity(client_ids.len());
        for &id in client_ids {
            seqs.push((id, self.send_encoded(id, &encoded)?));
        }
        // Collect phase (clients compute concurrently on their threads).
        let mut replies = Vec::with_capacity(client_ids.len());
        for (id, seq) in seqs {
            replies.push((id, self.collect_from(id, seq, None)?));
        }
        Ok(replies)
    }

    /// Broadcasts to every client.
    pub fn broadcast_all(&self, ins: &Instruction) -> Result<Vec<(usize, Reply)>> {
        let ids: Vec<usize> = (0..self.n_clients()).collect();
        self.broadcast(&ids, ins)
    }

    /// Broadcasts to a random subset of clients — Flower-style per-round
    /// client sampling (`fraction_fit`). At least one client is always
    /// selected; the draw is deterministic in `seed`.
    pub fn broadcast_sample(
        &self,
        fraction: f64,
        seed: u64,
        ins: &Instruction,
    ) -> Result<Vec<(usize, Reply)>> {
        let n = self.n_clients();
        let k = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n);
        // Fisher–Yates prefix with a seeded LCG (no rand dependency here).
        let mut ids: Vec<usize> = (0..n).collect();
        let mut state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
        for i in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = i + (state >> 33) as usize % (n - i);
            ids.swap(i, j);
        }
        let mut selected = ids[..k].to_vec();
        selected.sort_unstable();
        self.broadcast(&selected, ins)
    }

    /// Fault-tolerant broadcast: clients that answer with [`Reply::Error`]
    /// or [`Reply::Panicked`] are treated as dropouts and filtered out.
    /// Errors only when fewer than `min_responses` healthy replies arrive —
    /// the availability contract of a real FL deployment where stragglers
    /// and crashed devices are routine.
    pub fn broadcast_tolerant(
        &self,
        ins: &Instruction,
        min_responses: usize,
    ) -> Result<Vec<(usize, Reply)>> {
        let replies = self.broadcast_all(ins)?;
        let healthy: Vec<(usize, Reply)> = replies
            .into_iter()
            .filter(|(_, r)| !matches!(r, Reply::Error(_) | Reply::Panicked(_)))
            .collect();
        if healthy.len() < min_responses.max(1) {
            return Err(FlError::Client(format!(
                "only {} of {} clients responded (need {})",
                healthy.len(),
                self.n_clients(),
                min_responses
            )));
        }
        Ok(healthy)
    }

    /// Runs one fault-tolerant round: the health registry picks the
    /// participants, the instruction is broadcast, and replies are
    /// collected against the policy deadline. Timeouts and undecodable
    /// replies are retried up to `policy.retries` times with linear
    /// backoff; panics and disconnects are terminal for the round. The
    /// round succeeds with whatever healthy subset replied, as long as the
    /// quorum is met; every non-responder is reported as a typed dropout
    /// and recorded as a health failure (driving quarantine).
    pub fn run_round(&self, ins: &Instruction, policy: &RoundPolicy) -> Result<RoundOutcome> {
        let tracer = self.tracer.lock().clone();
        let (round, mut pending, probes) = {
            let mut health = self.health.lock();
            let round = health.begin_round();
            let admitted = health.admitted(round);
            // Quarantined clients in the admitted set are backoff probes.
            let probes = if tracer.is_enabled() {
                admitted
                    .iter()
                    .filter(|id| health.state(**id) == Some(ClientState::Quarantined))
                    .count() as u64
            } else {
                0
            };
            (round, admitted, probes)
        };
        let _round_span = tracer.span_labeled("fl.round", round);
        tracer.counter_add("fl.rounds", 1);
        if probes > 0 {
            tracer.counter_add("fl.probes", probes);
        }
        let participants = pending.clone();
        let encoded = ins.encode(); // once per round, shared across sends
        let mut ok_replies: Vec<(usize, Reply)> = Vec::new();
        let mut dropouts: Vec<(usize, FlError)> = Vec::new();
        let mut attempt: u32 = 0;
        while !pending.is_empty() {
            attempt += 1;
            let mut seqs = Vec::with_capacity(pending.len());
            let mut failures: Vec<(usize, FlError)> = Vec::new();
            for &id in &pending {
                match self.send_encoded(id, &encoded) {
                    Ok(seq) => seqs.push((id, seq)),
                    Err(e) => failures.push((id, e)),
                }
            }
            // One shared deadline per attempt: clients compute in
            // parallel, so the round takes max(deadline, slowest healthy
            // reply), not a per-client sum.
            let deadline = policy.deadline.map(|d| Instant::now() + d);
            for (id, seq) in seqs {
                match self.collect_from(id, seq, deadline) {
                    Ok(Reply::Panicked(_)) => failures.push((id, FlError::ClientPanicked(id))),
                    Ok(reply) => ok_replies.push((id, reply)),
                    Err(e) => failures.push((id, e)),
                }
            }
            let can_retry = attempt <= policy.retries;
            if tracer.is_enabled() {
                let misses = failures
                    .iter()
                    .filter(|(_, e)| matches!(e, FlError::Timeout(_)))
                    .count() as u64;
                if misses > 0 {
                    tracer.counter_add("fl.deadline_misses", misses);
                }
            }
            let (retry, terminal): (Vec<_>, Vec<_>) = failures.into_iter().partition(|(_, e)| {
                can_retry && matches!(e, FlError::Timeout(_) | FlError::Codec(_))
            });
            dropouts.extend(terminal);
            pending = retry.into_iter().map(|(id, _)| id).collect();
            if !pending.is_empty() {
                tracer.counter_add("fl.retries", pending.len() as u64);
            }
            if !pending.is_empty() && !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff * attempt);
            }
        }
        {
            let mut health = self.health.lock();
            for (id, _) in &ok_replies {
                health.record_success(*id);
            }
            let mut quarantines = 0u64;
            for (id, _) in &dropouts {
                let before = health.state(*id);
                let after = health.record_failure(*id);
                if after == Some(ClientState::Quarantined)
                    && before != Some(ClientState::Quarantined)
                {
                    quarantines += 1;
                }
            }
            if !dropouts.is_empty() {
                tracer.counter_add("fl.dropouts", dropouts.len() as u64);
            }
            if quarantines > 0 {
                tracer.counter_add("fl.quarantines", quarantines);
            }
        }
        ok_replies.sort_by_key(|(id, _)| *id);
        dropouts.sort_by_key(|(id, _)| *id);
        let required = policy.min_responses.max(1);
        if ok_replies.len() < required {
            return Err(FlError::Quorum {
                healthy: ok_replies.len(),
                required,
            });
        }
        Ok(RoundOutcome {
            round,
            participants,
            replies: ok_replies,
            dropouts,
        })
    }

    /// Records that the robust-aggregation guard rejected `id`'s on-time
    /// reply as Byzantine: escalates the client's integrity streak in the
    /// health registry (repeat offenders quarantine exactly like crash
    /// faults) and emits the `fl.updates_rejected` /
    /// `fl.byzantine_suspected` counters. Returns the client's new health
    /// state, or `None` for an unknown id.
    pub fn record_update_rejected(&self, id: usize) -> Option<ClientState> {
        let tracer = self.tracer.lock().clone();
        let (before, after) = {
            let mut health = self.health.lock();
            let before = health.state(id);
            (before, health.record_rejection(id))
        };
        after?;
        tracer.counter_add("fl.updates_rejected", 1);
        if before == Some(ClientState::Healthy) && after != Some(ClientState::Healthy) {
            tracer.counter_add("fl.byzantine_suspected", 1);
        }
        if after == Some(ClientState::Quarantined) && before != Some(ClientState::Quarantined) {
            tracer.counter_add("fl.quarantines", 1);
        }
        after
    }

    /// Records that the guard accepted `id`'s update, clearing its
    /// integrity streak (see
    /// [`HealthRegistry::record_accepted`](crate::health::HealthRegistry::record_accepted)).
    pub fn record_update_accepted(&self, id: usize) {
        self.health.lock().record_accepted(id);
    }

    /// Convenience: `GetProperties` to every client, returning config maps.
    pub fn collect_properties(&self, config: &ConfigMap) -> Result<Vec<ConfigMap>> {
        let replies = self.broadcast_all(&Instruction::GetProperties(config.clone()))?;
        replies
            .into_iter()
            .map(|(_, r)| match r {
                Reply::Properties(cfg) => Ok(cfg),
                Reply::Error(e) => Err(FlError::Client(e)),
                other => Err(FlError::Codec(format!("unexpected reply {other:?}"))),
            })
            .collect()
    }

    /// Shuts all clients down within the configured shutdown timeout.
    pub fn shutdown(&mut self) {
        self.shutdown_within(self.shutdown_timeout);
    }

    /// Shuts all clients down, waiting at most `timeout` overall for acks.
    /// Threads that do not ack in time (hung in a handler) are detached
    /// rather than joined, so this — and therefore `Drop` — never blocks
    /// longer than `timeout`.
    pub fn shutdown_within(&mut self, timeout: Duration) {
        // Send phase: best effort. A failed send means the client thread
        // already exited, which is exactly what shutdown wants.
        let mut acks: Vec<Option<u64>> = Vec::with_capacity(self.clients.len());
        let encoded = Instruction::Shutdown.encode();
        for (id, handle) in self.clients.iter().enumerate() {
            self.log.record(id, Direction::ToClient, &encoded);
            let seq = handle.next_seq.fetch_add(1, AtomicOrdering::SeqCst);
            acks.push(handle.tx.send((seq, encoded.clone())).ok().map(|_| seq));
        }
        let deadline = Instant::now() + timeout;
        for (handle, ack) in self.clients.iter_mut().zip(acks) {
            // A failed send means the thread has already exited: joinable.
            let mut done = ack.is_none();
            if let Some(seq) = ack {
                loop {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match handle.rx.recv_timeout(remaining) {
                        Ok((got, _)) if got >= seq => {
                            done = true;
                            break;
                        }
                        Ok(_) => continue, // stale reply from a timed-out round
                        Err(RecvTimeoutError::Disconnected) => {
                            done = true;
                            break;
                        }
                        Err(RecvTimeoutError::Timeout) => break,
                    }
                }
            }
            if let Some(join) = handle.join.take() {
                if done {
                    let _ = join.join();
                }
                // Not done: drop the handle, detaching the hung thread. It
                // exits on its own once its instruction channel closes.
            }
        }
    }
}

impl Drop for FederatedRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{EvalOutput, FitOutput};
    use crate::config::ConfigMapExt;

    /// Toy client: holds a private scalar dataset; fit returns its mean.
    struct MeanClient {
        data: Vec<f64>,
    }

    impl FlClient for MeanClient {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            ConfigMap::new().with_int("n", self.data.len() as i64)
        }

        fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
            let mean = self.data.iter().sum::<f64>() / self.data.len() as f64;
            FitOutput {
                params: vec![mean],
                num_examples: self.data.len() as u64,
                metrics: ConfigMap::new(),
            }
        }

        fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
            let center = params.first().copied().unwrap_or(0.0);
            let loss = self
                .data
                .iter()
                .map(|v| (v - center) * (v - center))
                .sum::<f64>()
                / self.data.len() as f64;
            EvalOutput {
                loss,
                num_examples: self.data.len() as u64,
                metrics: ConfigMap::new(),
            }
        }
    }

    /// Client that panics on every call.
    struct PanicClient;

    impl FlClient for PanicClient {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            panic!("simulated device crash");
        }
        fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
            panic!("simulated device crash");
        }
        fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
            panic!("simulated device crash");
        }
    }

    /// Client that sleeps a per-call duration before answering.
    struct SlowClient {
        delays: Vec<Duration>,
        call: usize,
    }

    impl SlowClient {
        fn nap(&mut self) {
            let d = self
                .delays
                .get(self.call)
                .copied()
                .unwrap_or(Duration::ZERO);
            self.call += 1;
            std::thread::sleep(d);
        }
    }

    impl FlClient for SlowClient {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            self.nap();
            ConfigMap::new().with_int("slow", 1)
        }
        fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
            self.nap();
            FitOutput {
                params: vec![],
                num_examples: 1,
                metrics: ConfigMap::new(),
            }
        }
        fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
            self.nap();
            EvalOutput {
                loss: 0.0,
                num_examples: 1,
                metrics: ConfigMap::new(),
            }
        }
    }

    fn runtime() -> FederatedRuntime {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient {
                data: vec![1.0, 2.0, 3.0],
            }),
            Box::new(MeanClient {
                data: vec![10.0, 20.0],
            }),
        ];
        FederatedRuntime::new(clients)
    }

    #[test]
    fn properties_roundtrip_through_runtime() {
        let rt = runtime();
        let props = rt.collect_properties(&ConfigMap::new()).unwrap();
        assert_eq!(props[0].int_or("n", 0), 3);
        assert_eq!(props[1].int_or("n", 0), 2);
    }

    #[test]
    fn broadcast_fit_returns_all_results_in_order() {
        let rt = runtime();
        let replies = rt
            .broadcast_all(&Instruction::Fit {
                params: vec![],
                config: ConfigMap::new(),
            })
            .unwrap();
        assert_eq!(replies.len(), 2);
        match &replies[0].1 {
            Reply::FitRes {
                params,
                num_examples,
                ..
            } => {
                assert!((params[0] - 2.0).abs() < 1e-12);
                assert_eq!(*num_examples, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1].1 {
            Reply::FitRes { params, .. } => assert!((params[0] - 15.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn evaluate_computes_local_losses() {
        let rt = runtime();
        let replies = rt
            .broadcast_all(&Instruction::Evaluate {
                params: vec![2.0],
                config: ConfigMap::new(),
            })
            .unwrap();
        match &replies[0].1 {
            Reply::EvaluateRes { loss, .. } => assert!((loss - 2.0 / 3.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subset_broadcast_only_touches_selected_clients() {
        let rt = runtime();
        let replies = rt
            .broadcast(&[1], &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, 1);
    }

    #[test]
    fn log_records_all_traffic() {
        let rt = runtime();
        rt.collect_properties(&ConfigMap::new()).unwrap();
        // 2 instructions + 2 replies.
        assert_eq!(rt.log().len(), 4);
        let (to_client, to_server) = rt.log().byte_totals();
        assert!(to_client > 0 && to_server > 0);
    }

    #[test]
    fn sampled_broadcast_hits_a_subset() {
        let clients: Vec<Box<dyn FlClient>> = (0..10)
            .map(|i| {
                Box::new(MeanClient {
                    data: vec![i as f64 + 1.0],
                }) as Box<dyn FlClient>
            })
            .collect();
        let rt = FederatedRuntime::new(clients);
        let replies = rt
            .broadcast_sample(0.3, 7, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(replies.len(), 3);
        // Deterministic per seed.
        let again = rt
            .broadcast_sample(0.3, 7, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(
            replies.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            again.iter().map(|(i, _)| *i).collect::<Vec<_>>()
        );
        // Zero fraction still reaches one client.
        let one = rt
            .broadcast_sample(0.0, 3, &Instruction::GetProperties(ConfigMap::new()))
            .unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn tolerant_broadcast_filters_error_replies() {
        let rt = runtime();
        // Send an undecodable-op style request: MeanClient answers fine, so
        // simulate failures by checking the filter logic on Error replies
        // produced by a decode failure — craft one via a direct call.
        let replies = rt
            .broadcast_tolerant(&Instruction::GetProperties(ConfigMap::new()), 2)
            .unwrap();
        assert_eq!(replies.len(), 2);
        // Requiring more healthy replies than clients exist fails.
        assert!(rt
            .broadcast_tolerant(&Instruction::GetProperties(ConfigMap::new()), 5)
            .is_err());
    }

    #[test]
    fn out_of_range_client_errors() {
        let rt = runtime();
        assert!(matches!(
            rt.call(5, &Instruction::Shutdown),
            Err(FlError::ClientUnavailable(5))
        ));
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let mut rt = runtime();
        rt.shutdown();
        // Dropping after an explicit shutdown must not hang or panic.
        drop(rt);
    }

    #[test]
    fn panicked_client_becomes_structured_dropout() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient {
                data: vec![1.0, 2.0],
            }),
            Box::new(PanicClient),
        ];
        let rt = FederatedRuntime::new(clients);
        let policy = RoundPolicy {
            min_responses: 1,
            ..RoundPolicy::default()
        };
        let outcome = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(outcome.participants, vec![0, 1]);
        assert_eq!(outcome.replies.len(), 1);
        assert_eq!(outcome.replies[0].0, 0);
        assert_eq!(outcome.dropouts, vec![(1, FlError::ClientPanicked(1))]);
        // The panicked client's thread survives: the next round still
        // reaches it (and it still answers the well-behaved way a real
        // recovered device would — here it panics again).
        let outcome2 = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(outcome2.dropouts.len(), 1);
        // Two consecutive failures quarantine the client.
        assert_eq!(rt.client_state(1), Some(ClientState::Quarantined));
        let outcome3 = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(outcome3.participants, vec![0]);
    }

    #[test]
    fn deadline_times_out_stragglers_and_late_reply_is_discarded() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient { data: vec![5.0] }),
            // Slow on the first call only; instant afterwards.
            Box::new(SlowClient {
                delays: vec![Duration::from_millis(400)],
                call: 0,
            }),
        ];
        let mut rt = FederatedRuntime::new(clients);
        rt.set_shutdown_timeout(Duration::from_millis(1500));
        let policy = RoundPolicy {
            deadline: Some(Duration::from_millis(60)),
            min_responses: 1,
            retries: 0,
            backoff: Duration::ZERO,
        };
        let started = Instant::now();
        let outcome = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "deadline not enforced"
        );
        assert_eq!(outcome.replies.len(), 1);
        assert_eq!(outcome.dropouts, vec![(1, FlError::Timeout(1))]);
        // Round 2: the straggler's late round-1 reply must be discarded,
        // not mistaken for the round-2 answer.
        std::thread::sleep(Duration::from_millis(450));
        let outcome2 = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(
            outcome2.replies.len(),
            2,
            "recovered straggler should answer round 2"
        );
        match &outcome2.replies[1].1 {
            Reply::Properties(cfg) => assert_eq!(cfg.int_or("slow", 0), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rt.client_state(1), Some(ClientState::Healthy));
    }

    #[test]
    fn quorum_unmet_fails_the_round_not_the_runtime() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(PanicClient),
            Box::new(MeanClient { data: vec![1.0] }),
        ];
        let rt = FederatedRuntime::new(clients);
        let policy = RoundPolicy {
            min_responses: 2,
            ..RoundPolicy::default()
        };
        match rt.run_round(&Instruction::GetProperties(ConfigMap::new()), &policy) {
            Err(FlError::Quorum { healthy, required }) => {
                assert_eq!((healthy, required), (1, 2));
            }
            other => panic!("expected quorum error, got {other:?}"),
        }
        // The healthy client is still usable afterwards.
        let relaxed = RoundPolicy {
            min_responses: 1,
            ..RoundPolicy::default()
        };
        let outcome = rt
            .run_round(&Instruction::GetProperties(ConfigMap::new()), &relaxed)
            .unwrap();
        assert_eq!(outcome.replies.len(), 1);
    }

    #[test]
    fn guard_rejections_escalate_health_and_emit_counters() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient { data: vec![1.0] }),
            Box::new(MeanClient { data: vec![2.0] }),
        ];
        let rt = FederatedRuntime::new(clients);
        let tracer = Tracer::enabled();
        rt.set_tracer(tracer.clone());
        let policy = RoundPolicy::default();
        // Two rounds where client 1 replies on time but the guard rejects
        // its update: Suspect, then a fresh quarantine.
        rt.run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(
            rt.record_update_rejected(1),
            Some(ClientState::Suspect),
            "first rejection"
        );
        rt.record_update_accepted(0);
        rt.run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
            .unwrap();
        assert_eq!(rt.record_update_rejected(1), Some(ClientState::Quarantined));
        assert_eq!(rt.client_state(1), Some(ClientState::Quarantined));
        assert_eq!(rt.client_state(0), Some(ClientState::Healthy));
        let snap = tracer.snapshot();
        assert_eq!(snap.counter("fl.updates_rejected"), 2);
        assert_eq!(snap.counter("fl.byzantine_suspected"), 1);
        assert_eq!(snap.counter("fl.quarantines"), 1);
        assert_eq!(rt.record_update_rejected(99), None, "unknown id");
    }

    #[test]
    fn tracer_captures_round_spans_counters_and_byte_histograms() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient {
                data: vec![1.0, 2.0],
            }),
            Box::new(PanicClient),
        ];
        let rt = FederatedRuntime::new(clients);
        let tracer = Tracer::enabled();
        rt.set_tracer(tracer.clone());
        let policy = RoundPolicy {
            min_responses: 1,
            ..RoundPolicy::default()
        };
        for _ in 0..2 {
            rt.run_round(&Instruction::GetProperties(ConfigMap::new()), &policy)
                .unwrap();
        }
        let snap = tracer.snapshot();
        let rounds = snap.spans_named("fl.round");
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].label, Some(1));
        assert!(rounds.iter().all(|s| s.end_us.is_some()));
        assert_eq!(snap.counter("fl.rounds"), 2);
        // The panicking client drops out of both rounds and the second
        // failure is a fresh quarantine.
        assert_eq!(snap.counter("fl.dropouts"), 2);
        assert_eq!(snap.counter("fl.quarantines"), 1);
        // Byte histograms flow through the message log in both directions.
        assert!(snap
            .histograms
            .iter()
            .any(|(id, h)| id.name == "fl.msg_bytes_to_client" && !h.is_empty()));
        assert!(snap
            .histograms
            .iter()
            .any(|(id, h)| id.name == "fl.msg_bytes_to_server" && !h.is_empty()));
    }

    #[test]
    fn shutdown_with_hung_client_is_bounded() {
        let clients: Vec<Box<dyn FlClient>> = vec![
            Box::new(MeanClient { data: vec![1.0] }),
            Box::new(SlowClient {
                delays: vec![Duration::from_secs(30)],
                call: 0,
            }),
        ];
        let mut rt = FederatedRuntime::new(clients);
        // Park the slow client inside its 30 s handler.
        let _ = rt.send_to(1, &Instruction::GetProperties(ConfigMap::new()));
        rt.set_shutdown_timeout(Duration::from_millis(100));
        let started = Instant::now();
        drop(rt);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "drop blocked on a hung client"
        );
    }
}
