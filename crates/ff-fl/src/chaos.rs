//! Deterministic fault injection for federated rounds.
//!
//! [`ChaosClient`] wraps any [`FlClient`] and, driven by a seeded PRNG,
//! injects the failure modes a real deployment exhibits: handler panics,
//! stragglers (fixed delay plus jitter), dropped replies (the server sees a
//! timeout), and corrupted payloads (the server sees a codec error). Every
//! fault is reproducible from [`ChaosConfig::seed`], so chaos tests are as
//! deterministic as the rest of the suite.
//!
//! Beyond availability faults, [`AdversarialMode`] turns the wrapper
//! into a *Byzantine* client: it replies on time with well-formed but
//! corrupted content (flipped signs, scaled parameters and losses, NaN
//! floods, stuck constants) — the attack surface the
//! [`robust`](crate::robust) aggregation layer defends against.

use std::time::Duration;

use crate::client::{EvalOutput, FitOutput, FlClient};
use crate::config::ConfigMap;

/// Metric key carrying the per-client validation loss in fit replies;
/// adversarial modes corrupt it alongside the parameters.
const VALID_LOSS_KEY: &str = "valid_loss";

/// Content-level (Byzantine) corruption applied to fit and evaluate
/// replies. Unlike the probabilistic availability faults, adversarial
/// corruption is applied on *every* call — a deliberate attacker, not a
/// lossy link — and consumes no PRNG state, so adding an adversary never
/// perturbs the availability-fault schedule of the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdversarialMode {
    /// Honest content (the default).
    #[default]
    None,
    /// Negate every parameter — a model-poisoning gradient reversal.
    /// Losses are reported honestly, so this attacker is invisible to
    /// loss screens and must be caught by the aggregator.
    SignFlip,
    /// Multiply parameters and reported losses by a constant.
    ScaleBy(f64),
    /// Replace parameters and losses with NaN.
    NanInject,
    /// Report the same constant for every parameter and loss, carrying
    /// no information about the local data.
    Stuck(f64),
}

impl AdversarialMode {
    fn corrupt_params(&self, params: &mut [f64]) {
        match *self {
            AdversarialMode::None => {}
            AdversarialMode::SignFlip => params.iter_mut().for_each(|v| *v = -*v),
            AdversarialMode::ScaleBy(k) => params.iter_mut().for_each(|v| *v *= k),
            AdversarialMode::NanInject => params.iter_mut().for_each(|v| *v = f64::NAN),
            AdversarialMode::Stuck(c) => params.iter_mut().for_each(|v| *v = c),
        }
    }

    fn corrupt_loss(&self, loss: f64) -> f64 {
        match *self {
            AdversarialMode::None | AdversarialMode::SignFlip => loss,
            AdversarialMode::ScaleBy(k) => loss * k,
            AdversarialMode::NanInject => f64::NAN,
            AdversarialMode::Stuck(c) => c,
        }
    }
}

/// Fault-injection knobs. All probabilities are per call, in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// PRNG seed; equal seeds replay the identical fault schedule.
    pub seed: u64,
    /// Panic on these handler calls (1-based call numbers), regardless of
    /// `panic_prob`.
    pub panic_on_calls: Vec<u64>,
    /// Probability of panicking on any handler call.
    pub panic_prob: f64,
    /// Fixed delay added to every handler call.
    pub fixed_delay: Duration,
    /// Extra uniform-random delay in `[0, jitter)` per handler call.
    pub jitter: Duration,
    /// Probability of dropping the encoded reply (server observes a
    /// timeout).
    pub drop_prob: f64,
    /// Probability of corrupting the encoded reply (server observes a
    /// codec error).
    pub corrupt_prob: f64,
    /// Content-level corruption applied to fit/evaluate replies
    /// (Byzantine behaviour, on every call).
    pub adversary: AdversarialMode,
}

impl ChaosConfig {
    /// Deterministic per-client fault profile for fleet-scale chaos runs.
    ///
    /// Hashes `(fleet_seed, client_id)` to decide, reproducibly, whether
    /// this client is Byzantine (the first `byzantine_fraction` of the
    /// hash space: a rotating attack drawn from [`AdversarialMode`]) and
    /// whether it is availability-faulty (an *independent* draw of
    /// `fault_fraction`: a mix of reply-dropping and payload-corrupting
    /// links). **No sleep-based faults** — a 10,000-client simulated
    /// round must not wait on wall clocks, so stragglers are modelled as
    /// deterministic drops, never delays.
    pub fn fleet_profile(
        fleet_seed: u64,
        client_id: usize,
        byzantine_fraction: f64,
        fault_fraction: f64,
    ) -> ChaosConfig {
        // splitmix64 over (seed, id) — one draw per decision.
        let mut state = fleet_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(client_id as u64)
            .wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let unit = |raw: u64| (raw >> 11) as f64 / (1u64 << 53) as f64;
        let byzantine = unit(next()) < byzantine_fraction.clamp(0.0, 1.0);
        let faulty = unit(next()) < fault_fraction.clamp(0.0, 1.0);
        let attack_pick = next();
        let adversary = if byzantine {
            match attack_pick % 4 {
                0 => AdversarialMode::ScaleBy(1e6),
                1 => AdversarialMode::SignFlip,
                2 => AdversarialMode::NanInject,
                _ => AdversarialMode::Stuck(1e9),
            }
        } else {
            AdversarialMode::None
        };
        let (drop_prob, corrupt_prob) = if faulty {
            // Half the faulty clients mostly drop, half mostly corrupt.
            if next() % 2 == 0 {
                (0.5, 0.1)
            } else {
                (0.1, 0.5)
            }
        } else {
            (0.0, 0.0)
        };
        ChaosConfig {
            seed: next(),
            drop_prob,
            corrupt_prob,
            adversary,
            ..ChaosConfig::default()
        }
    }

    /// Whether this profile corrupts reply *content* (Byzantine), as
    /// opposed to availability faults only.
    pub fn is_byzantine(&self) -> bool {
        self.adversary != AdversarialMode::None
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            panic_on_calls: Vec::new(),
            panic_prob: 0.0,
            fixed_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            adversary: AdversarialMode::None,
        }
    }
}

/// Wraps an inner client and injects faults per a [`ChaosConfig`].
pub struct ChaosClient {
    inner: Box<dyn FlClient>,
    cfg: ChaosConfig,
    rng: u64,
    calls: u64,
}

impl ChaosClient {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Box<dyn FlClient>, cfg: ChaosConfig) -> ChaosClient {
        // splitmix64 seeding; avoid an all-zero state.
        let rng = cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        ChaosClient {
            inner,
            cfg,
            rng,
            calls: 0,
        }
    }

    /// A client that panics on every handler call.
    pub fn panicking(inner: Box<dyn FlClient>) -> ChaosClient {
        ChaosClient::new(
            inner,
            ChaosConfig {
                panic_prob: 1.0,
                ..ChaosConfig::default()
            },
        )
    }

    /// A straggler that sleeps `delay` before answering every call.
    pub fn hanging(inner: Box<dyn FlClient>, delay: Duration) -> ChaosClient {
        ChaosClient::new(
            inner,
            ChaosConfig {
                fixed_delay: delay,
                ..ChaosConfig::default()
            },
        )
    }

    /// A client that corrupts every encoded reply.
    pub fn corrupting(inner: Box<dyn FlClient>, seed: u64) -> ChaosClient {
        ChaosClient::new(
            inner,
            ChaosConfig {
                corrupt_prob: 1.0,
                seed,
                ..ChaosConfig::default()
            },
        )
    }

    /// A client that drops each reply with probability `drop_prob`.
    pub fn flaky(inner: Box<dyn FlClient>, drop_prob: f64, seed: u64) -> ChaosClient {
        ChaosClient::new(
            inner,
            ChaosConfig {
                drop_prob,
                seed,
                ..ChaosConfig::default()
            },
        )
    }

    /// A Byzantine client: replies on time, but with content corrupted
    /// per `mode` on every fit/evaluate call.
    pub fn adversarial(inner: Box<dyn FlClient>, mode: AdversarialMode, seed: u64) -> ChaosClient {
        ChaosClient::new(
            inner,
            ChaosConfig {
                adversary: mode,
                seed,
                ..ChaosConfig::default()
            },
        )
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    fn before_call(&mut self) {
        self.calls += 1;
        if self.cfg.panic_on_calls.contains(&self.calls) || {
            let p = self.cfg.panic_prob;
            self.chance(p)
        } {
            panic!("chaos: injected panic on call {}", self.calls);
        }
        let mut delay = self.cfg.fixed_delay;
        if !self.cfg.jitter.is_zero() {
            let frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            delay += self.cfg.jitter.mul_f64(frac);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

impl FlClient for ChaosClient {
    fn get_properties(&mut self, config: &ConfigMap) -> ConfigMap {
        self.before_call();
        self.inner.get_properties(config)
    }

    fn fit(&mut self, params: &[f64], config: &ConfigMap) -> FitOutput {
        self.before_call();
        let mut out = self.inner.fit(params, config);
        self.cfg.adversary.corrupt_params(&mut out.params);
        if let Some(loss) = out
            .metrics
            .get(VALID_LOSS_KEY)
            .and_then(crate::config::ConfigValue::as_float)
        {
            out.metrics.insert(
                VALID_LOSS_KEY.to_string(),
                crate::config::ConfigValue::Float(self.cfg.adversary.corrupt_loss(loss)),
            );
        }
        out
    }

    fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput {
        self.before_call();
        let mut out = self.inner.evaluate(params, config);
        out.loss = self.cfg.adversary.corrupt_loss(out.loss);
        out
    }

    fn wire_transform(&mut self, mut encoded_reply: Vec<u8>) -> Option<Vec<u8>> {
        let drop_p = self.cfg.drop_prob;
        if self.chance(drop_p) {
            return None;
        }
        let corrupt_p = self.cfg.corrupt_prob;
        if self.chance(corrupt_p) && !encoded_reply.is_empty() {
            // Smash the reply tag to an unknown value and truncate the
            // body, so the server's decoder is guaranteed to reject it —
            // a single flipped payload byte could still decode cleanly.
            encoded_reply[0] = 0xFF;
            let keep = encoded_reply.len().div_ceil(2);
            encoded_reply.truncate(keep);
            return Some(encoded_reply);
        }
        self.inner.wire_transform(encoded_reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Reply;

    /// Minimal well-behaved inner client for wrapping.
    struct Echo;

    impl FlClient for Echo {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            ConfigMap::new()
        }
        fn fit(&mut self, params: &[f64], _config: &ConfigMap) -> FitOutput {
            FitOutput {
                params: params.to_vec(),
                num_examples: 1,
                metrics: ConfigMap::new(),
            }
        }
        fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
            EvalOutput {
                loss: 0.0,
                num_examples: 1,
                metrics: ConfigMap::new(),
            }
        }
    }

    #[test]
    fn same_seed_replays_the_same_fault_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let mut c = ChaosClient::flaky(Box::new(Echo), 0.5, seed);
            (0..64)
                .map(|_| c.wire_transform(vec![1, 2, 3, 4]).is_none())
                .collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "different seeds should diverge");
    }

    #[test]
    fn panicking_client_panics_on_first_call() {
        let mut c = ChaosClient::panicking(Box::new(Echo));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fit(&[1.0], &ConfigMap::new())
        }));
        assert!(res.is_err());
    }

    #[test]
    fn panic_on_calls_targets_exact_calls() {
        let cfg = ChaosConfig {
            panic_on_calls: vec![2],
            ..ChaosConfig::default()
        };
        let mut c = ChaosClient::new(Box::new(Echo), cfg);
        let _ = c.evaluate(&[], &ConfigMap::new()); // call 1: fine
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.evaluate(&[], &ConfigMap::new()) // call 2: panics
        }));
        assert!(res.is_err());
    }

    #[test]
    fn corrupted_reply_fails_to_decode() {
        let mut c = ChaosClient::corrupting(Box::new(Echo), 7);
        let encoded = Reply::EvaluateRes {
            loss: 1.0,
            num_examples: 3,
            metrics: ConfigMap::new(),
        }
        .encode()
        .to_vec();
        let mangled = c
            .wire_transform(encoded)
            .expect("corruption keeps the reply");
        assert!(Reply::decode(bytes::Bytes::from(mangled)).is_err());
    }

    #[test]
    fn adversarial_modes_corrupt_params_and_losses() {
        let fit = |mode: AdversarialMode| {
            let mut c = ChaosClient::adversarial(Box::new(Echo), mode, 0);
            c.fit(&[1.0, -2.0], &ConfigMap::new()).params
        };
        assert_eq!(fit(AdversarialMode::SignFlip), vec![-1.0, 2.0]);
        assert_eq!(fit(AdversarialMode::ScaleBy(1e6)), vec![1e6, -2e6]);
        assert!(fit(AdversarialMode::NanInject).iter().all(|v| v.is_nan()));
        assert_eq!(fit(AdversarialMode::Stuck(7.0)), vec![7.0, 7.0]);

        let mut c = ChaosClient::adversarial(Box::new(Echo), AdversarialMode::NanInject, 0);
        assert!(c.evaluate(&[], &ConfigMap::new()).loss.is_nan());
        // Sign-flip attacks parameters only; the loss stays honest.
        let mut c = ChaosClient::adversarial(Box::new(Echo), AdversarialMode::SignFlip, 0);
        assert_eq!(c.evaluate(&[], &ConfigMap::new()).loss, 0.0);
    }

    #[test]
    fn adversary_corrupts_valid_loss_metric() {
        struct WithLoss;
        impl FlClient for WithLoss {
            fn get_properties(&mut self, _c: &ConfigMap) -> ConfigMap {
                ConfigMap::new()
            }
            fn fit(&mut self, _p: &[f64], _c: &ConfigMap) -> FitOutput {
                use crate::config::ConfigMapExt;
                FitOutput {
                    params: vec![],
                    num_examples: 1,
                    metrics: ConfigMap::new().with_float("valid_loss", 2.0),
                }
            }
            fn evaluate(&mut self, _p: &[f64], _c: &ConfigMap) -> EvalOutput {
                EvalOutput {
                    loss: 0.0,
                    num_examples: 1,
                    metrics: ConfigMap::new(),
                }
            }
        }
        use crate::config::ConfigMapExt;
        let mut c = ChaosClient::adversarial(Box::new(WithLoss), AdversarialMode::ScaleBy(1e6), 0);
        let out = c.fit(&[], &ConfigMap::new());
        assert_eq!(out.metrics.float_or("valid_loss", 0.0), 2e6);
    }

    #[test]
    fn adversary_does_not_perturb_availability_schedule() {
        // Same seed, with and without an adversary: the drop schedule
        // must be identical because corruption consumes no PRNG state.
        let schedule = |mode: AdversarialMode| -> Vec<bool> {
            let cfg = ChaosConfig {
                drop_prob: 0.5,
                seed: 11,
                adversary: mode,
                ..ChaosConfig::default()
            };
            let mut c = ChaosClient::new(Box::new(Echo), cfg);
            (0..64)
                .map(|_| c.wire_transform(vec![1, 2, 3, 4]).is_none())
                .collect()
        };
        assert_eq!(
            schedule(AdversarialMode::None),
            schedule(AdversarialMode::SignFlip)
        );
    }

    #[test]
    fn identity_when_no_faults_configured() {
        let mut c = ChaosClient::new(Box::new(Echo), ChaosConfig::default());
        let out = c.fit(&[3.0, 4.0], &ConfigMap::new());
        assert_eq!(out.params, vec![3.0, 4.0]);
        assert_eq!(c.wire_transform(vec![9, 9]), Some(vec![9, 9]));
    }
}
