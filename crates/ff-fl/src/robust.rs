//! Byzantine-robust aggregation: survive corrupted updates, not just
//! missing ones.
//!
//! [`fedavg`](crate::strategy::fedavg) assumes every surviving client is
//! honest — a single NaN-laden or adversarially scaled update poisons the
//! global model even when the round itself looks healthy. This module adds
//! the server-side defenses:
//!
//! - an [`Aggregator`] trait with the classic robust estimators —
//!   [`CoordinateMedian`], [`TrimmedMean`], [`NormClippedFedAvg`] and
//!   [`Krum`] (Blanchard et al., NeurIPS 2017) — alongside [`FedAvg`],
//! - an [`UpdateGuard`] that screens every reply *before* aggregation
//!   (dimension check, non-finite rejection, update-norm / loss outlier
//!   screens against a running per-round median), and
//! - [`AggregationStrategy`], the config-level selector threaded through
//!   the engine, including a weighted-median variant of the Equation-1
//!   global loss so a single lying client cannot skew the BO objective.
//!
//! Robust aggregators need the per-client updates in plaintext; they are
//! therefore incompatible with the pairwise-masked sums of
//! [`secure`](crate::secure) — callers must pick one or the other at
//! config-validation time (you can have FedAvg-over-masked-sums or a
//! robust aggregator over plaintext, never both).

use std::collections::VecDeque;

use crate::strategy::aggregate_loss;
use crate::{FlError, Result};

// ---------------------------------------------------------------------------
// Weighted median
// ---------------------------------------------------------------------------

/// Weighted median of `(value, weight)` pairs: the smallest value whose
/// cumulative weight exceeds half the total. When the cumulative weight
/// lands exactly on half, the midpoint with the next value is returned
/// (so the unweighted even-count case matches the textbook median).
///
/// Non-finite values and non-positive weights are rejected — screen
/// first, then aggregate.
pub fn weighted_median(pairs: &[(f64, f64)]) -> Result<f64> {
    let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
    for &(v, w) in pairs {
        if !v.is_finite() || !w.is_finite() {
            return Err(FlError::Client(format!(
                "non-finite entry in weighted median: ({v}, {w})"
            )));
        }
        if w <= 0.0 {
            return Err(FlError::Client(format!("non-positive weight {w}")));
        }
        sorted.push((v, w));
    }
    if sorted.is_empty() {
        return Err(FlError::Client("no values for weighted median".into()));
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = sorted.iter().map(|(_, w)| w).sum();
    let half = total / 2.0;
    let mut acc = 0.0;
    for (i, &(v, w)) in sorted.iter().enumerate() {
        acc += w;
        if acc > half {
            return Ok(v);
        }
        if acc == half {
            // Exactly half the mass is at or below v: average with the
            // next value, as in the unweighted even-count median.
            let next = sorted.get(i + 1).map_or(v, |&(v2, _)| v2);
            return Ok((v + next) / 2.0);
        }
    }
    Ok(sorted[sorted.len() - 1].0)
}

/// Robust variant of the Equation-1 global loss: the `num_examples`-
/// weighted **median** of client losses instead of the weighted mean, so
/// one lying client cannot drag the BO objective arbitrarily far.
///
/// Keeps [`aggregate_loss`]'s error
/// contract: non-finite losses and zero total examples are errors (the
/// [`UpdateGuard`] screens those out before aggregation).
pub fn robust_aggregate_loss(losses: &[(f64, u64)]) -> Result<f64> {
    let total: u64 = losses.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return Err(FlError::Client("zero total examples".into()));
    }
    for &(loss, _) in losses {
        if !loss.is_finite() {
            return Err(FlError::Client(format!("non-finite client loss {loss}")));
        }
    }
    let pairs: Vec<(f64, f64)> = losses
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|&(l, n)| (l, n as f64))
        .collect();
    weighted_median(&pairs)
}

// ---------------------------------------------------------------------------
// Aggregators
// ---------------------------------------------------------------------------

/// A server-side rule combining per-client `(params, num_examples)`
/// updates into one global parameter vector.
pub trait Aggregator {
    /// Human-readable rule name for reports and errors.
    fn name(&self) -> &'static str;

    /// Aggregates the surviving updates. Implementations drop non-finite
    /// updates themselves (they are definitionally corrupt) but expect
    /// gross outliers to have been screened by an [`UpdateGuard`].
    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>>;
}

/// `(params-slice, weight)` views of the finite updates, plus the count
/// of non-finite updates dropped on the way.
type FiniteUpdates<'a> = (Vec<(&'a [f64], f64)>, usize);

/// Keeps `(params-slice, weight)` views of the finite, non-empty updates
/// and counts how many non-finite updates were dropped on the way.
fn finite_updates(updates: &[(Vec<f64>, u64)]) -> Result<FiniteUpdates<'_>> {
    let mut dropped = 0usize;
    let mut keep: Vec<(&[f64], f64)> = Vec::new();
    for (p, w) in updates {
        if p.is_empty() {
            continue; // clients without parameters, as in fedavg
        }
        if p.iter().all(|v| v.is_finite()) {
            keep.push((p.as_slice(), *w as f64));
        } else {
            dropped += 1;
        }
    }
    if keep.is_empty() {
        return Err(FlError::Client(
            "no finite parameter updates to aggregate".into(),
        ));
    }
    let dim = keep[0].0.len();
    for (p, _) in &keep {
        if p.len() != dim {
            return Err(FlError::Client(format!(
                "parameter length mismatch: {} vs {dim}",
                p.len()
            )));
        }
    }
    Ok((keep, dropped))
}

/// Weighted mean over pre-screened `(params, weight)` views, using the
/// same accumulation order and arithmetic as
/// [`fedavg`](crate::strategy::fedavg) so the two agree bit-for-bit on
/// identical inputs.
fn weighted_mean(keep: &[(&[f64], f64)]) -> Result<Vec<f64>> {
    let dim = keep[0].0.len();
    let mut acc = vec![0.0; dim];
    let mut total_w = 0.0;
    for (p, wf) in keep {
        total_w += wf;
        for (a, &v) in acc.iter_mut().zip(*p) {
            *a += wf * v;
        }
    }
    if total_w <= 0.0 {
        return Err(FlError::Client("zero total weight".into()));
    }
    for a in acc.iter_mut() {
        *a /= total_w;
    }
    Ok(acc)
}

/// McMahan et al.'s FedAvg — the paper's §4.3 baseline, zero robustness.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        crate::strategy::fedavg(updates)
    }
}

/// Per-coordinate weighted median. Tolerates any minority (by weight) of
/// arbitrarily corrupted updates per coordinate; the workhorse default
/// when client counts are small.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateMedian;

impl Aggregator for CoordinateMedian {
    fn name(&self) -> &'static str {
        "coordinate_median"
    }

    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        let (keep, _) = finite_updates(updates)?;
        let dim = keep[0].0.len();
        let mut out = Vec::with_capacity(dim);
        let mut col: Vec<(f64, f64)> = Vec::with_capacity(keep.len());
        for j in 0..dim {
            col.clear();
            col.extend(keep.iter().map(|(p, w)| (p[j], *w)));
            out.push(weighted_median(&col)?);
        }
        Ok(out)
    }
}

/// Per-coordinate trimmed weighted mean: sort each coordinate's values,
/// drop `⌊trim_ratio · n⌋` entries from each end, and take the weighted
/// mean of the rest. `trim_ratio = 0` is exactly FedAvg (bit-for-bit);
/// `trim_ratio → 0.5` approaches the coordinate median.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    /// Fraction trimmed from *each* end, in `[0, 0.5)`.
    pub trim_ratio: f64,
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed_mean"
    }

    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        if !(0.0..0.5).contains(&self.trim_ratio) {
            return Err(FlError::Client(format!(
                "trim_ratio must be in [0, 0.5), got {}",
                self.trim_ratio
            )));
        }
        let (keep, _) = finite_updates(updates)?;
        let k = (self.trim_ratio * keep.len() as f64).floor() as usize;
        if k == 0 {
            // No trimming: identical arithmetic to fedavg, so
            // TrimmedMean { trim_ratio: 0 } is bit-for-bit FedAvg.
            return weighted_mean(&keep);
        }
        let dim = keep[0].0.len();
        let mut out = Vec::with_capacity(dim);
        let mut col: Vec<(f64, f64)> = Vec::with_capacity(keep.len());
        for j in 0..dim {
            col.clear();
            col.extend(keep.iter().map(|(p, w)| (p[j], *w)));
            col.sort_by(|a, b| a.0.total_cmp(&b.0));
            let kept = &col[k..col.len() - k];
            let total: f64 = kept.iter().map(|(_, w)| w).sum();
            if total <= 0.0 {
                return Err(FlError::Client("zero total weight after trim".into()));
            }
            out.push(kept.iter().map(|(v, w)| v * w).sum::<f64>() / total);
        }
        Ok(out)
    }
}

/// FedAvg over norm-clipped updates: any update with ‖θ‖₂ > `max_norm`
/// is rescaled to the boundary before averaging, bounding the influence
/// of a scaled (but direction-preserving) attacker.
#[derive(Debug, Clone, Copy)]
pub struct NormClippedFedAvg {
    /// Clipping radius; must be positive and finite.
    pub max_norm: f64,
}

impl Aggregator for NormClippedFedAvg {
    fn name(&self) -> &'static str {
        "norm_clipped_fedavg"
    }

    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        if !(self.max_norm.is_finite() && self.max_norm > 0.0) {
            return Err(FlError::Client(format!(
                "max_norm must be positive and finite, got {}",
                self.max_norm
            )));
        }
        let (keep, _) = finite_updates(updates)?;
        // Clip inline during the fold — same arithmetic as materializing
        // the clipped vectors and running weighted_mean (`wf * (v *
        // scale)` per coordinate, weights totalled first), but without
        // allocating a clipped copy of every update.
        let dim = keep[0].0.len();
        let mut acc = vec![0.0; dim];
        let mut total_w = 0.0;
        for (p, wf) in &keep {
            total_w += wf;
            let norm = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > self.max_norm {
                let scale = self.max_norm / norm;
                for (a, &v) in acc.iter_mut().zip(*p) {
                    *a += wf * (v * scale);
                }
            } else {
                for (a, &v) in acc.iter_mut().zip(*p) {
                    *a += wf * v;
                }
            }
        }
        if total_w <= 0.0 {
            return Err(FlError::Client("zero total weight".into()));
        }
        for a in acc.iter_mut() {
            *a /= total_w;
        }
        Ok(acc)
    }
}

/// Krum / Multi-Krum (Blanchard et al., NeurIPS 2017): score each update
/// by the sum of squared distances to its `n − f − 2` nearest neighbours
/// and keep the `m` lowest-scoring updates (`m = 1` is classic Krum —
/// the selected update is returned verbatim; `m > 1` averages the
/// selection). Requires `n ≥ 2f + 3` whenever `f > 0`.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Assumed upper bound on adversarial clients.
    pub f: usize,
    /// Number of selected updates (`1` = classic Krum).
    pub m: usize,
}

impl Aggregator for Krum {
    fn name(&self) -> &'static str {
        if self.m > 1 {
            "multi_krum"
        } else {
            "krum"
        }
    }

    fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        if self.m == 0 {
            return Err(FlError::Client("Krum needs m ≥ 1".into()));
        }
        let (keep, dropped) = finite_updates(updates)?;
        // Non-finite updates were definitionally adversarial and already
        // dropped, so they count against the assumed attacker budget.
        let f = self.f.saturating_sub(dropped);
        let n = keep.len();
        if n == 1 {
            return Ok(keep[0].0.to_vec());
        }
        if f > 0 && n < 2 * f + 3 {
            return Err(FlError::Client(format!(
                "Krum needs n ≥ 2f + 3 surviving updates (n = {n}, f = {f})"
            )));
        }
        let neighbours = n.saturating_sub(f + 2).max(1);
        let mut scores: Vec<(f64, usize)> = Vec::with_capacity(n);
        for i in 0..n {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    keep[i]
                        .0
                        .iter()
                        .zip(keep[j].0)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .collect();
            dists.sort_by(f64::total_cmp);
            scores.push((dists.iter().take(neighbours).sum(), i));
        }
        // Lowest score wins; ties break on the smaller index so the
        // selection is deterministic.
        scores.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let m = self.m.min(n);
        if m == 1 {
            return Ok(keep[scores[0].1].0.to_vec());
        }
        let selected: Vec<(&[f64], f64)> = scores[..m].iter().map(|&(_, i)| keep[i]).collect();
        weighted_mean(&selected)
    }
}

// ---------------------------------------------------------------------------
// AggregationStrategy: the config-level selector
// ---------------------------------------------------------------------------

/// Which aggregation rule the server runs. [`AggregationStrategy::FedAvg`]
/// is the default and is bit-identical to the pre-robustness behaviour;
/// every other variant screens updates through the [`UpdateGuard`] and
/// aggregates losses with [`robust_aggregate_loss`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AggregationStrategy {
    /// Weighted mean (Equation 1 semantics). No Byzantine tolerance.
    #[default]
    FedAvg,
    /// Per-coordinate weighted median.
    CoordinateMedian,
    /// Per-coordinate trimmed weighted mean.
    TrimmedMean {
        /// Fraction trimmed from each end, in `[0, 0.5)`.
        trim_ratio: f64,
    },
    /// FedAvg over norm-clipped updates.
    NormClippedFedAvg {
        /// Clipping radius.
        max_norm: f64,
    },
    /// Classic Krum: select the single most central update.
    Krum {
        /// Assumed upper bound on adversarial clients.
        f: usize,
    },
    /// Multi-Krum: average the `m` most central updates.
    MultiKrum {
        /// Assumed upper bound on adversarial clients.
        f: usize,
        /// Number of selected updates.
        m: usize,
    },
}

impl AggregationStrategy {
    /// Rule name, matching [`Aggregator::name`].
    pub fn name(&self) -> &'static str {
        self.aggregator().name()
    }

    /// `true` for every rule except plain FedAvg. Robust rules activate
    /// the guard pipeline and are incompatible with masked sums.
    pub fn is_robust(&self) -> bool {
        !matches!(self, AggregationStrategy::FedAvg)
    }

    /// Validates rule parameters without aggregating anything, so bad
    /// configs fail at startup rather than mid-run.
    pub fn validate(&self) -> Result<()> {
        match *self {
            AggregationStrategy::TrimmedMean { trim_ratio }
                if !(0.0..0.5).contains(&trim_ratio) =>
            {
                Err(FlError::Client(format!(
                    "trim_ratio must be in [0, 0.5), got {trim_ratio}"
                )))
            }
            AggregationStrategy::NormClippedFedAvg { max_norm }
                if !(max_norm.is_finite() && max_norm > 0.0) =>
            {
                Err(FlError::Client(format!(
                    "max_norm must be positive and finite, got {max_norm}"
                )))
            }
            AggregationStrategy::MultiKrum { m: 0, .. } => {
                Err(FlError::Client("Multi-Krum needs m ≥ 1".into()))
            }
            _ => Ok(()),
        }
    }

    /// The boxed rule implementation.
    pub fn aggregator(&self) -> Box<dyn Aggregator + Send + Sync> {
        match *self {
            AggregationStrategy::FedAvg => Box::new(FedAvg),
            AggregationStrategy::CoordinateMedian => Box::new(CoordinateMedian),
            AggregationStrategy::TrimmedMean { trim_ratio } => Box::new(TrimmedMean { trim_ratio }),
            AggregationStrategy::NormClippedFedAvg { max_norm } => {
                Box::new(NormClippedFedAvg { max_norm })
            }
            AggregationStrategy::Krum { f } => Box::new(Krum { f, m: 1 }),
            AggregationStrategy::MultiKrum { f, m } => Box::new(Krum { f, m }),
        }
    }

    /// Aggregates parameter updates under this rule.
    pub fn aggregate(&self, updates: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
        self.aggregator().aggregate(updates)
    }

    /// Aggregates client losses: Equation-1 weighted mean under FedAvg,
    /// the weighted median otherwise.
    pub fn aggregate_loss(&self, losses: &[(f64, u64)]) -> Result<f64> {
        if self.is_robust() {
            robust_aggregate_loss(losses)
        } else {
            aggregate_loss(losses)
        }
    }

    /// Whether this rule can run over pairwise-masked sums
    /// ([`secure`](crate::secure)). Only FedAvg can — robust rules need
    /// each client's plaintext update.
    pub fn compatible_with_masking(&self) -> bool {
        !self.is_robust()
    }
}

// ---------------------------------------------------------------------------
// UpdateGuard: pre-aggregation screening
// ---------------------------------------------------------------------------

/// Thresholds of the [`UpdateGuard`] outlier screens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Reject an update whose L2 norm exceeds `norm_ratio ×` the running
    /// median norm.
    pub norm_ratio: f64,
    /// Reject a loss exceeding `loss_ratio ×` the running median loss.
    /// Looser than `norm_ratio`: honest losses vary much more across
    /// heterogeneous clients than honest parameter norms do.
    pub loss_ratio: f64,
    /// Rounds of median history folded into the screen, so a round where
    /// attackers outnumber honest replies cannot recenter the median on
    /// itself.
    pub history: usize,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            norm_ratio: 10.0,
            loss_ratio: 100.0,
            history: 32,
        }
    }
}

/// Why the guard rejected one reply.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Parameter vector length disagrees with the round majority.
    DimensionMismatch {
        /// Length the client sent.
        got: usize,
        /// Majority length this round.
        expected: usize,
    },
    /// Update or loss contains NaN/±inf.
    NonFinite,
    /// Update norm exceeds `norm_ratio ×` the running median.
    NormOutlier {
        /// The offending norm.
        norm: f64,
        /// The running median it was screened against.
        median: f64,
    },
    /// Loss exceeds `loss_ratio ×` the running median.
    LossOutlier {
        /// The offending loss.
        loss: f64,
        /// The running median it was screened against.
        median: f64,
    },
    /// Negative loss (the engine's losses are MSE-family, always ≥ 0).
    NegativeLoss {
        /// The offending loss.
        loss: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::DimensionMismatch { got, expected } => {
                write!(f, "dim {got} != expected {expected}")
            }
            RejectReason::NonFinite => write!(f, "non-finite update"),
            RejectReason::NormOutlier { norm, median } => {
                write!(f, "norm {norm:.3e} vs median {median:.3e}")
            }
            RejectReason::LossOutlier { loss, median } => {
                write!(f, "loss {loss:.3e} vs median {median:.3e}")
            }
            RejectReason::NegativeLoss { loss } => write!(f, "negative loss {loss:.3e}"),
        }
    }
}

/// Screening outcome: the replies that survive, plus `(client_id,
/// reason)` for every rejection.
#[derive(Debug, Clone)]
pub struct Screened<T> {
    /// Replies that passed every screen, in input order.
    pub accepted: Vec<T>,
    /// `(client_id, reason)` per rejected reply, in input order.
    pub rejected: Vec<(usize, RejectReason)>,
}

/// Server-side validator run on every reply before a robust aggregator
/// sees it. Stateful: it keeps a bounded history of per-round medians so
/// the outlier screens compare against what honest clients have looked
/// like recently, not just against the current (possibly majority-
/// corrupt) round.
#[derive(Debug, Clone)]
pub struct UpdateGuard {
    policy: GuardPolicy,
    norm_medians: VecDeque<f64>,
    loss_medians: VecDeque<f64>,
}

/// Floor for the running medians so an all-zero honest round does not
/// make the ratio screens vacuous (anything × 0 = 0).
const MEDIAN_FLOOR: f64 = 1e-12;

fn plain_median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len();
    Some(if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    })
}

impl UpdateGuard {
    /// A guard with the given thresholds and empty history.
    pub fn new(policy: GuardPolicy) -> UpdateGuard {
        UpdateGuard {
            policy,
            norm_medians: VecDeque::new(),
            loss_medians: VecDeque::new(),
        }
    }

    fn remember(history: &mut VecDeque<f64>, cap: usize, median: f64) {
        history.push_back(median);
        while history.len() > cap.max(1) {
            history.pop_front();
        }
    }

    /// Screening median: this round's values pooled with the remembered
    /// per-round medians of *accepted* values, floored at
    /// [`MEDIAN_FLOOR`]. Uses the lower median (no midpoint averaging):
    /// averaging an honest history entry with an attacker's 1e6 norm
    /// would recenter the screen on the attacker.
    fn running_median(history: &VecDeque<f64>, current: &[f64]) -> f64 {
        let mut pool: Vec<f64> = history
            .iter()
            .copied()
            .chain(current.iter().copied())
            .collect();
        if pool.is_empty() {
            return MEDIAN_FLOOR;
        }
        pool.sort_by(f64::total_cmp);
        pool[(pool.len() - 1) / 2].max(MEDIAN_FLOOR)
    }

    /// Screens `(client_id, params, num_examples)` fit updates: dimension
    /// check against the round's majority length, non-finite rejection,
    /// and the norm-outlier screen. Empty parameter vectors pass through
    /// unscreened (ops that carry results in metrics, not params).
    pub fn screen_updates(
        &mut self,
        updates: Vec<(usize, Vec<f64>, u64)>,
    ) -> Screened<(usize, Vec<f64>, u64)> {
        // Majority dimension over non-empty updates; ties break on the
        // smaller length for determinism.
        let mut dim_counts: Vec<(usize, usize)> = Vec::new();
        for (_, p, _) in updates.iter().filter(|(_, p, _)| !p.is_empty()) {
            match dim_counts.iter_mut().find(|(d, _)| *d == p.len()) {
                Some((_, c)) => *c += 1,
                None => dim_counts.push((p.len(), 1)),
            }
        }
        let expected = dim_counts
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(d, _)| d);

        let mut screened = Screened {
            accepted: Vec::with_capacity(updates.len()),
            rejected: Vec::new(),
        };
        let mut survivors: Vec<(usize, Vec<f64>, u64, f64)> = Vec::new();
        let mut norms: Vec<f64> = Vec::new();
        for (id, p, n) in updates {
            if p.is_empty() {
                screened.accepted.push((id, p, n));
                continue;
            }
            let expected = expected.unwrap_or(p.len());
            if p.len() != expected {
                screened.rejected.push((
                    id,
                    RejectReason::DimensionMismatch {
                        got: p.len(),
                        expected,
                    },
                ));
                continue;
            }
            if p.iter().any(|v| !v.is_finite()) {
                screened.rejected.push((id, RejectReason::NonFinite));
                continue;
            }
            let norm = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            norms.push(norm);
            survivors.push((id, p, n, norm));
        }

        let median = Self::running_median(&self.norm_medians, &norms);
        let mut accepted_norms: Vec<f64> = Vec::new();
        for (id, p, n, norm) in survivors {
            if norm > self.policy.norm_ratio * median {
                screened
                    .rejected
                    .push((id, RejectReason::NormOutlier { norm, median }));
            } else {
                accepted_norms.push(norm);
                screened.accepted.push((id, p, n));
            }
        }
        // Only accepted norms enter the history: a round where attackers
        // reply alone must not recenter the screen on themselves.
        if let Some(m) = plain_median(&mut accepted_norms) {
            Self::remember(&mut self.norm_medians, self.policy.history, m);
        }
        screened
    }

    /// Screens `(client_id, loss, num_examples)` replies: non-finite and
    /// negative losses are rejected outright, and losses far above the
    /// running median are rejected as outliers.
    pub fn screen_losses(&mut self, losses: Vec<(usize, f64, u64)>) -> Screened<(usize, f64, u64)> {
        let mut screened = Screened {
            accepted: Vec::with_capacity(losses.len()),
            rejected: Vec::new(),
        };
        let mut survivors: Vec<(usize, f64, u64)> = Vec::new();
        let mut finite: Vec<f64> = Vec::new();
        for (id, loss, n) in losses {
            if !loss.is_finite() {
                screened.rejected.push((id, RejectReason::NonFinite));
                continue;
            }
            if loss < 0.0 {
                screened
                    .rejected
                    .push((id, RejectReason::NegativeLoss { loss }));
                continue;
            }
            finite.push(loss);
            survivors.push((id, loss, n));
        }

        let median = Self::running_median(&self.loss_medians, &finite);
        let mut accepted_losses: Vec<f64> = Vec::new();
        for (id, loss, n) in survivors {
            if loss > self.policy.loss_ratio * median {
                screened
                    .rejected
                    .push((id, RejectReason::LossOutlier { loss, median }));
            } else {
                accepted_losses.push(loss);
                screened.accepted.push((id, loss, n));
            }
        }
        if let Some(m) = plain_median(&mut accepted_losses) {
            Self::remember(&mut self.loss_medians, self.policy.history, m);
        }
        screened
    }

    // -- Streaming (fleet) screening ------------------------------------
    //
    // A streaming server screens each reply as it arrives, so the screen
    // median must be frozen *before* the round starts: it is the lower
    // median of the remembered per-round medians alone, with no pooling
    // of the current round's values. `None` (empty history) means the
    // caller bypasses the ratio screen for that round — the first round
    // has no notion yet of what honest clients look like.

    /// Frozen norm-screen median from history alone, floored at
    /// `MEDIAN_FLOOR`; `None` when there is no history yet.
    pub fn frozen_norm_median(&self) -> Option<f64> {
        Self::frozen(&self.norm_medians)
    }

    /// Frozen loss-screen median from history alone, floored at
    /// `MEDIAN_FLOOR`; `None` when there is no history yet.
    pub fn frozen_loss_median(&self) -> Option<f64> {
        Self::frozen(&self.loss_medians)
    }

    fn frozen(history: &VecDeque<f64>) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let mut pool: Vec<f64> = history.iter().copied().collect();
        pool.sort_by(f64::total_cmp);
        Some(pool[(pool.len() - 1) / 2].max(MEDIAN_FLOOR))
    }

    /// Commits a streaming round's accepted update norms: their median
    /// joins the bounded history exactly as
    /// [`screen_updates`](UpdateGuard::screen_updates) would have
    /// recorded it. `values` is sorted in place.
    pub fn commit_norms(&mut self, values: &mut [f64]) {
        if let Some(m) = plain_median(values) {
            Self::remember(&mut self.norm_medians, self.policy.history, m);
        }
    }

    /// Commits a streaming round's accepted losses; see
    /// [`commit_norms`](UpdateGuard::commit_norms). `values` is sorted
    /// in place.
    pub fn commit_losses(&mut self, values: &mut [f64]) {
        if let Some(m) = plain_median(values) {
            Self::remember(&mut self.loss_medians, self.policy.history, m);
        }
    }

    /// The thresholds this guard screens with.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Exports the remembered per-round medians,
    /// `(norm_medians, loss_medians)` oldest-first, for durable
    /// checkpointing.
    pub fn history(&self) -> (Vec<f64>, Vec<f64>) {
        (
            self.norm_medians.iter().copied().collect(),
            self.loss_medians.iter().copied().collect(),
        )
    }

    /// Overwrites the median history with previously exported values
    /// (oldest-first), truncating each to the policy's bounded window so
    /// a restored guard screens future rounds exactly like the original.
    pub fn restore_history(&mut self, norms: &[f64], losses: &[f64]) {
        let window = |vals: &[f64]| -> VecDeque<f64> {
            let skip = vals.len().saturating_sub(self.policy.history);
            vals[skip..].iter().copied().collect()
        };
        self.norm_medians = window(norms);
        self.loss_medians = window(losses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::fedavg;

    fn eq1(updates: &[(Vec<f64>, u64)]) -> Vec<f64> {
        fedavg(updates).unwrap()
    }

    #[test]
    fn weighted_median_unweighted_matches_textbook() {
        let odd: Vec<(f64, f64)> = [3.0, 1.0, 2.0].iter().map(|&v| (v, 1.0)).collect();
        assert_eq!(weighted_median(&odd).unwrap(), 2.0);
        let even: Vec<(f64, f64)> = [4.0, 1.0, 3.0, 2.0].iter().map(|&v| (v, 1.0)).collect();
        assert_eq!(weighted_median(&even).unwrap(), 2.5);
    }

    #[test]
    fn weighted_median_respects_weights() {
        // Client with weight 5 at value 10 dominates two weight-1 clients.
        let m = weighted_median(&[(0.0, 1.0), (1.0, 1.0), (10.0, 5.0)]).unwrap();
        assert_eq!(m, 10.0);
    }

    #[test]
    fn weighted_median_rejects_bad_input() {
        assert!(weighted_median(&[]).is_err());
        assert!(weighted_median(&[(f64::NAN, 1.0)]).is_err());
        assert!(weighted_median(&[(1.0, 0.0)]).is_err());
    }

    #[test]
    fn robust_loss_ignores_one_huge_liar() {
        let honest = [(1.0, 10u64), (1.2, 10), (0.9, 10), (1.1, 10)];
        let mut with_liar = honest.to_vec();
        with_liar.push((1e18, 10));
        let l = robust_aggregate_loss(&with_liar).unwrap();
        assert!((0.9..=1.2).contains(&l), "median dragged to {l}");
        // The weighted mean would have exploded.
        assert!(aggregate_loss(&with_liar).unwrap() > 1e17);
    }

    #[test]
    fn robust_loss_keeps_strict_error_contract() {
        assert!(robust_aggregate_loss(&[(f64::NAN, 1)]).is_err());
        assert!(robust_aggregate_loss(&[]).is_err());
        assert!(robust_aggregate_loss(&[(1.0, 0)]).is_err());
    }

    #[test]
    fn coordinate_median_shrugs_off_scaled_attacker() {
        let updates = vec![
            (vec![1.0, -1.0], 1u64),
            (vec![1.1, -0.9], 1),
            (vec![0.9, -1.1], 1),
            (vec![1e9, -1e9], 1), // attacker
        ];
        let agg = CoordinateMedian.aggregate(&updates).unwrap();
        assert!((1.0..=1.1).contains(&agg[0]), "got {agg:?}");
        assert!((-1.1..=-0.9).contains(&agg[1]), "got {agg:?}");
    }

    #[test]
    fn coordinate_median_drops_nan_updates() {
        let updates = vec![(vec![1.0], 1u64), (vec![f64::NAN], 1), (vec![3.0], 1)];
        let agg = CoordinateMedian.aggregate(&updates).unwrap();
        assert_eq!(agg, vec![2.0]);
    }

    #[test]
    fn trimmed_mean_zero_ratio_is_fedavg() {
        let updates = vec![(vec![1.0, 2.0], 3u64), (vec![-0.5, 0.25], 7)];
        let tm = TrimmedMean { trim_ratio: 0.0 }.aggregate(&updates).unwrap();
        let fa = eq1(&updates);
        let tm_bits: Vec<u64> = tm.iter().map(|v| v.to_bits()).collect();
        let fa_bits: Vec<u64> = fa.iter().map(|v| v.to_bits()).collect();
        assert_eq!(tm_bits, fa_bits);
    }

    #[test]
    fn trimmed_mean_removes_extremes() {
        let updates = vec![
            (vec![1.0], 1u64),
            (vec![2.0], 1),
            (vec![3.0], 1),
            (vec![1e12], 1), // attacker
        ];
        let agg = TrimmedMean { trim_ratio: 0.25 }
            .aggregate(&updates)
            .unwrap();
        // One entry trimmed per end: mean of {2, 3}.
        assert!((agg[0] - 2.5).abs() < 1e-12, "got {agg:?}");
    }

    #[test]
    fn trimmed_mean_rejects_bad_ratio() {
        let u = vec![(vec![1.0], 1u64)];
        assert!(TrimmedMean { trim_ratio: 0.5 }.aggregate(&u).is_err());
        assert!(TrimmedMean { trim_ratio: -0.1 }.aggregate(&u).is_err());
    }

    #[test]
    fn norm_clipping_bounds_attacker_influence() {
        let updates = vec![
            (vec![1.0, 0.0], 1u64),
            (vec![0.0, 1.0], 1),
            (vec![1e9, 0.0], 1), // attacker, clipped to norm 2
        ];
        let agg = NormClippedFedAvg { max_norm: 2.0 }
            .aggregate(&updates)
            .unwrap();
        assert!(agg[0] <= 1.0 + 1e-12, "attacker still dominates: {agg:?}");
        let norm = agg.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 2.0 + 1e-12);
    }

    #[test]
    fn norm_clipping_is_identity_within_radius() {
        let updates = vec![(vec![0.3, 0.4], 2u64), (vec![-0.3, 0.4], 2)];
        let agg = NormClippedFedAvg { max_norm: 10.0 }
            .aggregate(&updates)
            .unwrap();
        assert_eq!(agg, eq1(&updates));
    }

    #[test]
    fn krum_selects_a_central_honest_update() {
        let mut updates: Vec<(Vec<f64>, u64)> = (0..5)
            .map(|i| (vec![1.0 + i as f64 * 0.01, -1.0], 1u64))
            .collect();
        updates.push((vec![1e9, 1e9], 1)); // attacker
        updates.push((vec![-1e9, 1e9], 1)); // attacker
        let agg = Krum { f: 2, m: 1 }.aggregate(&updates).unwrap();
        // The winner is one of the honest clusters, never an attacker.
        assert!(agg[0] < 2.0, "krum picked an attacker: {agg:?}");
        assert!(updates[..5].iter().any(|(p, _)| *p == agg));
    }

    #[test]
    fn multi_krum_averages_selection() {
        let updates = vec![
            (vec![1.0], 1u64),
            (vec![2.0], 1),
            (vec![3.0], 1),
            (vec![4.0], 1),
            (vec![5.0], 1),
        ];
        let agg = Krum { f: 0, m: 5 }.aggregate(&updates).unwrap();
        assert!((agg[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn krum_enforces_population_bound() {
        let updates = vec![(vec![1.0], 1u64), (vec![2.0], 1), (vec![3.0], 1)];
        assert!(Krum { f: 1, m: 1 }.aggregate(&updates).is_err());
        assert!(Krum { f: 0, m: 1 }.aggregate(&updates).is_ok());
    }

    #[test]
    fn krum_single_update_is_identity() {
        let agg = Krum { f: 0, m: 1 }.aggregate(&[(vec![7.0], 3)]).unwrap();
        assert_eq!(agg, vec![7.0]);
    }

    #[test]
    fn strategy_validation_catches_bad_knobs() {
        assert!(AggregationStrategy::TrimmedMean { trim_ratio: 0.6 }
            .validate()
            .is_err());
        assert!(AggregationStrategy::NormClippedFedAvg { max_norm: 0.0 }
            .validate()
            .is_err());
        assert!(AggregationStrategy::MultiKrum { f: 1, m: 0 }
            .validate()
            .is_err());
        assert!(AggregationStrategy::default().validate().is_ok());
        assert!(!AggregationStrategy::FedAvg.is_robust());
        assert!(AggregationStrategy::CoordinateMedian.is_robust());
        assert!(AggregationStrategy::FedAvg.compatible_with_masking());
        assert!(!AggregationStrategy::Krum { f: 1 }.compatible_with_masking());
    }

    #[test]
    fn strategy_loss_aggregation_switches_rule() {
        let losses = [(1.0, 1u64), (1.0, 1), (100.0, 1)];
        let mean = AggregationStrategy::FedAvg.aggregate_loss(&losses).unwrap();
        let median = AggregationStrategy::CoordinateMedian
            .aggregate_loss(&losses)
            .unwrap();
        assert!(mean > 30.0);
        assert_eq!(median, 1.0);
    }

    #[test]
    fn guard_rejects_dim_mismatch_and_nan() {
        let mut guard = UpdateGuard::new(GuardPolicy::default());
        let screened = guard.screen_updates(vec![
            (0, vec![1.0, 2.0], 1),
            (1, vec![1.0], 1),
            (2, vec![f64::NAN, 2.0], 1),
            (3, vec![1.1, 1.9], 1),
        ]);
        assert_eq!(
            screened.accepted.iter().map(|u| u.0).collect::<Vec<_>>(),
            vec![0, 3]
        );
        assert_eq!(screened.rejected.len(), 2);
        assert!(matches!(
            screened.rejected[0],
            (
                1,
                RejectReason::DimensionMismatch {
                    got: 1,
                    expected: 2
                }
            )
        ));
        assert!(matches!(screened.rejected[1], (2, RejectReason::NonFinite)));
    }

    #[test]
    fn guard_screens_norm_outliers_against_running_median() {
        let mut guard = UpdateGuard::new(GuardPolicy {
            norm_ratio: 10.0,
            ..GuardPolicy::default()
        });
        let screened = guard.screen_updates(vec![
            (0, vec![1.0], 1),
            (1, vec![1.2], 1),
            (2, vec![0.8], 1),
            (3, vec![1e6], 1), // attacker
        ]);
        assert_eq!(screened.rejected.len(), 1);
        assert!(matches!(
            screened.rejected[0],
            (3, RejectReason::NormOutlier { .. })
        ));
        // History now pins the median near 1: a later round where the
        // attacker replies alone still gets screened.
        let later = guard.screen_updates(vec![(3, vec![1e6], 1)]);
        assert!(later.accepted.is_empty(), "history forgot the honest norm");
        assert!(matches!(
            later.rejected[0],
            (3, RejectReason::NormOutlier { .. })
        ));
    }

    #[test]
    fn guard_passes_empty_params_unscreened() {
        let mut guard = UpdateGuard::new(GuardPolicy::default());
        let screened = guard.screen_updates(vec![(0, vec![], 5), (1, vec![1.0], 1)]);
        assert_eq!(screened.accepted.len(), 2);
        assert!(screened.rejected.is_empty());
    }

    #[test]
    fn guard_screens_losses() {
        let mut guard = UpdateGuard::new(GuardPolicy {
            loss_ratio: 100.0,
            ..GuardPolicy::default()
        });
        let screened = guard.screen_losses(vec![
            (0, 1.0, 10),
            (1, f64::NAN, 10),
            (2, -3.0, 10),
            (3, 1e9, 10), // attacker
            (4, 1.5, 10),
        ]);
        assert_eq!(
            screened.accepted.iter().map(|l| l.0).collect::<Vec<_>>(),
            vec![0, 4]
        );
        let reasons: Vec<&RejectReason> = screened.rejected.iter().map(|(_, r)| r).collect();
        assert!(matches!(reasons[0], RejectReason::NonFinite));
        assert!(matches!(reasons[1], RejectReason::NegativeLoss { .. }));
        assert!(matches!(reasons[2], RejectReason::LossOutlier { .. }));
    }

    #[test]
    fn guard_history_round_trips_and_screens_identically() {
        let mut guard = UpdateGuard::new(GuardPolicy::default());
        for round in 1..6 {
            let scale = round as f64;
            let _ = guard.screen_updates(vec![
                (0, vec![scale, 0.0], 10),
                (1, vec![0.0, scale * 1.1], 10),
            ]);
            let _ = guard.screen_losses(vec![(0, scale, 10), (1, scale * 0.9, 10)]);
        }
        let (norms, losses) = guard.history();
        assert_eq!(norms.len(), 5);
        let mut restored = UpdateGuard::new(GuardPolicy::default());
        restored.restore_history(&norms, &losses);
        assert_eq!(restored.history(), guard.history());
        assert_eq!(restored.frozen_norm_median(), guard.frozen_norm_median());
        assert_eq!(restored.frozen_loss_median(), guard.frozen_loss_median());
        // Same future round, same verdicts — including the outlier.
        let round = vec![(0, vec![3.0, 0.0], 10), (1, vec![1e9, 0.0], 10)];
        let a = guard.screen_updates(round.clone());
        let b = restored.screen_updates(round);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected.len(), b.rejected.len());
        assert_eq!(a.rejected[0].0, b.rejected[0].0);
    }

    #[test]
    fn guard_restore_truncates_to_the_policy_window() {
        let mut guard = UpdateGuard::new(GuardPolicy {
            history: 3,
            ..GuardPolicy::default()
        });
        let long: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        guard.restore_history(&long, &long);
        let (norms, losses) = guard.history();
        assert_eq!(norms, vec![8.0, 9.0, 10.0], "oldest entries must drop");
        assert_eq!(losses, vec![8.0, 9.0, 10.0]);
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::LossOutlier {
            loss: 1e9,
            median: 1.0,
        };
        let s = r.to_string();
        assert!(s.contains("loss"), "{s}");
        assert!(RejectReason::NonFinite.to_string().contains("non-finite"));
    }
}
