//! Shared fixtures for the ff-serve contract suite: deterministic
//! series, genuine v2/v3 artifacts, and an independent reference fold.

#![allow(dead_code)]

use ff_linalg::Matrix;
use ff_models::data::{Standardizer, TargetScaler};
use ff_models::pipeline::{
    decode_member_blob, encode_external_blob, PipelineId, PipelineModel, RevivedMember,
};
use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};
use ff_serve::Artifact;

/// Series length every fixture uses.
pub const SERIES_LEN: usize = 160;

/// Index the fixture models are fitted up to; forecasts target the tail.
pub const FIT_END: usize = 120;

/// A deterministic trend + seasonality series, varied by `seed`.
pub fn series(seed: u64, n: usize) -> Vec<f64> {
    let slope = 0.03 + 0.01 * (seed % 7) as f64;
    let level = 3.0 + (seed % 11) as f64;
    let period = 8.0 + (seed % 5) as f64;
    (0..n)
        .map(|t| {
            let t = t as f64;
            level + slope * t + (std::f64::consts::TAU * t / period).sin()
        })
        .collect()
}

/// A genuine blob-v3 artifact: one lagged-pipeline member fitted on
/// `series(seed, SERIES_LEN)` up to `FIT_END`.
pub fn v3_artifact(seed: u64) -> Artifact {
    let v = series(seed, SERIES_LEN);
    let m = PipelineModel::fit(
        PipelineId::LAGGED,
        AlgorithmKind::LINEAR_SVR,
        &HyperParams::default(),
        &v,
        FIT_END,
    )
    .expect("pipeline fit");
    Artifact {
        algorithm: "LinearSVR".into(),
        pipeline: Some("lagged".into()),
        lags: vec![],
        members: vec![(1.0, m.to_blob().expect("v3 blob"))],
    }
}

/// A genuine blob-v2 artifact: one flat XGB member trained on the lag
/// features named by `lags`, with the recipe recorded in the artifact.
pub fn v2_artifact(seed: u64, lags: &[usize]) -> Artifact {
    let v = series(seed, SERIES_LEN);
    let max_lag = lags.iter().copied().max().expect("non-empty lags");
    let rows = FIT_END - max_lag;
    let x = Matrix::from_fn(rows, lags.len(), |r, c| v[max_lag + r - lags[c]]);
    let y: Vec<f64> = (0..rows).map(|r| v[max_lag + r]).collect();
    let scaler = Standardizer::fit(&x);
    let yscaler = TargetScaler::fit(&y);
    let xs = scaler.transform(&x);
    let ys: Vec<f64> = y.iter().map(|&t| yscaler.scale(t)).collect();
    let mut model = build_regressor(AlgorithmKind::XGB_REGRESSOR, &HyperParams::default());
    model.fit(&xs, &ys).expect("xgb fit");
    Artifact {
        algorithm: "XGBRegressor".into(),
        pipeline: None,
        lags: lags.to_vec(),
        members: vec![(
            1.0,
            encode_external_blob(
                AlgorithmKind::XGB_REGRESSOR,
                &scaler,
                &yscaler,
                &model.to_blob().expect("xgb blob"),
            ),
        )],
    }
}

/// A mixed-generation artifact: the v3 pipeline member and the flat v2
/// member of the same series, folded 2:1.
pub fn mixed_artifact(seed: u64, lags: &[usize]) -> Artifact {
    let v3 = v3_artifact(seed);
    let v2 = v2_artifact(seed, lags);
    Artifact {
        algorithm: v3.algorithm.clone(),
        pipeline: v3.pipeline.clone(),
        lags: lags.to_vec(),
        members: vec![
            (2.0, v3.members[0].1.clone()),
            (1.0, v2.members[0].1.clone()),
        ],
    }
}

/// Independent reference implementation of the serve fold: decode each
/// member blob directly, predict, and accumulate `w·p` in member order
/// with weights normalized by their sum — the engine's deployment
/// evaluation, re-derived without any ff-serve code in the loop.
pub fn reference_forecast(
    artifact: &Artifact,
    values: &[f64],
    start: usize,
    end: usize,
) -> Vec<f64> {
    let wsum: f64 = artifact.members.iter().map(|(w, _)| *w).sum();
    let mut agg = vec![0.0; end - start];
    for (w, blob) in &artifact.members {
        let member = decode_member_blob(blob).expect("decode member");
        let pred = match &member {
            RevivedMember::Pipeline(_) => member
                .predict_series(values, start, end)
                .expect("pipeline predict"),
            RevivedMember::SingleNode { .. } => {
                let max_lag = artifact.lags.iter().copied().max().expect("lag recipe");
                assert!(start >= max_lag, "reference request inside the lag window");
                let x = Matrix::from_fn(end - start, artifact.lags.len(), |row, col| {
                    values[start + row - artifact.lags[col]]
                });
                member.predict_features(&x).expect("flat predict")
            }
        };
        for (a, p) in agg.iter_mut().zip(pred) {
            *a += (w / wsum) * p;
        }
    }
    agg
}

/// Exact bit comparison of two forecast vectors.
pub fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit divergence at index {i}: {x} vs {y}"
        );
    }
}
