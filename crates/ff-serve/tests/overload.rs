//! Overload contract: past the per-tenant in-flight limit, requests
//! are shed with a typed [`ServeError::Overloaded`] — never queued
//! unboundedly, never answered with a silently wrong forecast. The
//! bounded-queue witness is `peak_in_flight`, which must never exceed
//! the limit even under a 10× concurrent burst.

mod common;

use common::{reference_forecast, series, v3_artifact, SERIES_LEN};
use ff_serve::{ModelStore, PredictRequest, ServeConfig, ServeError, ServeRuntime};
use ff_trace::{FlightRecorder, RecorderConfig, Tracer};
use std::sync::{Arc, Barrier};

fn request() -> PredictRequest {
    PredictRequest {
        tenant: "acme".into(),
        series: "load".into(),
        values: series(7, SERIES_LEN),
        start: 120,
        end: 130,
    }
}

fn runtime(limit: usize) -> ServeRuntime {
    let store = Arc::new(ModelStore::new());
    store.publish("acme", "load", v3_artifact(7));
    ServeRuntime::new(
        store,
        ServeConfig {
            tenant_inflight_limit: limit,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn a_batch_past_the_limit_sheds_typed_never_silently_wrong() {
    let rt = runtime(2)
        .with_tracer(Tracer::enabled())
        .with_recorder(FlightRecorder::enabled(RecorderConfig::default()));
    let reqs: Vec<PredictRequest> = (0..8).map(|_| request()).collect();
    let results = rt.serve(&reqs);
    let expected = reference_forecast(&v3_artifact(7), &reqs[0].values, 120, 130);
    let mut ok = 0;
    let mut shed = 0;
    for r in &results {
        match r {
            Ok(forecast) => {
                ok += 1;
                common::assert_bits_eq(forecast, &expected, "admitted response");
            }
            Err(ServeError::Overloaded { tenant, limit }) => {
                shed += 1;
                assert_eq!(tenant, "acme");
                assert_eq!(*limit, 2);
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    // Admission holds permits for the whole call: exactly `limit` fit.
    assert_eq!(ok, 2);
    assert_eq!(shed, 6);
    assert_eq!(rt.shed_total("acme"), 6);
    assert_eq!(rt.peak_in_flight("acme"), 2);
    // The distress left forensics behind: a shed commits a frame whose
    // rejected list trips the recorder's rejection trigger.
    assert!(!rt.recorder().dumps().is_empty(), "shed must leave a dump");
    let snap = rt.tracer().snapshot();
    assert!(snap
        .counters
        .iter()
        .any(|(id, v)| id.name == "serve.shed" && *v == 6));
}

#[test]
fn a_10x_burst_keeps_the_queue_bounded_and_every_answer_right() {
    let limit = 4;
    let rt = Arc::new(runtime(limit));
    let expected = reference_forecast(&v3_artifact(7), &request().values, 120, 130);
    let threads = 10 * limit;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                rt.serve(&[request()]).remove(0)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.join().expect("serving thread") {
            Ok(forecast) => {
                ok += 1;
                common::assert_bits_eq(&forecast, &expected, "burst response");
            }
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert_eq!(ok + shed, threads as u64, "every request got an answer");
    assert!(ok >= 1, "at least one request must be admitted");
    assert!(
        rt.peak_in_flight("acme") <= limit,
        "in-flight exceeded the limit: {} > {limit}",
        rt.peak_in_flight("acme")
    );
    assert_eq!(rt.shed_total("acme"), shed);
}

#[test]
fn admission_is_per_tenant_not_global() {
    let store = Arc::new(ModelStore::new());
    store.publish("acme", "load", v3_artifact(7));
    store.publish("globex", "load", v3_artifact(8));
    let rt = ServeRuntime::new(
        store,
        ServeConfig {
            tenant_inflight_limit: 1,
            ..ServeConfig::default()
        },
    );
    // One request per tenant in a single batch: both fit, because each
    // tenant has its own gate.
    let mut reqs = vec![request(), request()];
    reqs[1].tenant = "globex".into();
    reqs[1].values = series(8, SERIES_LEN);
    let results = rt.serve(&reqs);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[1].is_ok(), "{:?}", results[1]);
    assert_eq!(rt.shed_total("acme"), 0);
    assert_eq!(rt.shed_total("globex"), 0);
}
