//! Strict causality: the forecast at index `t` reads `values[..t]` and
//! nothing else. Scrambling `values[t..]` — including `values[t]`
//! itself — must leave the prediction at `t` bit-identical, for every
//! member generation. Proptest drives random cutoffs and random future
//! noise; one counterexample is a leak of the value being predicted.

mod common;

use common::{mixed_artifact, series, v2_artifact, v3_artifact, SERIES_LEN};
use ff_serve::{Artifact, Ensemble};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Decoded fixtures, built once: fitting inside every proptest case
/// would dominate the runtime.
fn fixtures() -> &'static [(Ensemble, usize)] {
    static CELL: OnceLock<Vec<(Ensemble, usize)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let artifacts: Vec<Artifact> = vec![
            v3_artifact(3),
            v2_artifact(4, &[1, 2, 12]),
            mixed_artifact(5, &[1, 3, 7]),
        ];
        let v = series(0, SERIES_LEN);
        artifacts
            .into_iter()
            .map(|a| {
                let ens = Ensemble::decode(&a).expect("decode fixture");
                // Earliest index the ensemble can predict (pipeline
                // members need their transform window, flat members
                // their longest lag).
                let min = (1..SERIES_LEN)
                    .find(|&t| ens.forecast(&v, t, t + 1).is_ok())
                    .expect("some index is predictable");
                (ens, min)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn the_future_cannot_reach_a_forecast(
        seed in 0u64..32,
        offset in 0usize..1024,
        noise in prop::collection::vec(-1.0e6f64..1.0e6, SERIES_LEN),
    ) {
        let v = series(seed, SERIES_LEN);
        for (ens, min) in fixtures() {
            let cut = min + offset % (SERIES_LEN - 1 - min);
            let base = ens.forecast(&v, cut, cut + 1).expect("base forecast");
            let mut hostile = v.clone();
            hostile[cut..].copy_from_slice(&noise[cut..]);
            let scrambled = ens.forecast(&hostile, cut, cut + 1).expect("scrambled forecast");
            prop_assert_eq!(base.len(), 1);
            prop_assert_eq!(
                base[0].to_bits(),
                scrambled[0].to_bits(),
                "prediction at {} read the future ({} members)", cut, ens.members()
            );
        }
    }

    #[test]
    fn multi_step_ranges_condition_only_on_true_history(
        seed in 0u64..16,
        offset in 0usize..512,
        width in 1usize..12,
        noise in prop::collection::vec(-1.0e6f64..1.0e6, SERIES_LEN),
    ) {
        // For a range start..end, every prediction index t reads
        // values[..t]; scrambling values[end..] must change nothing.
        let v = series(seed, SERIES_LEN);
        for (ens, min) in fixtures() {
            let start = min + offset % (SERIES_LEN - 13 - min);
            let end = (start + width).min(SERIES_LEN - 1);
            let base = ens.forecast(&v, start, end).expect("base forecast");
            let mut hostile = v.clone();
            hostile[end..].copy_from_slice(&noise[end..]);
            let scrambled = ens.forecast(&hostile, start, end).expect("scrambled forecast");
            for (i, (a, b)) in base.iter().zip(&scrambled).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "index {} of {}..{} read past the range end", i, start, end
                );
            }
        }
    }
}
