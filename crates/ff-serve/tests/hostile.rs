//! Hostile-artifact safety: whatever is on disk, opening it returns a
//! typed error — never a panic, never an unbounded allocation, never a
//! silently wrong model. The corruption comes from the checkpoint
//! crate's fault injectors, so the damage applied here is the same
//! damage the crash-recovery suite proves the WAL survives.

mod common;

use common::{series, v2_artifact, v3_artifact, SERIES_LEN};
use ff_ckpt::corrupt::{append_garbage, flip_bit, truncate_tail};
use ff_serve::{crc32, Artifact, ArtifactError, ModelStore, ServeError};
use std::path::PathBuf;

/// A scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-serve-hostile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn truncation_at_every_depth_is_a_typed_error() {
    let sealed = v3_artifact(1).seal();
    let path = scratch("truncated.ffsv");
    for keep in (0..sealed.len()).step_by(7).chain([sealed.len() - 1]) {
        std::fs::write(&path, &sealed).expect("write");
        truncate_tail(&path, (sealed.len() - keep) as u64).expect("truncate");
        let err = Artifact::read_from(&path).expect_err("prefix must not open");
        assert!(
            matches!(
                err,
                ArtifactError::TooShort
                    | ArtifactError::ChecksumMismatch { .. }
                    | ArtifactError::Truncated
            ),
            "keep {keep}: unexpected {err:?}"
        );
    }
}

#[test]
fn bit_flips_anywhere_in_the_file_are_caught() {
    let sealed = v2_artifact(2, &[1, 2, 12]).seal();
    let path = scratch("flipped.ffsv");
    for offset in (0..sealed.len()).step_by(11) {
        for bit in [0u8, 3, 7] {
            std::fs::write(&path, &sealed).expect("write");
            flip_bit(&path, offset as u64, bit).expect("flip");
            let err = Artifact::read_from(&path).expect_err("flipped file must not open");
            assert!(
                matches!(
                    err,
                    ArtifactError::BadMagic
                        | ArtifactError::UnsupportedVersion(_)
                        | ArtifactError::ChecksumMismatch { .. }
                ),
                "offset {offset} bit {bit}: unexpected {err:?}"
            );
        }
    }
}

#[test]
fn appended_garbage_breaks_the_checksum() {
    let sealed = v3_artifact(3).seal();
    let path = scratch("garbage.ffsv");
    for n in [1usize, 13, 4096] {
        std::fs::write(&path, &sealed).expect("write");
        append_garbage(&path, n, 0xF0F0 + n as u64).expect("append");
        let err = Artifact::read_from(&path).expect_err("garbage tail must not open");
        assert!(
            matches!(err, ArtifactError::ChecksumMismatch { .. }),
            "{n} garbage bytes: unexpected {err:?}"
        );
    }
}

#[test]
fn pure_garbage_files_are_typed_errors_not_panics() {
    let path = scratch("noise.ffsv");
    for seed in 0..16u64 {
        let n = (seed as usize * 37) % 512;
        std::fs::write(&path, vec![]).expect("write");
        append_garbage(&path, n, seed).expect("append");
        assert!(
            Artifact::read_from(&path).is_err(),
            "{n} noise bytes opened as an artifact"
        );
    }
}

/// Re-seals arbitrary payload bytes behind a *valid* frame: correct
/// magic, version, and CRC. Everything past the checksum is then the
/// field decoder's problem — exactly the adversary the length caps and
/// bounded reads exist for.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.extend_from_slice(b"FFSV");
    out.push(1);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

#[test]
fn hostile_length_prefixes_cannot_force_allocation() {
    // algorithm = "x", no pipeline, no lags, then a member count
    // claiming 4 billion entries — with a valid checksum over it all.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.push(b'x');
    payload.push(0); // no pipeline
    payload.extend_from_slice(&0u32.to_le_bytes()); // no lags
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // "members"
    let err = Artifact::open(&frame(&payload)).expect_err("implausible member count");
    assert!(
        matches!(err, ArtifactError::ImplausibleLength(_)),
        "unexpected {err:?}"
    );

    // A single member whose blob claims to be ~4 GiB.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.push(b'x');
    payload.push(0);
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.extend_from_slice(&1.0f64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // blob length
    let err = Artifact::open(&frame(&payload)).expect_err("implausible blob length");
    assert!(
        matches!(
            err,
            ArtifactError::ImplausibleLength(_) | ArtifactError::Truncated
        ),
        "unexpected {err:?}"
    );
}

#[test]
fn garbage_member_blobs_inside_a_valid_seal_fail_typed_at_decode() {
    // The artifact frame is honest; the member payload is noise. The
    // store must refuse to revive it — a typed Model error, not a panic
    // and not a partial ensemble.
    let artifact = Artifact {
        algorithm: "XGBRegressor".into(),
        pipeline: None,
        lags: vec![1, 2],
        members: vec![(1.0, vec![0xAB; 64])],
    };
    let reopened = Artifact::open(&artifact.seal()).expect("frame itself is valid");
    let store = ModelStore::new();
    store.publish("acme", "load", reopened);
    let err = store.resolve("acme", "load").expect_err("garbage member");
    assert!(matches!(err, ServeError::Model(_)), "unexpected {err:?}");

    // A truncated-but-real member blob fails the same way.
    let mut real = v3_artifact(4);
    let blob = &mut real.members[0].1;
    blob.truncate(blob.len() / 2);
    let store = ModelStore::new();
    store.publish(
        "acme",
        "cut",
        Artifact::open(&real.seal()).expect("frame valid"),
    );
    let err = store.resolve("acme", "cut").expect_err("truncated member");
    assert!(matches!(err, ServeError::Model(_)), "unexpected {err:?}");
}

#[test]
fn a_wrong_generation_request_is_refused_not_guessed() {
    // Flat member, no lag recipe in the artifact: the store must refuse
    // with a typed error instead of inventing features.
    let mut flat = v2_artifact(5, &[1, 2, 12]);
    flat.lags.clear();
    let store = ModelStore::new();
    store.publish("acme", "flat", flat);
    let ens = store.resolve("acme", "flat").expect("decodes fine");
    let v = series(5, SERIES_LEN);
    let err = ens.forecast(&v, 120, 125).expect_err("no recipe");
    assert!(matches!(err, ServeError::Model(_)), "unexpected {err:?}");
}
