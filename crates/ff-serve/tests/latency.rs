//! Latency accounting (satellite 3): the per-shard histogram partials,
//! merged in shard index order, must equal one histogram fed every
//! observation — bucket for bucket, percentile for percentile. The
//! batcher's p50/p95/p99 are only trustworthy if sharding is invisible
//! to the numbers.

mod common;

use common::{series, v3_artifact, SERIES_LEN};
use ff_serve::{Batcher, ModelStore, PredictRequest};
use ff_trace::Histogram;
use proptest::prelude::*;
use std::sync::Arc;

fn assert_hist_eq(merged: &Histogram, single: &Histogram) {
    assert_eq!(merged.count(), single.count(), "count");
    assert_eq!(merged.min(), single.min(), "min");
    assert_eq!(merged.max(), single.max(), "max");
    assert_eq!(
        merged.buckets().collect::<Vec<_>>(),
        single.buckets().collect::<Vec<_>>(),
        "buckets"
    );
    for q in [0.0, 0.25, 0.5, 0.90, 0.95, 0.99, 1.0] {
        assert_eq!(merged.percentile(q), single.percentile(q), "p{q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merged_shard_partials_equal_one_histogram(
        values in prop::collection::vec(0.0f64..1.0e7, 1..400),
        chunk in 1usize..64,
    ) {
        let mut single = Histogram::new();
        for &v in &values {
            single.record(v);
        }
        let shards: Vec<Histogram> = values
            .chunks(chunk)
            .map(|c| {
                let mut h = Histogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        assert_hist_eq(&Histogram::merge_all(&shards), &single);
    }
}

#[test]
fn the_batcher_accounts_every_served_request_exactly_once() {
    let store = Arc::new(ModelStore::new());
    store.publish("acme", "load", v3_artifact(21));
    let values = series(21, SERIES_LEN);
    let mut requests: Vec<PredictRequest> = (0..37usize)
        .map(|i| PredictRequest {
            tenant: "acme".into(),
            series: "load".into(),
            values: values.clone(),
            start: 120 + (i % 10),
            end: 131 + (i % 10),
        })
        .collect();
    // One failing request: an unknown model still burns measured time
    // and must still be accounted.
    requests.push(PredictRequest {
        tenant: "acme".into(),
        series: "nope".into(),
        values: values.clone(),
        start: 120,
        end: 121,
    });
    let outcome = ff_par::with_threads(4, || Batcher::new().run(&store, &requests));
    assert_eq!(outcome.latency_us.len(), requests.len());
    let merged = outcome.latency_histogram();
    assert_eq!(merged.count(), requests.len() as u64);
    let per_shard: u64 = outcome.shard_latency.iter().map(|h| h.count()).sum();
    assert_eq!(per_shard, requests.len() as u64);
    // The merged histogram is exactly the shard partials re-recorded.
    let mut single = Histogram::new();
    for &us in &outcome.latency_us {
        single.record(us as f64);
    }
    assert_hist_eq(&merged, &single);
}
