//! Determinism contract: a deadline-free serve is a pure function of
//! the store and the batch. Threads change wall-clock, never bytes —
//! the batcher shards by `ff_par::shard_len` (a function of the batch,
//! not the pool) and folds members in index order, so the same batch
//! against the same store is bit-identical at any `FF_THREADS`.

mod common;

use common::{assert_bits_eq, mixed_artifact, series, v2_artifact, v3_artifact, SERIES_LEN};
use ff_serve::{Batcher, ModelStore, PredictRequest, ServeConfig, ServeRuntime};
use std::sync::Arc;

/// A store with three tenants × four series, mixing artifact
/// generations: v3 pipelines, flat v2, and mixed-generation ensembles.
fn build_store() -> Arc<ModelStore> {
    let store = Arc::new(ModelStore::new());
    for (t, tenant) in ["acme", "globex", "initech"].iter().enumerate() {
        for s in 0..4u64 {
            let seed = t as u64 * 10 + s;
            let artifact = match s % 3 {
                0 => v3_artifact(seed),
                1 => v2_artifact(seed, &[1, 2, 12]),
                _ => mixed_artifact(seed, &[1, 3, 7]),
            };
            store.publish(tenant, &format!("series-{s}"), artifact);
        }
    }
    store
}

/// Every `(tenant, series)` key × several forecast windows.
fn build_requests() -> Vec<PredictRequest> {
    let mut reqs = Vec::new();
    for (t, tenant) in ["acme", "globex", "initech"].iter().enumerate() {
        for s in 0..4u64 {
            let values = series(t as u64 * 10 + s, SERIES_LEN);
            for (start, end) in [(120, 130), (130, 131), (140, 158)] {
                reqs.push(PredictRequest {
                    tenant: tenant.to_string(),
                    series: format!("series-{s}"),
                    values: values.clone(),
                    start,
                    end,
                });
            }
        }
    }
    reqs
}

fn forecast_bits(results: &[Result<Vec<f64>, ff_serve::ServeError>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|r| {
            r.as_ref()
                .expect("all fixture requests succeed")
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

#[test]
fn batches_are_bit_identical_across_thread_counts() {
    let store = build_store();
    let requests = build_requests();
    let batcher = Batcher::new();
    let base = ff_par::with_threads(1, || batcher.run(&store, &requests));
    for threads in [2, 4, 7] {
        let other = ff_par::with_threads(threads, || batcher.run(&store, &requests));
        assert_eq!(
            base.shard_len, other.shard_len,
            "shard shape must not depend on the pool"
        );
        assert_eq!(
            forecast_bits(&base.forecasts),
            forecast_bits(&other.forecasts),
            "forecast bits diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn batched_equals_serial_resolve_and_forecast() {
    let store = build_store();
    let requests = build_requests();
    let batched = ff_par::with_threads(4, || Batcher::new().run(&store, &requests));
    for (req, out) in requests.iter().zip(&batched.forecasts) {
        let serial = store
            .resolve(&req.tenant, &req.series)
            .and_then(|e| e.forecast(&req.values, req.start, req.end))
            .expect("serial forecast");
        assert_bits_eq(
            out.as_ref().expect("batched forecast"),
            &serial,
            &format!("{}:{} {}..{}", req.tenant, req.series, req.start, req.end),
        );
    }
}

#[test]
fn serve_runtime_without_deadline_is_deterministic() {
    let requests = build_requests();
    let mut baseline: Option<Vec<Vec<u64>>> = None;
    for threads in [1, 4] {
        // A fresh runtime per thread count: cache state, admission
        // counters, and pool size all reset, so only the contract —
        // store + batch → bytes — carries across.
        let rt = ServeRuntime::new(build_store(), ServeConfig::default());
        let results = ff_par::with_threads(threads, || rt.serve(&requests));
        let bits = forecast_bits(&results);
        match &baseline {
            None => baseline = Some(bits),
            Some(b) => assert_eq!(b, &bits, "runtime diverged at {threads} threads"),
        }
    }
}
