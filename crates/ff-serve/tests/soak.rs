//! Concurrency soak (satellite 2): reader threads hammer the store
//! while a writer hot-swaps the artifact under them. Every response
//! must be entirely the old model's forecast or entirely the new one's
//! — a torn read would blend them — and the whole run must finish
//! inside a watchdog deadline, which a lock-ordering deadlock would
//! miss.

mod common;

use common::{reference_forecast, series, v3_artifact, SERIES_LEN};
use ff_serve::{Batcher, ModelStore, PredictRequest, ServeConfig, ServeRuntime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const READERS: usize = 4;
const READS_PER_READER: usize = 200;
const SWAPS: usize = 100;

#[test]
fn hot_swap_under_load_never_tears_and_never_deadlocks() {
    // The actual work runs on a worker thread; the test thread is the
    // watchdog. A deadlock (or livelock) inside the store would hang
    // the workers forever — recv_timeout turns that into a failure
    // instead of a silent CI hang.
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        soak();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("soak deadlocked: workers did not finish inside the watchdog deadline");
}

fn soak() {
    let a = v3_artifact(11);
    let b = v3_artifact(12);
    let values = series(9, SERIES_LEN);
    let (start, end) = (120, 132);
    let ref_a: Vec<u64> = reference_forecast(&a, &values, start, end)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let ref_b: Vec<u64> = reference_forecast(&b, &values, start, end)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_ne!(ref_a, ref_b, "fixture models must actually differ");

    // A tiny revive capacity forces constant decode/evict churn — the
    // worst case for the cache's locking.
    let store = Arc::new(ModelStore::with_revive_capacity(2));
    store.publish("acme", "load", a.clone());
    let rt = Arc::new(ServeRuntime::new(
        Arc::clone(&store),
        ServeConfig {
            tenant_inflight_limit: usize::MAX,
            ..ServeConfig::default()
        },
    ));
    let writer_done = Arc::new(AtomicBool::new(false));

    let writer = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&writer_done);
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            for i in 0..SWAPS {
                let next = if i % 2 == 0 { b.clone() } else { a.clone() };
                store.publish("acme", "load", next);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let rt = Arc::clone(&rt);
            let store = Arc::clone(&store);
            let values = values.clone();
            let (ref_a, ref_b) = (ref_a.clone(), ref_b.clone());
            std::thread::spawn(move || {
                let batcher = Batcher::new();
                for i in 0..READS_PER_READER {
                    // Alternate the two read paths: raw resolve+forecast
                    // and the full runtime front door.
                    let forecast = if (r + i) % 2 == 0 {
                        store
                            .resolve("acme", "load")
                            .and_then(|e| e.forecast(&values, start, end))
                            .expect("resolve path")
                    } else {
                        let req = PredictRequest {
                            tenant: "acme".into(),
                            series: "load".into(),
                            values: values.clone(),
                            start,
                            end,
                        };
                        let mut out = if i % 4 == 1 {
                            batcher.run(rt.store(), &[req]).forecasts
                        } else {
                            rt.serve(&[req])
                        };
                        out.remove(0).expect("serve path")
                    };
                    let bits: Vec<u64> = forecast.iter().map(|v| v.to_bits()).collect();
                    assert!(
                        bits == ref_a || bits == ref_b,
                        "torn response: neither generation's forecast (reader {r}, read {i})"
                    );
                }
            })
        })
        .collect();

    for h in readers {
        h.join().expect("reader thread");
    }
    writer.join().expect("writer thread");
    assert!(writer_done.load(Ordering::Acquire));

    // After the dust settles the store serves the last-published model.
    let last = if SWAPS % 2 == 1 { &ref_b } else { &ref_a };
    let settled: Vec<u64> = store
        .resolve("acme", "load")
        .and_then(|e| e.forecast(&values, start, end))
        .expect("settled forecast")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(&settled, last, "store did not settle on the final publish");
}
