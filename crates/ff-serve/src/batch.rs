//! The batcher: coalesced multi-series prediction on the [`ff_par`]
//! pool, with the fleet runtime's shard discipline.
//!
//! A batch of `n` requests is split into contiguous shards sized by
//! [`ff_par::shard_len`] — a pure function of `(n, policy)`, never of
//! the live thread count — and each shard is served sequentially on a
//! pool worker. Shard results come back in shard index order and are
//! concatenated, so the response vector is bit-identical at any
//! `FF_THREADS` setting; threads change wall-clock, never bytes.

use crate::error::ServeError;
use crate::store::ModelStore;
use ff_trace::Histogram;
use std::time::Instant;

/// One forecast request: predict indices `start..end` of the named
/// tenant's series, given the series history `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Tenant the model belongs to (admission is per tenant).
    pub tenant: String,
    /// Series key within the tenant.
    pub series: String,
    /// The series history; predictions at index `t` read `values[..t]`.
    pub values: Vec<f64>,
    /// First index to predict.
    pub start: usize,
    /// One past the last index to predict.
    pub end: usize,
}

/// A request's outcome: the forecast values, or a typed refusal.
pub type ForecastResult = Result<Vec<f64>, ServeError>;

/// Shard-sizing policy, mirroring the fleet runtime's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum shards a batch is split into.
    pub max_shards: usize,
    /// Minimum requests per shard (avoids per-shard overhead dominating
    /// tiny batches).
    pub min_shard: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_shards: 64,
            min_shard: 4,
        }
    }
}

/// What one batch produced: per-request outcomes in request order, the
/// per-shard latency partials (shard index order), and the shard shape.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, aligned with the input batch.
    pub forecasts: Vec<ForecastResult>,
    /// Per-request service latencies in microseconds, aligned with the
    /// input batch (shed/deadline-missed requests record 0).
    pub latency_us: Vec<u64>,
    /// Per-shard latency histograms, in shard index order.
    pub shard_latency: Vec<Histogram>,
    /// The shard length the batch was partitioned with.
    pub shard_len: usize,
}

impl BatchOutcome {
    /// The batch's latency histogram: the per-shard partials merged in
    /// shard index order (equal, bucket for bucket, to recording every
    /// observation into one histogram — pinned by the contract suite).
    pub fn latency_histogram(&self) -> Histogram {
        Histogram::merge_all(&self.shard_latency)
    }
}

/// Coalesces predict requests and drives them through the pool.
#[derive(Debug, Clone, Default)]
pub struct Batcher {
    policy: BatchPolicy,
}

impl Batcher {
    /// A batcher with the default shard policy.
    pub fn new() -> Batcher {
        Batcher::default()
    }

    /// A batcher with an explicit shard policy.
    pub fn with_policy(policy: BatchPolicy) -> Batcher {
        Batcher { policy }
    }

    /// Serves a batch against the store. Each request resolves its
    /// ensemble once (so a concurrent hot-swap can never tear a single
    /// response) and forecasts independently; outcomes return in
    /// request order.
    pub fn run(&self, store: &ModelStore, requests: &[PredictRequest]) -> BatchOutcome {
        self.run_with_deadline(store, requests, None)
    }

    /// [`Batcher::run`] with an optional wall-clock cutoff: requests
    /// reached after `deadline` are refused with
    /// [`ServeError::DeadlineExceeded`] instead of served late. The
    /// cutoff is inherently non-deterministic; pass `None` for the
    /// bit-identical path.
    pub fn run_with_deadline(
        &self,
        store: &ModelStore,
        requests: &[PredictRequest],
        deadline: Option<(Instant, std::time::Duration)>,
    ) -> BatchOutcome {
        let shard_len = ff_par::shard_len(
            requests.len(),
            self.policy.max_shards,
            self.policy.min_shard,
        );
        // Shards run on the pool; each returns (outcomes, latencies,
        // histogram) and par_chunks_map hands them back in shard index
        // order — the merge below is deterministic by construction.
        let shards = ff_par::par_chunks_map(requests, shard_len, |_, shard| {
            let mut outcomes = Vec::with_capacity(shard.len());
            let mut lat = Vec::with_capacity(shard.len());
            let mut hist = Histogram::new();
            for req in shard {
                if let Some((cutoff, budget)) = deadline {
                    if Instant::now() >= cutoff {
                        outcomes.push(Err(ServeError::DeadlineExceeded { budget }));
                        lat.push(0);
                        continue;
                    }
                }
                let t0 = Instant::now();
                let outcome = store
                    .resolve(&req.tenant, &req.series)
                    .and_then(|ensemble| ensemble.forecast(&req.values, req.start, req.end));
                let us = t0.elapsed().as_micros() as u64;
                hist.record(us as f64);
                outcomes.push(outcome);
                lat.push(us);
            }
            (outcomes, lat, hist)
        });
        let mut forecasts = Vec::with_capacity(requests.len());
        let mut latency_us = Vec::with_capacity(requests.len());
        let mut shard_latency = Vec::with_capacity(shards.len());
        for (outcomes, lat, hist) in shards {
            forecasts.extend(outcomes);
            latency_us.extend(lat);
            shard_latency.push(hist);
        }
        BatchOutcome {
            forecasts,
            latency_us,
            shard_latency,
            shard_len,
        }
    }
}
