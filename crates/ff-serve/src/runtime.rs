//! The serving front door: per-tenant admission, deadlines, and
//! end-to-end observability over the batcher.
//!
//! Admission is a bounded per-tenant in-flight counter — the "queue"
//! of a synchronous serving layer. A request past the limit is shed at
//! the door with [`ServeError::Overloaded`]: the caller always learns
//! it was refused, and a refused request never consumes model time, so
//! queue depth stays bounded under any burst. Sheds and deadline
//! misses commit flight-recorder frames (the recorder's rejection
//! trigger freezes a forensic dump of the surrounding traffic), and
//! every answered request lands in the `serve.latency_us` histogram
//! scraped through the exposition endpoint.

use crate::batch::{BatchPolicy, Batcher, ForecastResult, PredictRequest};
use crate::error::ServeError;
use crate::store::ModelStore;
use ff_trace::{ExpoConfig, ExpoServer, FlightRecorder, RoundFrame, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-door configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Per-tenant in-flight request limit; admission sheds past it.
    pub tenant_inflight_limit: usize,
    /// Wall-clock budget per serve call (`None` = unbounded, the
    /// deterministic path).
    pub deadline: Option<Duration>,
    /// Shard policy handed to the batcher.
    pub batch: BatchPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenant_inflight_limit: 64,
            deadline: None,
            batch: BatchPolicy::default(),
        }
    }
}

/// Per-tenant admission state.
#[derive(Default)]
struct TenantGate {
    in_flight: AtomicUsize,
    peak: AtomicUsize,
    shed: AtomicU64,
}

/// The serving runtime. Cheap to share behind an [`Arc`]; `serve` is
/// `&self` and safe to call from many threads at once.
pub struct ServeRuntime {
    store: Arc<ModelStore>,
    cfg: ServeConfig,
    batcher: Batcher,
    tracer: Tracer,
    recorder: FlightRecorder,
    tenants: Mutex<HashMap<String, Arc<TenantGate>>>,
    calls: AtomicU64,
}

impl ServeRuntime {
    /// A runtime over `store` with tracing and forensics disabled.
    pub fn new(store: Arc<ModelStore>, cfg: ServeConfig) -> ServeRuntime {
        ServeRuntime {
            batcher: Batcher::with_policy(cfg.batch),
            store,
            cfg,
            tracer: Tracer::disabled(),
            recorder: FlightRecorder::disabled(),
            tenants: Mutex::new(HashMap::new()),
            calls: AtomicU64::new(0),
        }
    }

    /// Attaches a tracer (`serve.request` spans, counters, latency
    /// histogram).
    pub fn with_tracer(mut self, tracer: Tracer) -> ServeRuntime {
        self.tracer = tracer;
        self
    }

    /// Attaches a flight recorder (frames on shed / deadline miss).
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> ServeRuntime {
        self.recorder = recorder;
        self
    }

    /// The underlying store (for publishing while serving).
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The attached flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Starts a `/metrics` + `/healthz` exposition endpoint over the
    /// runtime's tracer — the same server the engine exposes runs on.
    pub fn expose(&self, cfg: ExpoConfig) -> std::io::Result<ExpoServer> {
        ExpoServer::start(self.tracer.clone(), cfg)
    }

    /// Highest concurrent in-flight count a tenant ever reached —
    /// the overload suite's bounded-queue witness.
    pub fn peak_in_flight(&self, tenant: &str) -> usize {
        self.tenants
            .lock()
            .get(tenant)
            .map(|g| g.peak.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Requests shed at admission for a tenant since construction.
    pub fn shed_total(&self, tenant: &str) -> u64 {
        self.tenants
            .lock()
            .get(tenant)
            .map(|g| g.shed.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn gate(&self, tenant: &str) -> Arc<TenantGate> {
        let mut tenants = self.tenants.lock();
        Arc::clone(tenants.entry(tenant.to_string()).or_default())
    }

    /// Serves one request batch: admission → batcher → bookkeeping.
    /// Outcomes align with `requests`; a shed or deadline-missed
    /// request gets its typed error, never a silently wrong forecast.
    pub fn serve(&self, requests: &[PredictRequest]) -> Vec<ForecastResult> {
        let _span = self.tracer.span("serve.request");
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let started = Instant::now();

        // Admission: acquire one in-flight permit per request, in
        // request order. `fetch_update` sheds without ever exceeding
        // the limit, so the bound holds under any concurrent burst.
        let limit = self.cfg.tenant_inflight_limit.max(1);
        let mut admitted: Vec<usize> = Vec::with_capacity(requests.len());
        let mut gates: Vec<Option<Arc<TenantGate>>> = Vec::with_capacity(requests.len());
        let mut results: Vec<Option<ForecastResult>> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let gate = self.gate(&req.tenant);
            let got = gate
                .in_flight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    (cur < limit).then_some(cur + 1)
                });
            match got {
                Ok(prev) => {
                    gate.peak.fetch_max(prev + 1, Ordering::Relaxed);
                    admitted.push(i);
                    gates.push(Some(gate));
                    results.push(None);
                }
                Err(_) => {
                    gate.shed.fetch_add(1, Ordering::Relaxed);
                    gates.push(None);
                    results.push(Some(Err(ServeError::Overloaded {
                        tenant: req.tenant.clone(),
                        limit,
                    })));
                }
            }
        }
        let shed = requests.len() - admitted.len();
        if shed > 0 {
            self.tracer.counter_add("serve.shed", shed as u64);
            self.commit_frame(call, requests, &results, "overloaded");
        }

        // The batch itself, over the admitted subset.
        let subset: Vec<PredictRequest> = admitted.iter().map(|&i| requests[i].clone()).collect();
        let deadline = self.cfg.deadline.map(|d| (started + d, d));
        let outcome = self
            .batcher
            .run_with_deadline(&self.store, &subset, deadline);
        for gate in gates.iter().flatten() {
            gate.in_flight.fetch_sub(1, Ordering::AcqRel);
        }

        // Bookkeeping: latency histogram (request order — deterministic
        // merge), counters, and a forensic frame on any deadline miss.
        let mut missed = 0u64;
        for (slot, forecast) in admitted.iter().zip(outcome.forecasts) {
            if matches!(forecast, Err(ServeError::DeadlineExceeded { .. })) {
                missed += 1;
            }
            results[*slot] = Some(forecast);
        }
        if self.tracer.is_enabled() {
            for &us in &outcome.latency_us {
                self.tracer.record("serve.latency_us", us as f64);
            }
            self.tracer
                .counter_add("serve.requests", requests.len() as u64);
            self.tracer
                .gauge_set("serve.models", self.store.len() as f64);
            let (hits, misses) = self.store.cache_stats();
            self.tracer.gauge_set("serve.revive_hits", hits as f64);
            self.tracer.gauge_set("serve.revive_misses", misses as f64);
        }
        let results: Vec<ForecastResult> = results
            .into_iter()
            .map(|r| r.expect("every request slot is filled"))
            .collect();
        if missed > 0 {
            self.tracer.counter_add("serve.deadline_miss", missed);
            self.commit_frame(
                call,
                requests,
                &results.iter().map(|r| Some(r.clone())).collect::<Vec<_>>(),
                "deadline",
            );
        }
        results
    }

    /// Commits one flight-recorder frame describing a distressed serve
    /// call. Refused requests ride the frame's `rejected` list, which
    /// trips the recorder's rejection trigger and freezes a dump.
    fn commit_frame(
        &self,
        call: u64,
        requests: &[PredictRequest],
        results: &[Option<ForecastResult>],
        why: &str,
    ) {
        self.recorder.commit_with(|| {
            let rejected: Vec<(u64, String)> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    Some(Err(ServeError::Overloaded { tenant, .. })) => {
                        Some((i as u64, format!("overloaded:{tenant}")))
                    }
                    Some(Err(ServeError::DeadlineExceeded { .. })) => {
                        Some((i as u64, "deadline-miss".to_string()))
                    }
                    _ => None,
                })
                .collect();
            let accepted = requests.len() as u64 - rejected.len() as u64;
            RoundFrame {
                round: call,
                phase: if why == "deadline" {
                    "serve.deadline"
                } else {
                    "serve.admission"
                },
                cohort: requests.len() as u64,
                admitted: accepted,
                accepted,
                rejected,
                ..RoundFrame::default()
            }
        });
    }
}
