//! Typed serving errors. The overload and hostile-artifact contracts
//! both hinge on *typed* failures: a shed request must be
//! distinguishable from a wrong forecast, and a corrupt artifact must be
//! distinguishable from a missing one.

use std::fmt;
use std::time::Duration;

/// Why a sealed artifact failed to open or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Shorter than the fixed header + checksum frame.
    TooShort,
    /// The leading magic bytes are not `FFSV`.
    BadMagic,
    /// A version byte this build does not understand.
    UnsupportedVersion(u8),
    /// The trailing CRC32 does not match the framed contents.
    ChecksumMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC recomputed over the frame.
        found: u32,
    },
    /// A field ran past the end of the input.
    Truncated,
    /// A length prefix exceeded its sanity cap (rejected before any
    /// allocation).
    ImplausibleLength(u64),
    /// An unknown tag or invalid UTF-8 where a string was expected.
    BadTag(u8),
    /// Bytes left over after the last field — a frame from a different
    /// writer.
    TrailingBytes(usize),
    /// A structurally valid frame carrying invalid content (zero lag,
    /// non-finite weight, empty member set).
    Invalid(String),
    /// Filesystem failure while reading or writing a sealed artifact.
    Io(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::TooShort => write!(f, "sealed artifact shorter than its frame"),
            ArtifactError::BadMagic => write!(f, "not a sealed artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v}")
            }
            ArtifactError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch (recorded {expected:#010x}, computed {found:#010x})"
            ),
            ArtifactError::Truncated => write!(f, "truncated artifact field"),
            ArtifactError::ImplausibleLength(n) => {
                write!(f, "implausible artifact length prefix {n}")
            }
            ArtifactError::BadTag(t) => write!(f, "bad artifact tag {t}"),
            ArtifactError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last artifact field")
            }
            ArtifactError::Invalid(why) => write!(f, "invalid artifact: {why}"),
            ArtifactError::Io(e) => write!(f, "artifact I/O: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Why a forecast request was not answered with a forecast.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No artifact is published under `(tenant, series)`.
    UnknownModel {
        /// Requested tenant.
        tenant: String,
        /// Requested series.
        series: String,
    },
    /// The tenant's bounded in-flight limit was hit; the request was
    /// shed at admission, before any model work.
    Overloaded {
        /// Tenant whose limit tripped.
        tenant: String,
        /// The configured in-flight limit.
        limit: usize,
    },
    /// The serve call's wall-clock budget ran out before this request
    /// was (fully) processed.
    DeadlineExceeded {
        /// The configured budget.
        budget: Duration,
    },
    /// The published artifact failed to open or validate.
    Artifact(ArtifactError),
    /// A member failed to revive or predict (hostile blob, dimension
    /// mismatch, missing lag recipe for a flat member, …).
    Model(String),
    /// The request itself is malformed (empty range, not enough
    /// history for the lag window, …).
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { tenant, series } => {
                write!(f, "no model published for {tenant}/{series}")
            }
            ServeError::Overloaded { tenant, limit } => {
                write!(f, "tenant {tenant} over its in-flight limit of {limit}")
            }
            ServeError::DeadlineExceeded { budget } => {
                write!(f, "serve deadline of {budget:?} exceeded")
            }
            ServeError::Artifact(e) => write!(f, "artifact: {e}"),
            ServeError::Model(e) => write!(f, "model: {e}"),
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> ServeError {
        ServeError::Artifact(e)
    }
}
