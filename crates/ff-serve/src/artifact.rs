//! The sealed run artifact: what a finalized federated run exports and
//! what the model store loads.
//!
//! Layout (all little-endian, via [`ff_models::ser`]):
//!
//! ```text
//! "FFSV"  u8 version  ─ header
//! str algorithm
//! u8 has_pipeline  [str pipeline]
//! u32 n_lags  u32 lag × n_lags          ─ recipe for flat (v2) members
//! u32 n_members  (f64 weight, bytes blob) × n_members
//! u32 crc32                             ─ over everything above
//! ```
//!
//! Opening verifies frame → checksum → fields → content, in that order,
//! so a truncated file reports truncation, a flipped bit reports a
//! checksum mismatch, and a hostile length prefix is rejected before any
//! allocation happens. Disk contents are adversarial input: a serving
//! process loads whatever survived the last deploy.

use crate::error::ArtifactError;
use ff_models::ser::{Reader, SerError, Writer};
use std::path::Path;

/// Leading magic bytes of a sealed artifact.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"FFSV";

/// Current artifact frame version.
pub const ARTIFACT_VERSION: u8 = 1;

/// Sanity caps mirrored from the blob codecs: reject before allocating.
const MAX_NAME: usize = 256;
const MAX_LAGS: usize = 4096;
const MAX_MEMBERS: usize = 65_536;
const MAX_BLOB: usize = 100_000_000;

/// IEEE CRC32 (reflected, polynomial `0xEDB88320`) — the same checksum
/// family the checkpoint WAL uses, reimplemented here so the serving
/// crate stays free of checkpoint machinery.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A finalized run, sealed for serving: the winning algorithm, the
/// winning pipeline (when the run searched composed pipelines), the lag
/// recipe flat members were trained on, and the weighted member set.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Name of the winning algorithm.
    pub algorithm: String,
    /// Name of the winning pipeline, when the run searched pipelines.
    pub pipeline: Option<String>,
    /// Lag offsets (each ≥ 1) flat blob-v2 members engineer features
    /// from. Empty when the run has no flat members or the recipe was
    /// not lag-representable; flat members then refuse to serve with a
    /// typed error instead of guessing.
    pub lags: Vec<usize>,
    /// `(weight, blob)` member pairs, in finalization order. Weights
    /// are raw (e.g. per-client example counts); consumers normalize.
    pub members: Vec<(f64, Vec<u8>)>,
}

impl Artifact {
    /// Seals the artifact into its framed, checksummed byte form.
    pub fn seal(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.algorithm);
        match &self.pipeline {
            Some(p) => {
                w.u8(1);
                w.str(p);
            }
            None => w.u8(0),
        }
        w.u32(self.lags.len() as u32);
        for &lag in &self.lags {
            w.u32(lag as u32);
        }
        w.u32(self.members.len() as u32);
        for (weight, blob) in &self.members {
            w.f64(*weight);
            w.bytes(blob);
        }
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.push(ARTIFACT_VERSION);
        out.extend_from_slice(&w.finish());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Opens a sealed artifact, verifying frame, checksum, fields, and
    /// content. Every failure is a typed [`ArtifactError`]; hostile
    /// input can neither panic nor force an unbounded allocation.
    pub fn open(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        // Frame: magic + version + at least the trailing CRC.
        if bytes.len() < ARTIFACT_MAGIC.len() + 1 + 4 {
            return Err(ArtifactError::TooShort);
        }
        if bytes[..4] != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        if bytes[4] != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(bytes[4]));
        }
        let (framed, trailer) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(trailer.try_into().unwrap());
        let found = crc32(framed);
        if expected != found {
            return Err(ArtifactError::ChecksumMismatch { expected, found });
        }
        // Fields.
        let mut r = Reader::new(&framed[5..]);
        let algorithm = r.str(MAX_NAME).map_err(ser_err)?.to_string();
        let pipeline = match r.u8().map_err(ser_err)? {
            0 => None,
            1 => Some(r.str(MAX_NAME).map_err(ser_err)?.to_string()),
            t => return Err(ArtifactError::BadTag(t)),
        };
        let n_lags = r.u32().map_err(ser_err)? as usize;
        if n_lags > MAX_LAGS {
            return Err(ArtifactError::ImplausibleLength(n_lags as u64));
        }
        let mut lags = Vec::with_capacity(n_lags);
        for _ in 0..n_lags {
            lags.push(r.u32().map_err(ser_err)? as usize);
        }
        let n_members = r.u32().map_err(ser_err)? as usize;
        if n_members > MAX_MEMBERS {
            return Err(ArtifactError::ImplausibleLength(n_members as u64));
        }
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let weight = r.f64().map_err(ser_err)?;
            let blob = r.bytes(MAX_BLOB).map_err(ser_err)?.to_vec();
            members.push((weight, blob));
        }
        if !r.is_exhausted() {
            return Err(ArtifactError::TrailingBytes(r.remaining()));
        }
        // Content: these invariants guard serving correctness — a zero
        // lag would read the value being predicted (causality breach),
        // a non-positive weight sum makes normalization undefined.
        if members.is_empty() {
            return Err(ArtifactError::Invalid("artifact has no members".into()));
        }
        if lags.contains(&0) {
            return Err(ArtifactError::Invalid(
                "lag 0 would read the predicted value itself".into(),
            ));
        }
        let wsum: f64 = members.iter().map(|(w, _)| *w).sum();
        if members.iter().any(|(w, _)| !w.is_finite() || *w < 0.0) || wsum <= 0.0 {
            return Err(ArtifactError::Invalid(
                "member weights must be finite, non-negative, and sum > 0".into(),
            ));
        }
        Ok(Artifact {
            algorithm,
            pipeline,
            lags,
            members,
        })
    }

    /// Seals and writes the artifact to `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.seal()).map_err(|e| ArtifactError::Io(format!("{path:?}: {e}")))
    }

    /// Reads and opens a sealed artifact from `path`.
    pub fn read_from(path: &Path) -> Result<Artifact, ArtifactError> {
        let bytes = std::fs::read(path).map_err(|e| ArtifactError::Io(format!("{path:?}: {e}")))?;
        Artifact::open(&bytes)
    }
}

fn ser_err(e: SerError) -> ArtifactError {
    match e {
        SerError::Truncated => ArtifactError::Truncated,
        SerError::BadLength(n) => ArtifactError::ImplausibleLength(n),
        SerError::BadTag(t) => ArtifactError::BadTag(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            algorithm: "Lasso".into(),
            pipeline: Some("trend_lagged".into()),
            lags: vec![1, 2, 3, 7],
            members: vec![(2.0, vec![3, 1, 4, 1, 5]), (1.0, vec![9, 2, 6])],
        }
    }

    #[test]
    fn seal_open_round_trips() {
        let a = sample();
        assert_eq!(Artifact::open(&a.seal()).unwrap(), a);
        let flat = Artifact {
            pipeline: None,
            lags: vec![],
            ..sample()
        };
        assert_eq!(Artifact::open(&flat.seal()).unwrap(), flat);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let sealed = sample().seal();
        for cut in 0..sealed.len() {
            assert!(
                Artifact::open(&sealed[..cut]).is_err(),
                "prefix of {cut} bytes must not open"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught_by_the_checksum() {
        let sealed = sample().seal();
        for offset in 0..sealed.len() {
            let mut hostile = sealed.clone();
            hostile[offset] ^= 1;
            let err = Artifact::open(&hostile).unwrap_err();
            // Flips in the magic/version report as such; everywhere else
            // (including inside the CRC trailer itself) the checksum
            // catches the damage.
            assert!(
                matches!(
                    err,
                    ArtifactError::BadMagic
                        | ArtifactError::UnsupportedVersion(_)
                        | ArtifactError::ChecksumMismatch { .. }
                ),
                "offset {offset}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn invalid_content_is_rejected_even_with_a_valid_checksum() {
        let no_members = Artifact {
            members: vec![],
            ..sample()
        };
        assert!(matches!(
            Artifact::open(&no_members.seal()),
            Err(ArtifactError::Invalid(_))
        ));
        let zero_lag = Artifact {
            lags: vec![1, 0],
            ..sample()
        };
        assert!(matches!(
            Artifact::open(&zero_lag.seal()),
            Err(ArtifactError::Invalid(_))
        ));
        let bad_weight = Artifact {
            members: vec![(f64::NAN, vec![1])],
            ..sample()
        };
        assert!(matches!(
            Artifact::open(&bad_weight.seal()),
            Err(ArtifactError::Invalid(_))
        ));
        let zero_weight = Artifact {
            members: vec![(0.0, vec![1]), (0.0, vec![2])],
            ..sample()
        };
        assert!(matches!(
            Artifact::open(&zero_weight.seal()),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut sealed = sample().seal();
        // Splice extra bytes inside the frame and re-seal the CRC so only
        // the trailing-bytes check can object.
        let crc_at = sealed.len() - 4;
        sealed.splice(crc_at..crc_at, [0u8; 3]);
        let crc = crc32(&sealed[..sealed.len() - 4]);
        let at = sealed.len() - 4;
        sealed[at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Artifact::open(&sealed),
            Err(ArtifactError::TrailingBytes(3))
        );
    }
}
