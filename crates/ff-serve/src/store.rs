//! The in-memory model store: `(tenant, series)` → sealed artifact,
//! with lazy decode and a bounded LRU revive cache.
//!
//! Two-level design: the *slot map* holds `Arc<Artifact>`s (cheap —
//! bytes), the *revive cache* holds `Arc<Ensemble>`s (expensive —
//! decoded models) for at most `revive_capacity` entries. Resolving a
//! key snapshots its slot under a read lock, then revives through the
//! cache; publishing swaps the slot atomically and invalidates the
//! key's cached revival. An in-flight request that already resolved
//! keeps its `Arc<Ensemble>` — hot-swapping can never tear a response.

use crate::artifact::Artifact;
use crate::error::ServeError;
use ff_linalg::Matrix;
use ff_models::pipeline::{decode_member_blob, RevivedMember};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A decoded, servable ensemble: revived members plus normalized
/// weights. The fold is pinned to match the engine's deployment
/// evaluation exactly: members in artifact order, `agg[j] += w·p[j]`
/// with `w` normalized by the weight sum — so a forecast served here is
/// bit-identical to the engine's own weighted union of
/// `predict_range`/`predict_features` calls.
pub struct Ensemble {
    algorithm: String,
    lags: Vec<usize>,
    weights: Vec<f64>,
    members: Vec<RevivedMember>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("algorithm", &self.algorithm)
            .field("lags", &self.lags)
            .field("members", &self.members.len())
            .finish()
    }
}

impl Ensemble {
    /// Decodes every member of an opened artifact. Any undecodable blob
    /// fails the whole ensemble — serving a partial union would be a
    /// silently wrong forecast.
    pub fn decode(artifact: &Artifact) -> Result<Ensemble, ServeError> {
        let wsum: f64 = artifact.members.iter().map(|(w, _)| *w).sum();
        if !wsum.is_finite() || wsum <= 0.0 {
            return Err(ServeError::Model(
                "member weights must sum to a positive finite value".into(),
            ));
        }
        let mut weights = Vec::with_capacity(artifact.members.len());
        let mut members = Vec::with_capacity(artifact.members.len());
        for (i, (weight, blob)) in artifact.members.iter().enumerate() {
            let member = decode_member_blob(blob)
                .map_err(|e| ServeError::Model(format!("member {i}: {e}")))?;
            weights.push(weight / wsum);
            members.push(member);
        }
        Ok(Ensemble {
            algorithm: artifact.algorithm.clone(),
            lags: artifact.lags.clone(),
            weights,
            members,
        })
    }

    /// Name of the ensemble's algorithm.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Number of revived members.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// The longest lag in the flat-member recipe (0 when there is none).
    fn max_lag(&self) -> usize {
        self.lags.iter().copied().max().unwrap_or(0)
    }

    /// Forecasts indices `start..end` of `values` with true history:
    /// the prediction at index `t` reads only `values[..t]`. Pipeline
    /// (blob-v3) members predict from the raw series; flat (blob-v2)
    /// members predict from lag features engineered per the artifact's
    /// recipe. Mixed-generation ensembles fold both, in member order.
    pub fn forecast(
        &self,
        values: &[f64],
        start: usize,
        end: usize,
    ) -> Result<Vec<f64>, ServeError> {
        if start >= end {
            return Err(ServeError::BadRequest(format!(
                "empty forecast range {start}..{end}"
            )));
        }
        if end > values.len() {
            return Err(ServeError::BadRequest(format!(
                "range {start}..{end} past the series end {}",
                values.len()
            )));
        }
        let mut agg = vec![0.0; end - start];
        let mut lag_rows: Option<Matrix> = None;
        for (i, (member, &w)) in self.members.iter().zip(&self.weights).enumerate() {
            let pred = match member {
                RevivedMember::Pipeline(_) => member
                    .predict_series(values, start, end)
                    .map_err(|e| ServeError::Model(format!("member {i}: {e}")))?,
                RevivedMember::SingleNode { .. } => {
                    if lag_rows.is_none() {
                        lag_rows = Some(self.engineer_lag_rows(values, start, end)?);
                    }
                    member
                        .predict_features(lag_rows.as_ref().unwrap())
                        .map_err(|e| ServeError::Model(format!("member {i}: {e}")))?
                }
            };
            for (a, v) in agg.iter_mut().zip(pred) {
                *a += w * v;
            }
        }
        Ok(agg)
    }

    /// Lag-feature rows for flat members: row `t` (absolute index) is
    /// `[values[t - lag] for lag in lags]` — every offset ≥ 1, so the
    /// row for `t` never reads `values[t]` or anything after it.
    fn engineer_lag_rows(
        &self,
        values: &[f64],
        start: usize,
        end: usize,
    ) -> Result<Matrix, ServeError> {
        if self.lags.is_empty() {
            return Err(ServeError::Model(
                "flat member without a lag recipe in the artifact".into(),
            ));
        }
        let max_lag = self.max_lag();
        if start < max_lag {
            return Err(ServeError::BadRequest(format!(
                "start {start} inside the lag window (need ≥ {max_lag} history values)"
            )));
        }
        Ok(Matrix::from_fn(end - start, self.lags.len(), |row, col| {
            values[start + row - self.lags[col]]
        }))
    }
}

type Key = (String, String);

struct Slot {
    version: u64,
    artifact: Arc<Artifact>,
}

/// The revive cache: decoded ensembles keyed by `(key, slot version)`,
/// evicting the least-recently-used entry past capacity. Versioned keys
/// make invalidation free — a republished slot simply never hits its
/// predecessor's cache line, which ages out.
struct ReviveCache {
    capacity: usize,
    tick: u64,
    map: HashMap<(Key, u64), (Arc<Ensemble>, u64)>,
}

impl ReviveCache {
    fn get(&mut self, key: &(Key, u64)) -> Option<Arc<Ensemble>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(e, used)| {
            *used = tick;
            Arc::clone(e)
        })
    }

    fn insert(&mut self, key: (Key, u64), ensemble: Arc<Ensemble>) {
        self.tick += 1;
        self.map.insert(key, (ensemble, self.tick));
        while self.map.len() > self.capacity.max(1) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
    }
}

/// The serving store. See the module docs for the swap/tear contract.
pub struct ModelStore {
    slots: RwLock<HashMap<Key, Slot>>,
    cache: Mutex<ReviveCache>,
    versions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelStore {
    /// An empty store with the default revive capacity (1024 decoded
    /// ensembles).
    pub fn new() -> ModelStore {
        ModelStore::with_revive_capacity(1024)
    }

    /// An empty store keeping at most `capacity` decoded ensembles
    /// live; everything else costs only its sealed bytes.
    pub fn with_revive_capacity(capacity: usize) -> ModelStore {
        ModelStore {
            slots: RwLock::new(HashMap::new()),
            cache: Mutex::new(ReviveCache {
                capacity: capacity.max(1),
                tick: 0,
                map: HashMap::new(),
            }),
            versions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Publishes (or hot-swaps) an artifact under `(tenant, series)`
    /// and returns its store version. The swap is atomic: requests
    /// resolve either the previous artifact or this one, never a blend.
    pub fn publish(&self, tenant: &str, series: &str, artifact: Artifact) -> u64 {
        let version = self.versions.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = Slot {
            version,
            artifact: Arc::new(artifact),
        };
        self.slots
            .write()
            .insert((tenant.to_string(), series.to_string()), slot);
        version
    }

    /// Removes a published model; `true` when something was removed.
    pub fn remove(&self, tenant: &str, series: &str) -> bool {
        self.slots
            .write()
            .remove(&(tenant.to_string(), series.to_string()))
            .is_some()
    }

    /// Number of published `(tenant, series)` keys.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Decoded ensembles currently held by the revive cache.
    pub fn revived(&self) -> usize {
        self.cache.lock().map.len()
    }

    /// Revive-cache hits and misses since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Resolves the servable ensemble for `(tenant, series)`: slot
    /// snapshot → cache hit, or decode-and-cache on miss. Decoding runs
    /// outside both locks; concurrent misses on one key may decode
    /// twice, but both produce the same ensemble (decode is pure), so
    /// the race costs time, never correctness.
    pub fn resolve(&self, tenant: &str, series: &str) -> Result<Arc<Ensemble>, ServeError> {
        let (version, artifact) = {
            let slots = self.slots.read();
            let slot = slots
                .get(&(tenant.to_string(), series.to_string()))
                .ok_or_else(|| ServeError::UnknownModel {
                    tenant: tenant.to_string(),
                    series: series.to_string(),
                })?;
            (slot.version, Arc::clone(&slot.artifact))
        };
        let cache_key = ((tenant.to_string(), series.to_string()), version);
        if let Some(hit) = self.cache.lock().get(&cache_key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ensemble = Arc::new(Ensemble::decode(&artifact)?);
        self.cache.lock().insert(cache_key, Arc::clone(&ensemble));
        Ok(ensemble)
    }
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::data::{Standardizer, TargetScaler};
    use ff_models::pipeline::{encode_external_blob, PipelineId, PipelineModel};
    use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 5.0 + 0.07 * t as f64 + (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect()
    }

    fn v3_artifact() -> Artifact {
        let v = series(160);
        let m = PipelineModel::fit(
            PipelineId::LAGGED,
            AlgorithmKind::LINEAR_SVR,
            &HyperParams::default(),
            &v,
            120,
        )
        .unwrap();
        Artifact {
            algorithm: "LinearSVR".into(),
            pipeline: Some("lagged".into()),
            lags: vec![],
            members: vec![(1.0, m.to_blob().unwrap())],
        }
    }

    fn v2_artifact(lags: &[usize]) -> Artifact {
        let v = series(160);
        let max_lag = lags.iter().copied().max().unwrap();
        let rows = 120 - max_lag;
        let x = Matrix::from_fn(rows, lags.len(), |r, c| v[max_lag + r - lags[c]]);
        let y: Vec<f64> = (0..rows).map(|r| v[max_lag + r]).collect();
        let scaler = Standardizer::fit(&x);
        let yscaler = TargetScaler::fit(&y);
        let xs = scaler.transform(&x);
        let ys: Vec<f64> = y.iter().map(|&t| yscaler.scale(t)).collect();
        let mut model = build_regressor(AlgorithmKind::XGB_REGRESSOR, &HyperParams::default());
        model.fit(&xs, &ys).unwrap();
        Artifact {
            algorithm: "XGBRegressor".into(),
            pipeline: None,
            lags: lags.to_vec(),
            members: vec![(
                3.0,
                encode_external_blob(
                    AlgorithmKind::XGB_REGRESSOR,
                    &scaler,
                    &yscaler,
                    &model.to_blob().unwrap(),
                ),
            )],
        }
    }

    #[test]
    fn resolve_decodes_lazily_and_caches() {
        let store = ModelStore::new();
        store.publish("acme", "load", v3_artifact());
        assert_eq!(store.revived(), 0, "publish must not decode");
        let e1 = store.resolve("acme", "load").unwrap();
        let e2 = store.resolve("acme", "load").unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "second resolve must hit the cache");
        assert_eq!(store.cache_stats(), (1, 1));
        assert!(matches!(
            store.resolve("acme", "nope"),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn lru_eviction_bounds_decoded_models() {
        let store = ModelStore::with_revive_capacity(2);
        for s in ["a", "b", "c"] {
            store.publish("t", s, v3_artifact());
            store.resolve("t", s).unwrap();
        }
        assert_eq!(store.revived(), 2, "capacity must bound the cache");
        // "a" was evicted; resolving it again is a miss, not an error.
        store.resolve("t", "a").unwrap();
        assert_eq!(store.revived(), 2);
    }

    #[test]
    fn hot_swap_invalidates_the_cached_revival() {
        let store = ModelStore::new();
        store.publish("acme", "load", v3_artifact());
        let old = store.resolve("acme", "load").unwrap();
        store.publish("acme", "load", v3_artifact());
        let new = store.resolve("acme", "load").unwrap();
        assert!(
            !Arc::ptr_eq(&old, &new),
            "swap must produce a fresh revival"
        );
    }

    #[test]
    fn v2_members_serve_from_the_lag_recipe_and_stay_causal() {
        let store = ModelStore::new();
        store.publish("acme", "flat", v2_artifact(&[1, 2, 5]));
        let e = store.resolve("acme", "flat").unwrap();
        let v = series(160);
        let f = e.forecast(&v, 130, 140).unwrap();
        assert_eq!(f.len(), 10);
        assert!(f.iter().all(|x| x.is_finite()));
        // Causality: changing values at/after the cutoff cannot change
        // the forecast at the cutoff.
        let mut poisoned = v.clone();
        for x in poisoned.iter_mut().skip(130) {
            *x = 1e9;
        }
        let g = e.forecast(&poisoned, 130, 131).unwrap();
        assert_eq!(f[0].to_bits(), g[0].to_bits());
        // Inside the lag window the request is rejected, not mis-served.
        assert!(matches!(
            e.forecast(&v, 2, 3),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn flat_member_without_recipe_is_a_typed_error() {
        let mut artifact = v2_artifact(&[1, 2, 5]);
        artifact.lags.clear();
        let store = ModelStore::new();
        store.publish("acme", "flat", artifact);
        let e = store.resolve("acme", "flat").unwrap();
        assert!(matches!(
            e.forecast(&series(160), 130, 140),
            Err(ServeError::Model(_))
        ));
    }

    #[test]
    fn mixed_generation_ensembles_fold_both_member_kinds() {
        let v = series(160);
        let v2 = v2_artifact(&[1, 2, 5]);
        let v3 = v3_artifact();
        let mixed = Artifact {
            algorithm: "LinearSVR".into(),
            pipeline: None,
            lags: v2.lags.clone(),
            members: vec![v2.members[0].clone(), v3.members[0].clone()],
        };
        let store = ModelStore::new();
        store.publish("acme", "mix", mixed);
        let e = store.resolve("acme", "mix").unwrap();
        assert_eq!(e.members(), 2);
        let f = e.forecast(&v, 130, 135).unwrap();
        // The fold must equal the hand-computed weighted union.
        let e2 = Ensemble::decode(&v2).unwrap();
        let e3 = Ensemble::decode(&v3).unwrap();
        let p2 = e2.forecast(&v, 130, 135).unwrap();
        let p3 = e3.forecast(&v, 130, 135).unwrap();
        for j in 0..f.len() {
            let want = (3.0 / 4.0) * p2[j] + (1.0 / 4.0) * p3[j];
            assert_eq!(f[j].to_bits(), want.to_bits(), "index {j}");
        }
    }
}
