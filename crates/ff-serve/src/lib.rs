//! Forecast serving: train once, serve millions.
//!
//! The engine's Algorithm 1 ends at a finalized federated ensemble —
//! blob-v2/v3 members plus per-member weights. This crate is the other
//! half of the deployment story: turning that member set into answered
//! forecast requests, at fleet scale, without giving up the workspace's
//! determinism discipline.
//!
//! - [`Artifact`]: the sealed on-disk/wire form of a finalized run — a
//!   versioned, CRC-guarded frame around the member blobs, their
//!   weights, and the (optional) lag recipe flat members need. Opening
//!   is defensive end to end: truncation, bit flips, and garbage tails
//!   are typed [`ArtifactError`]s, never panics, and never unbounded
//!   allocations (every length prefix is capped before allocation).
//! - [`ModelStore`]: an in-memory store keyed by `(tenant, series)`.
//!   Publishing is an atomic slot swap — in-flight requests keep the
//!   ensemble they resolved, so a response is always entirely old-model
//!   or entirely new-model. Decoding is lazy with a bounded LRU revive
//!   cache: cold artifacts cost bytes, not decoded models.
//! - [`Batcher`]: coalesces multi-series predict requests and drives
//!   them through the [`ff_par`] pool with the same shard-in-index-order
//!   discipline as the fleet runtime ([`ff_par::shard_len`] sizes shards
//!   from the batch alone), so forecasts are bit-identical across
//!   `FF_THREADS` settings.
//! - [`ServeRuntime`]: the front door — per-tenant admission with a
//!   bounded in-flight limit (overload is a typed
//!   [`ServeError::Overloaded`], never a silently wrong forecast), an
//!   optional wall-clock deadline, `serve.request` spans and latency
//!   histograms through [`ff_trace`], `/metrics` exposition via the
//!   existing [`ff_trace::ExpoServer`], and flight-recorder frames on
//!   shed and deadline-miss.
//!
//! # Determinism contract
//!
//! With no deadline configured, serving is a pure function of the store
//! contents and the request batch: shard partitioning depends only on
//! the batch size, every member folds in member index order, and shard
//! results merge in shard index order. A wall-clock deadline is
//! supported but inherently non-deterministic; the contract suite pins
//! the deadline-free path bit-for-bit at `FF_THREADS` 1 and 4.

#![warn(missing_docs)]

mod artifact;
mod batch;
mod error;
mod runtime;
mod store;

pub use artifact::{crc32, Artifact, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use batch::{BatchOutcome, BatchPolicy, Batcher, ForecastResult, PredictRequest};
pub use error::{ArtifactError, ServeError};
pub use runtime::{ServeConfig, ServeRuntime};
pub use store::{Ensemble, ModelStore};
