//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the experiment index).
//!
//! Each binary accepts `--key value` arguments; the defaults are scaled so
//! a full run finishes in minutes on a laptop. Paper-fidelity settings
//! (`--scale 1.0 --secs 300 --kb 512`) reproduce the original compute
//! envelope.

use fedforecaster::prelude::*;
use fedforecaster::report::ComparisonRow;
use fedforecaster::FedForecaster;
use ff_datasets::BenchmarkDataset;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::{reallike_kb, synthetic_kb};
use std::collections::BTreeMap;
use std::time::Duration;

/// Minimal `--key value` / `--flag` argument parser.
#[derive(Debug, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Args {
        let mut map = BTreeMap::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next().unwrap(),
                    _ => "true".to_string(),
                };
                map.insert(key.to_string(), value);
            }
        }
        Args { map }
    }

    /// Float argument with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Integer argument with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String argument with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.map.get(key).map(|v| v == "true").unwrap_or(false)
    }

    /// True when the key was supplied.
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// Shared run settings derived from CLI arguments.
#[derive(Debug, Clone)]
pub struct RunSettings {
    /// Dataset length scale in (0, 1].
    pub scale: f64,
    /// Shared optimization budget for all methods.
    pub budget: Budget,
    /// Random seeds (paper: 3 repetitions).
    pub seeds: Vec<u64>,
    /// Synthetic KB size for the meta-model.
    pub kb_size: usize,
}

impl RunSettings {
    /// Reads `--scale`, `--iters`/`--secs`, `--seeds`, `--kb`.
    pub fn from_args(args: &Args) -> RunSettings {
        let budget = if args.has("secs") {
            Budget::Time(Duration::from_secs_f64(args.f64("secs", 10.0)))
        } else {
            Budget::Iterations(args.usize("iters", 12))
        };
        RunSettings {
            scale: args.f64("scale", 0.15),
            budget,
            seeds: (0..args.usize("seeds", 3) as u64).collect(),
            kb_size: args.usize("kb", 64),
        }
    }

    /// An engine configuration for one seeded run.
    pub fn engine_config(&self, seed: u64) -> EngineConfig {
        EngineConfig {
            budget: self.budget,
            seed,
            ..Default::default()
        }
    }
}

/// Builds the offline knowledge base (synthetic grid + 30 real-like) and
/// trains the Random-Forest meta-model the engine uses online.
pub fn build_metamodel(kb_size: usize) -> (KnowledgeBase, MetaModel) {
    let mut datasets = synthetic_kb(kb_size);
    datasets.extend(reallike_kb());
    let kb = KnowledgeBase::build(&datasets, &[5, 10, 15, 20], 60);
    let meta =
        MetaModel::train(&kb, MetaClassifierKind::RandomForest, 7).expect("meta-model training");
    (kb, meta)
}

/// Runs all four Table 3 methods on one dataset, averaging MSEs over the
/// seeds, and returns the comparison row.
pub fn compare_on_dataset(
    ds: &BenchmarkDataset,
    settings: &RunSettings,
    meta: &MetaModel,
) -> ComparisonRow {
    let mut ff = Vec::new();
    let mut rs = Vec::new();
    let mut nb = Vec::new();
    let mut cons = Vec::new();
    let mut best_models: Vec<String> = Vec::new();
    for &seed in &settings.seeds {
        let clients = ds.generate_federation(seed, settings.scale);
        let cfg = settings.engine_config(seed);

        let r = FedForecaster::new(cfg.clone(), meta)
            .run(&clients)
            .expect("engine run");
        best_models.push(r.best_algorithm.name().to_string());
        ff.push(r.test_mse);

        rs.push(
            RandomSearch::new(cfg.clone())
                .run(&clients)
                .expect("random search")
                .test_mse,
        );

        nb.push(
            run_federated_nbeats(&clients, cfg.budget, 40, false, seed)
                .expect("federated nbeats")
                .test_mse,
        );
        if let Some(series) = ds.generate_consolidated(seed, settings.scale) {
            cons.push(
                run_consolidated_nbeats(&series, cfg.budget, false, seed)
                    .expect("consolidated nbeats")
                    .test_mse,
            );
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Majority-vote best model across seeds.
    best_models.sort();
    let best_model = best_models
        .chunk_by(|a, b| a == b)
        .max_by_key(|c| c.len())
        .map(|c| c[0].clone())
        .unwrap_or_default();
    ComparisonRow {
        dataset: ds.name.to_string(),
        len: ds.len,
        clients: ds.clients,
        nbeats_cons: if cons.is_empty() {
            None
        } else {
            Some(avg(&cons))
        },
        fedforecaster: avg(&ff),
        random_search: avg(&rs),
        nbeats: avg(&nb),
        best_model,
    }
}
