//! **Ablation study** (DESIGN.md §5): isolates the engine's design choices —
//! meta-model warm start, feature engineering, and the recommendation
//! count K — on a representative dataset.
//!
//! ```text
//! cargo run -p ff-bench --release --bin ablations -- \
//!     [--scale 0.15] [--iters 10] [--seeds 2] [--kb 48] [--dataset 2]
//! ```

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_bench::{build_metamodel, Args, RunSettings};
use ff_metalearn::metamodel::MetaModel;

fn run_variant(
    name: &str,
    make_cfg: impl Fn(u64) -> EngineConfig,
    meta: &MetaModel,
    ds: &ff_datasets::BenchmarkDataset,
    settings: &RunSettings,
) {
    let mut valid = 0.0;
    let mut test = 0.0;
    let mut first_eval = 0.0;
    let mut first_good = 0.0;
    for &seed in &settings.seeds {
        let clients = ds.generate_federation(seed, settings.scale);
        let r = FedForecaster::new(make_cfg(seed), meta)
            .run(&clients)
            .expect("engine");
        valid += r.best_valid_loss;
        test += r.test_mse;
        // Warm-start quality: the very first evaluation's loss relative to
        // the final best (1.0 = the first config was already optimal).
        first_eval += r.loss_history[0] / r.best_valid_loss.max(1e-12);
        // Evaluations needed to get within 1% of the final best.
        let target = r.best_valid_loss * 1.01;
        first_good += r
            .loss_history
            .iter()
            .position(|&l| l <= target)
            .map(|p| p + 1)
            .unwrap_or(r.loss_history.len()) as f64;
    }
    let k = settings.seeds.len() as f64;
    println!(
        "{:<32} {:>14.5} {:>12.5} {:>12.2} {:>14.1}",
        name,
        valid / k,
        test / k,
        first_eval / k,
        first_good / k
    );
}

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let datasets = ff_datasets::benchmark_datasets();
    let indices: Vec<usize> = if args.has("dataset") {
        vec![args.usize("dataset", 2).min(11)]
    } else {
        vec![2, 8, 10] // births (seasonal), AAPL (random walk), tech ETF
    };
    let (_, meta) = build_metamodel(settings.kb_size.min(64));

    for idx in indices {
        let ds = &datasets[idx];
        println!(
            "\nAblations on {} ({} clients, budget {:?}, {} seed(s))\n",
            ds.name,
            ds.clients,
            settings.budget,
            settings.seeds.len()
        );
        println!(
            "{:<32} {:>14} {:>12} {:>12} {:>14}",
            "variant", "valid loss", "test MSE", "1st/best", "evals to 1%"
        );

        let base = |seed: u64| settings.engine_config(seed);
        run_variant("full engine (K=3)", base, &meta, ds, &settings);
        run_variant(
            "no warm start (cold BO, all 6)",
            |seed| EngineConfig {
                disable_warm_start: true,
                ..base(seed)
            },
            &meta,
            ds,
            &settings,
        );
        run_variant(
            "no feature engineering",
            |seed| EngineConfig {
                disable_feature_engineering: true,
                ..base(seed)
            },
            &meta,
            ds,
            &settings,
        );
        run_variant(
            "K = 1",
            |seed| EngineConfig {
                top_k: 1,
                ..base(seed)
            },
            &meta,
            ds,
            &settings,
        );
        run_variant(
            "K = 6 (all algorithms)",
            |seed| EngineConfig {
                top_k: 6,
                ..base(seed)
            },
            &meta,
            ds,
            &settings,
        );
    }
    println!("\nReads: '1st/best' near 1.00 means the warm start's first configuration");
    println!("was already near-optimal; 'evals to 1%' is the search cost to converge.");
    println!("Feature engineering matters most on seasonal/calendar-driven datasets.");
}
