//! **Experiment E2 — Table 2**: prints the implemented search space of
//! forecasting algorithms and verifies that sampled configurations respect
//! every published range by drawing and checking a large sample.
//!
//! ```text
//! cargo run -p ff-bench --release --bin table2_search_space -- [--samples 2000]
//! ```

use fedforecaster::search_space::{algorithm_of, table2_space, to_hyperparams};
use ff_bayesopt::space::ParamSpec;
use ff_bench::Args;
use ff_models::zoo::AlgorithmKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n_samples = args.usize("samples", 2000);
    let space = table2_space(&AlgorithmKind::all());

    println!("Table 2: Search Space for Forecasting Algorithms in FedForecaster\n");
    println!("{:<20} {:<22} Range / options", "Parameter", "Type");
    for (name, spec) in space.params() {
        let (ty, range) = match spec {
            ParamSpec::Continuous { lo, hi } => ("continuous", format!("[{lo}, {hi}]")),
            ParamSpec::LogContinuous { lo, hi } => ("log-continuous", format!("[{lo:e}, {hi}]")),
            ParamSpec::Integer { lo, hi } => ("integer", format!("[{lo}, {hi}]")),
            ParamSpec::Categorical { options } => ("categorical", format!("{options:?}")),
        };
        println!("{:<20} {:<22} {}", name, ty, range);
    }
    println!("\nEncoded dimension: {}", space.encoded_dim());

    // Verify ranges over a large sample and count per-algorithm coverage.
    let mut rng = StdRng::seed_from_u64(0);
    let mut counts = vec![0usize; AlgorithmKind::all().len()];
    for _ in 0..n_samples {
        let cfg = space.sample(&mut rng);
        let algo = algorithm_of(&cfg).expect("algorithm present");
        counts[algo.index()] += 1;
        let hp = to_hyperparams(&cfg);
        assert!((5..=20).contains(&hp.n_estimators));
        assert!((2..=10).contains(&hp.max_depth));
        assert!((0.01..=1.0).contains(&hp.learning_rate));
        assert!((0.8..=10.0).contains(&hp.reg_lambda));
        assert!((0.1..=1.0).contains(&hp.subsample));
        assert!(hp.alpha >= 1e-5 && hp.alpha <= 10.0);
        assert!((1.0..=10.0).contains(&hp.c));
        let z = space.encode(&cfg);
        assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
    }
    println!("\nSampled {n_samples} configurations; all Table 2 ranges respected.");
    println!("Per-algorithm sample counts (uniform categorical expected):");
    for (kind, c) in AlgorithmKind::all().into_iter().zip(counts) {
        println!("  {:<20} {}", kind.name(), c);
    }
}
