//! **Experiment E1 — Table 1**: demonstrates the meta-feature catalogue —
//! per-client extraction and every server-side aggregation method — on a
//! benchmark federation, printing the full named global vector.
//!
//! ```text
//! cargo run -p ff-bench --release --bin table1_metafeatures -- [--dataset 2] [--scale 0.15]
//! ```

use ff_bench::Args;
use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use std::time::Instant;

/// A named per-client meta-feature accessor (for the demonstration table).
type FeatureAccessor = (&'static str, fn(&ClientMetaFeatures) -> f64);

fn main() {
    let args = Args::parse();
    let idx = args.usize("dataset", 2).min(11);
    let scale = args.f64("scale", 0.15);
    let ds = &ff_datasets::benchmark_datasets()[idx];
    println!(
        "Table 1 demonstration on {} ({} clients, scale {scale})\n",
        ds.name, ds.clients
    );

    let clients = ds.generate_federation(0, scale);
    let t0 = Instant::now();
    let metas: Vec<ClientMetaFeatures> = clients.iter().map(ClientMetaFeatures::extract).collect();
    let per_client = t0.elapsed().as_secs_f64() / clients.len() as f64;

    println!(
        "Per-client extraction: {:.3}s/client (paper: 2.74s/client on 1 vCPU)\n",
        per_client
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "per-client feature", "client 0", "client 1", "last"
    );
    let rows: Vec<FeatureAccessor> = vec![
        ("n_instances", |m| m.n_instances),
        ("missing_fraction", |m| m.missing_fraction),
        ("adf_statistic", |m| m.adf_statistic),
        ("adf_statistic_diff1", |m| m.adf_statistic_diff1),
        ("n_significant_lags", |m| m.n_significant_lags),
        ("insignificant_gap", |m| m.insignificant_gap),
        ("n_seasonal_components", |m| m.n_seasonal_components),
        ("dominant_period", |m| m.dominant_period),
        ("skewness", |m| m.skewness),
        ("kurtosis", |m| m.kurtosis),
        ("fractal_dimension", |m| m.fractal_dimension),
    ];
    let last = metas.len() - 1;
    for (name, f) in rows {
        println!(
            "{:<28} {:>12.4} {:>12.4} {:>12.4}",
            name,
            f(&metas[0]),
            f(&metas[1.min(last)]),
            f(&metas[last])
        );
    }

    let global = GlobalMetaFeatures::aggregate(&metas);
    println!(
        "\nAggregated global vector ({} dims):",
        global.values().len()
    );
    for (name, value) in GlobalMetaFeatures::feature_names()
        .iter()
        .zip(global.values())
    {
        println!("  {:<26} {:>14.6}", name, value);
    }
}
