//! **Bench guard** — CI regression gate over the committed `BENCH_pr*.json`
//! trajectory. Files are grouped by their `"bench"` name and ordered by PR
//! number; within each group the latest file is compared against its
//! predecessor on every throughput key (a numeric key whose name contains
//! `rounds_per_s` or `forecasts_per_s` — higher is better). A drop larger
//! than the threshold fails the run.
//!
//! ```text
//! cargo run -p ff-bench --release --bin bench_guard -- \
//!     [--dir .] [--threshold 0.25]
//! ```
//!
//! Exit status: 0 when no guarded key regressed (including the vacuous
//! case of a bench name with a single file), 1 on any regression or
//! unreadable file.

use ff_bench::Args;
use std::collections::BTreeMap;

/// A parsed JSON value — just enough structure to walk benchmark files.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Recursive-descent JSON parser (std-only; enough for our own files).
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.i, self.s[self.i] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .s
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => out.push(b as char),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }
}

/// Whether a key names a guarded throughput metric (higher is better).
fn is_throughput_key(key: &str) -> bool {
    key.contains("rounds_per_s") || key.contains("forecasts_per_s") || key.contains("records_per_s")
}

/// Collects `(path, value)` pairs for every guarded key in the document.
/// Paths include array indices (`configs[2].par_rounds_per_s`) so the
/// same logical measurement aligns across files.
fn throughput_keys(v: &Json, path: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Obj(fields) => {
            for (k, val) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                if let Json::Num(n) = val {
                    if is_throughput_key(k) {
                        out.push((sub.clone(), *n));
                    }
                }
                throughput_keys(val, &sub, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                throughput_keys(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// The `"bench"` name of a parsed report, if present.
fn bench_name(v: &Json) -> Option<String> {
    if let Json::Obj(fields) = v {
        for (k, val) in fields {
            if k == "bench" {
                if let Json::Str(s) = val {
                    return Some(s.clone());
                }
            }
        }
    }
    None
}

/// One regression found between consecutive files of a bench group.
#[derive(Debug)]
struct Regression {
    bench: String,
    key: String,
    prev: f64,
    latest: f64,
}

/// Compares the two newest files of every bench group; returns the
/// regressions beyond `threshold` (a fraction, e.g. 0.25 for 25%).
fn check(files: &[(u64, String, Json)], threshold: f64) -> Vec<Regression> {
    let mut groups: BTreeMap<String, Vec<&(u64, String, Json)>> = BTreeMap::new();
    for f in files {
        if let Some(name) = bench_name(&f.2) {
            groups.entry(name).or_default().push(f);
        }
    }
    let mut regressions = Vec::new();
    for (bench, mut group) in groups {
        group.sort_by_key(|f| f.0);
        if group.len() < 2 {
            continue;
        }
        let (prev, latest) = (group[group.len() - 2], group[group.len() - 1]);
        let mut prev_keys = Vec::new();
        let mut latest_keys = Vec::new();
        throughput_keys(&prev.2, "", &mut prev_keys);
        throughput_keys(&latest.2, "", &mut latest_keys);
        let prev_map: BTreeMap<&str, f64> =
            prev_keys.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (key, now) in &latest_keys {
            if let Some(&before) = prev_map.get(key.as_str()) {
                if before > 0.0 && *now < before * (1.0 - threshold) {
                    regressions.push(Regression {
                        bench: bench.clone(),
                        key: key.clone(),
                        prev: before,
                        latest: *now,
                    });
                }
            }
        }
    }
    regressions
}

/// Scans `dir` for `BENCH_pr<N>.json` files; returns `(pr, name, doc)`.
fn load_reports(dir: &str) -> Result<Vec<(u64, String, Json)>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir}: {e}"))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        let pr = match name
            .strip_prefix("BENCH_pr")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            Some(pr) => pr,
            None => continue,
        };
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        let doc = Parser::parse(&text).map_err(|e| format!("{name}: {e}"))?;
        out.push((pr, name, doc));
    }
    out.sort_by_key(|f| f.0);
    Ok(out)
}

fn main() {
    let args = Args::parse();
    let dir = args.string("dir", ".");
    let threshold = args.f64("threshold", 0.25);
    let files = match load_reports(&dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            std::process::exit(1);
        }
    };
    if files.is_empty() {
        println!("bench_guard: no BENCH_pr*.json files under {dir}; nothing to check");
        return;
    }
    for (pr, name, doc) in &files {
        let mut keys = Vec::new();
        throughput_keys(doc, "", &mut keys);
        println!(
            "  pr{pr}: {name} (bench \"{}\", {} guarded keys)",
            bench_name(doc).unwrap_or_else(|| "?".into()),
            keys.len()
        );
    }
    let regressions = check(&files, threshold);
    if regressions.is_empty() {
        println!(
            "bench_guard: OK — no throughput regression beyond {:.0}% across {} files",
            threshold * 100.0,
            files.len()
        );
        return;
    }
    for r in &regressions {
        eprintln!(
            "bench_guard: REGRESSION in {}: {} fell {:.1}% ({:.2} -> {:.2})",
            r.bench,
            r.key,
            (1.0 - r.latest / r.prev) * 100.0,
            r.prev,
            r.latest
        );
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Parser::parse(text).unwrap()
    }

    #[test]
    fn parser_round_trips_bench_shapes() {
        let v = doc(r#"{"bench": "fleet_round", "configs": [
                {"cohort": 10, "par_rounds_per_s": 1200.5},
                {"cohort": 100, "par_rounds_per_s": 300.0}
            ], "note": "a\nb", "flag": true, "missing": null}"#);
        let mut keys = Vec::new();
        throughput_keys(&v, "", &mut keys);
        assert_eq!(
            keys,
            vec![
                ("configs[0].par_rounds_per_s".to_string(), 1200.5),
                ("configs[1].par_rounds_per_s".to_string(), 300.0),
            ]
        );
        assert_eq!(bench_name(&v).as_deref(), Some("fleet_round"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Parser::parse("{\"a\": }").is_err());
        assert!(Parser::parse("[1, 2").is_err());
        assert!(Parser::parse("{} trailing").is_err());
        assert!(Parser::parse("\"unterminated").is_err());
    }

    #[test]
    fn single_file_groups_are_vacuously_ok() {
        let files = vec![(
            6,
            "BENCH_pr6.json".to_string(),
            doc(r#"{"bench": "fleet_round", "rounds_per_s": 100.0}"#),
        )];
        assert!(check(&files, 0.25).is_empty());
    }

    #[test]
    fn regression_beyond_threshold_is_flagged() {
        let files = vec![
            (
                6,
                "BENCH_pr6.json".to_string(),
                doc(r#"{"bench": "fleet_round", "rounds_per_s": 100.0, "forecasts_per_s": 50.0}"#),
            ),
            (
                8,
                "BENCH_pr8.json".to_string(),
                doc(r#"{"bench": "fleet_round", "rounds_per_s": 70.0, "forecasts_per_s": 49.0}"#),
            ),
        ];
        // 30% drop on rounds_per_s fails at a 25% threshold; the 2% drop
        // on forecasts_per_s does not.
        let regs = check(&files, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "rounds_per_s");
        // At a looser threshold both pass.
        assert!(check(&files, 0.35).is_empty());
    }

    #[test]
    fn comparison_uses_the_two_newest_files_per_group() {
        let files = vec![
            (
                3,
                "BENCH_pr3.json".to_string(),
                doc(r#"{"bench": "x", "rounds_per_s": 1000.0}"#),
            ),
            (
                6,
                "BENCH_pr6.json".to_string(),
                doc(r#"{"bench": "x", "rounds_per_s": 90.0}"#),
            ),
            (
                8,
                "BENCH_pr8.json".to_string(),
                doc(r#"{"bench": "x", "rounds_per_s": 89.0}"#),
            ),
            (
                7,
                "BENCH_pr7.json".to_string(),
                doc(r#"{"bench": "other", "forecasts_per_s": 10.0}"#),
            ),
        ];
        // pr8 vs pr6 is a ~1% drop — fine; the old pr3 value is history,
        // not the baseline.
        assert!(check(&files, 0.25).is_empty());
    }

    #[test]
    fn wal_records_per_s_is_guarded() {
        let files = vec![
            (
                9,
                "BENCH_pr9.json".to_string(),
                doc(r#"{"bench": "checkpoint_overhead", "overhead_pct": 1.0,
                        "wal": {"records_per_s": 500000.0, "fsync_append_us": 150.0}}"#),
            ),
            (
                10,
                "BENCH_pr10.json".to_string(),
                doc(r#"{"bench": "checkpoint_overhead", "overhead_pct": 4.9,
                        "wal": {"records_per_s": 300000.0, "fsync_append_us": 900.0}}"#),
            ),
        ];
        // The 40% drop in WAL append throughput is flagged; overhead_pct
        // and the disk-bound fsync latency are not throughput keys.
        let regs = check(&files, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "wal.records_per_s");
    }

    #[test]
    fn structurally_missing_keys_are_skipped() {
        let files = vec![
            (
                6,
                "a".to_string(),
                doc(
                    r#"{"bench": "x", "configs": [{"rounds_per_s": 100.0}, {"rounds_per_s": 10.0}]}"#,
                ),
            ),
            (
                8,
                "b".to_string(),
                doc(r#"{"bench": "x", "configs": [{"rounds_per_s": 99.0}]}"#),
            ),
        ];
        assert!(check(&files, 0.25).is_empty());
    }
}
