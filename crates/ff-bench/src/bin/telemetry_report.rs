//! **Telemetry report** — exercises the `ff-trace` observability stack
//! end to end: one traced engine run, the human summary on stdout, and a
//! machine-readable `BENCH_pr3.json` with phase timings, traffic, and
//! trial latencies. `--spans <path>` additionally dumps the raw span /
//! metric stream as JSON lines.
//!
//! ```text
//! cargo run -p ff-bench --release --bin telemetry_report -- \
//!     [--scale 0.15] [--iters 8] [--kb 48] [--out BENCH_pr3.json] [--spans trace.jsonl]
//! ```

use fedforecaster::{FedForecaster, TraceConfig};
use ff_bench::{build_metamodel, Args, RunSettings};
use ff_trace::{push_json_f64, push_json_str, Histogram};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let (_, meta) = build_metamodel(settings.kb_size.min(48));
    let ds = &ff_datasets::benchmark_datasets()[args.usize("dataset", 2).min(11)];
    let clients = ds.generate_federation(0, settings.scale);
    let mut cfg = settings.engine_config(0);
    cfg.trace = TraceConfig::enabled();

    let r = FedForecaster::new(cfg, &meta)
        .run(&clients)
        .expect("engine");
    let telemetry = r.telemetry.as_ref().expect("tracing was enabled");

    println!(
        "FedForecaster on {} ({} clients, {} evaluations, test MSE {:.4})\n",
        ds.name,
        clients.len(),
        r.evaluations,
        r.test_mse
    );
    print!("{}", telemetry.render_summary());

    if args.has("spans") {
        let path = args.string("spans", "trace.jsonl");
        std::fs::write(&path, telemetry.to_json_lines()).expect("write span stream");
        println!("\nspan stream: {path}");
    }

    // Machine-readable rollup for CI trend tracking.
    let trace = &telemetry.trace;
    let mut json = String::from("{\n");
    let _ = write!(json, "  \"bench\": \"telemetry_report\",\n  \"dataset\": ");
    push_json_str(&mut json, ds.name);
    let _ = writeln!(
        json,
        ",\n  \"clients\": {},\n  \"evaluations\": {},",
        clients.len(),
        r.evaluations
    );
    json.push_str("  \"test_mse\": ");
    push_json_f64(&mut json, r.test_mse);
    json.push_str(",\n  \"phases\": [");
    for (i, (name, us, calls)) in trace.phase_totals().iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\n    {{\"name\": ");
        push_json_str(&mut json, name);
        let _ = write!(json, ", \"us\": {us}, \"calls\": {calls}}}");
    }
    json.push_str("\n  ],\n");
    let trial_durs = trace.durations_us("trial");
    let mut h = Histogram::new();
    for d in &trial_durs {
        h.record(*d as f64);
    }
    json.push_str("  \"trials\": {\"count\": ");
    let _ = write!(json, "{}", trial_durs.len());
    json.push_str(", \"p50_us\": ");
    push_json_f64(&mut json, h.percentile(0.50).unwrap_or(0.0));
    json.push_str(", \"p95_us\": ");
    push_json_f64(&mut json, h.percentile(0.95).unwrap_or(0.0));
    let _ = writeln!(
        json,
        "}},\n  \"bytes\": {{\"to_clients\": {}, \"to_server\": {}}},",
        r.bytes_to_clients, r.bytes_to_server
    );
    json.push_str("  \"counters\": {");
    let unlabeled: Vec<_> = trace
        .counters
        .iter()
        .filter(|(id, _)| id.label.is_none())
        .collect();
    for (i, (id, v)) in unlabeled.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        push_json_str(&mut json, id.name);
        let _ = write!(json, ": {v}");
    }
    json.push_str("},\n  \"per_client\": [");
    for (i, c) in telemetry.clients.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"id\": {}, \"bytes_to_client\": {}, \"bytes_to_server\": {}, \
             \"messages\": {}, \"dropouts\": {}, \"state\": ",
            c.client_id, c.bytes_to_client, c.bytes_to_server, c.messages, c.dropouts
        );
        push_json_str(&mut json, &c.state);
        json.push('}');
    }
    json.push_str("\n  ]\n}\n");

    let out = args.string("out", "BENCH_pr3.json");
    std::fs::write(&out, &json).expect("write report");
    println!("\nwrote {out}");
}
