//! **Telemetry report** — exercises the `ff-trace` observability stack
//! end to end: one traced engine run (profiler + flight recorder on),
//! the human summary on stdout, and two machine-readable reports:
//! `BENCH_pr3.json` with phase timings, traffic, and trial latencies,
//! and `BENCH_pr8.json` with live-observability overheads (scrape
//! latency, recorder commit cost vs the disabled path, profile build
//! time). `--spans <path>` additionally dumps the raw span / metric
//! stream as JSON lines; `--folded <path>` writes the folded-stack
//! (flamegraph-compatible) export.
//!
//! ```text
//! cargo run -p ff-bench --release --bin telemetry_report -- \
//!     [--scale 0.15] [--iters 8] [--kb 48] [--out BENCH_pr3.json] \
//!     [--obs-out BENCH_pr8.json] [--spans trace.jsonl] [--folded stacks.folded]
//! ```

use fedforecaster::{FedForecaster, TraceConfig};
use ff_bench::{build_metamodel, Args, RunSettings};
use ff_trace::{
    push_json_f64, push_json_str, FlightRecorder, Histogram, Profile, RecorderConfig, RoundFrame,
};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let (_, meta) = build_metamodel(settings.kb_size.min(48));
    let ds = &ff_datasets::benchmark_datasets()[args.usize("dataset", 2).min(11)];
    let clients = ds.generate_federation(0, settings.scale);
    let mut cfg = settings.engine_config(0);
    cfg.trace = TraceConfig::enabled()
        .with_profile()
        .with_recorder(RecorderConfig::default());

    let r = FedForecaster::new(cfg, &meta)
        .run(&clients)
        .expect("engine");
    let telemetry = r.telemetry.as_ref().expect("tracing was enabled");

    println!(
        "FedForecaster on {} ({} clients, {} evaluations, test MSE {:.4})\n",
        ds.name,
        clients.len(),
        r.evaluations,
        r.test_mse
    );
    print!("{}", telemetry.render_summary());
    println!(
        "\nflight recorder: {} frames retained, {} dumps",
        telemetry.recorder_frames.len(),
        telemetry.recorder_dumps.len()
    );

    if args.has("spans") {
        let path = args.string("spans", "trace.jsonl");
        std::fs::write(&path, telemetry.to_json_lines()).expect("write span stream");
        println!("span stream: {path}");
    }
    if args.has("folded") {
        let path = args.string("folded", "stacks.folded");
        std::fs::write(&path, telemetry.folded_stacks()).expect("write folded stacks");
        println!("folded stacks: {path}");
    }

    // Machine-readable rollup for CI trend tracking.
    let trace = &telemetry.trace;
    let mut json = String::from("{\n");
    let _ = write!(json, "  \"bench\": \"telemetry_report\",\n  \"dataset\": ");
    push_json_str(&mut json, ds.name);
    let _ = writeln!(
        json,
        ",\n  \"clients\": {},\n  \"evaluations\": {},",
        clients.len(),
        r.evaluations
    );
    json.push_str("  \"test_mse\": ");
    push_json_f64(&mut json, r.test_mse);
    json.push_str(",\n  \"phases\": [");
    for (i, p) in trace.phase_totals().iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\n    {{\"name\": ");
        push_json_str(&mut json, p.name);
        let _ = write!(
            json,
            ", \"us\": {}, \"calls\": {}, \"open\": {}}}",
            p.total_us, p.calls, p.open
        );
    }
    json.push_str("\n  ],\n");
    let trial_durs = trace.durations_us("trial");
    let mut h = Histogram::new();
    for d in &trial_durs {
        h.record(*d as f64);
    }
    json.push_str("  \"trials\": {\"count\": ");
    let _ = write!(json, "{}", trial_durs.len());
    json.push_str(", \"p50_us\": ");
    push_json_f64(&mut json, h.percentile(0.50).unwrap_or(0.0));
    json.push_str(", \"p95_us\": ");
    push_json_f64(&mut json, h.percentile(0.95).unwrap_or(0.0));
    let _ = writeln!(
        json,
        "}},\n  \"bytes\": {{\"to_clients\": {}, \"to_server\": {}}},",
        r.bytes_to_clients, r.bytes_to_server
    );
    json.push_str("  \"counters\": {");
    let unlabeled: Vec<_> = trace
        .counters
        .iter()
        .filter(|(id, _)| id.label.is_none())
        .collect();
    for (i, (id, v)) in unlabeled.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        push_json_str(&mut json, id.name);
        let _ = write!(json, ": {v}");
    }
    json.push_str("},\n  \"per_client\": [");
    for (i, c) in telemetry.clients.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"id\": {}, \"bytes_to_client\": {}, \"bytes_to_server\": {}, \
             \"messages\": {}, \"dropouts\": {}, \"state\": ",
            c.client_id, c.bytes_to_client, c.bytes_to_server, c.messages, c.dropouts
        );
        push_json_str(&mut json, &c.state);
        json.push('}');
    }
    json.push_str("\n  ]\n}\n");

    let out = args.string("out", "BENCH_pr3.json");
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");

    // ---------------------------------------------------------------
    // PR8: live-observability overhead measurements.
    // ---------------------------------------------------------------
    let obs = observability_report(telemetry);
    let obs_out = args.string("obs-out", "BENCH_pr8.json");
    std::fs::write(&obs_out, &obs).expect("write observability report");
    println!("wrote {obs_out}");
}

/// One synthetic flight-recorder frame for the commit-cost measurement.
fn synthetic_frame(round: u64) -> RoundFrame {
    RoundFrame {
        round,
        phase: "fleet.fit",
        cohort: 100,
        admitted: 98,
        accepted: 96,
        dropouts: vec![(3, "client 3 timed out".into())],
        rejected: vec![(7, "norm outlier".into())],
        counters: vec![("fleet.retries", 1)],
        ..RoundFrame::default()
    }
}

/// Measures scrape latency, recorder commit cost (enabled vs disabled),
/// and profile build time; renders the `BENCH_pr8.json` body.
fn observability_report(telemetry: &fedforecaster::report::RunTelemetry) -> String {
    // Scrape latency against a live exposition endpoint backed by a
    // tracer carrying a realistic metric load.
    let tracer = ff_trace::Tracer::enabled();
    {
        let _run = tracer.span("run");
        for i in 0..200u64 {
            let _s = tracer.span_labeled("trial", i);
            tracer.counter_add("fleet.rounds", 1);
            tracer.counter_add_labeled("fl.msg_bytes_to_server", i % 16, 4096);
            tracer.gauge_set("bo.incumbent_loss", 1.0 / (i + 1) as f64);
            tracer.record("lat", i as f64);
        }
    }
    let server = ff_trace::ExpoServer::start(tracer, ff_trace::ExpoConfig::default())
        .expect("bind exposition endpoint");
    let addr = server.addr();
    let mut scrape_us = Histogram::new();
    let scrapes = 20usize;
    for _ in 0..scrapes {
        let t0 = Instant::now();
        let body = scrape(&addr.to_string(), "/metrics");
        scrape_us.record(t0.elapsed().as_micros() as f64);
        assert!(
            body.contains("ff_fleet_rounds_total"),
            "scrape missing data"
        );
    }
    drop(server);

    // Recorder commit cost: enabled ring vs the disabled branch.
    let commits = 10_000u64;
    let enabled = FlightRecorder::enabled(RecorderConfig::default());
    let t0 = Instant::now();
    for i in 0..commits {
        enabled.commit_with(|| synthetic_frame(i));
    }
    let enabled_ns = t0.elapsed().as_nanos() as f64 / commits as f64;
    let disabled = FlightRecorder::disabled();
    let t0 = Instant::now();
    for i in 0..commits {
        disabled.commit_with(|| synthetic_frame(i));
    }
    let disabled_ns = t0.elapsed().as_nanos() as f64 / commits as f64;
    let commit_rounds_per_s = 1e9 / enabled_ns.max(1e-9);

    // Profile build time over the real run's snapshot.
    let reps = 50u32;
    let t0 = Instant::now();
    let mut rows = 0usize;
    for _ in 0..reps {
        rows = Profile::build(&telemetry.trace).rows.len();
    }
    let profile_build_us = t0.elapsed().as_micros() as f64 / reps as f64;

    let mut json = String::from("{\n  \"bench\": \"observability\",\n");
    let _ = writeln!(json, "  \"spans\": {},", telemetry.trace.spans.len());
    let _ = write!(json, "  \"scrape\": {{\"samples\": {scrapes}, \"p50_us\": ");
    push_json_f64(&mut json, scrape_us.percentile(0.50).unwrap_or(0.0));
    json.push_str(", \"p95_us\": ");
    push_json_f64(&mut json, scrape_us.percentile(0.95).unwrap_or(0.0));
    let _ = write!(
        json,
        "}},\n  \"recorder\": {{\"commits\": {commits}, \"enabled_ns_per_commit\": "
    );
    push_json_f64(&mut json, enabled_ns);
    json.push_str(", \"disabled_ns_per_commit\": ");
    push_json_f64(&mut json, disabled_ns);
    json.push_str(", \"commit_rounds_per_s\": ");
    push_json_f64(&mut json, commit_rounds_per_s);
    let _ = write!(
        json,
        "}},\n  \"profile\": {{\"rows\": {rows}, \"build_us\": "
    );
    push_json_f64(&mut json, profile_build_us);
    let _ = writeln!(
        json,
        "}},\n  \"frames\": {},\n  \"dumps\": {}\n}}",
        telemetry.recorder_frames.len(),
        telemetry.recorder_dumps.len()
    );
    json
}

/// Minimal HTTP GET against the exposition endpoint; returns the body.
fn scrape(addr: &str, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    let _ = write!(s, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    match buf.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => buf,
    }
}
