//! **Exposition smoke test** — the CI step validating the live
//! observability path end to end: a chaos fleet with one known Byzantine
//! client runs fit rounds under a robust rule while an exposition
//! endpoint serves the tracer; the scrape must be well-formed Prometheus
//! text whose counters match the final in-process snapshot, `/healthz`
//! must report a live run, and the flight recorder must have captured
//! the quarantine in a forensic dump naming the attacker.
//!
//! ```text
//! cargo run -p ff-bench --release --bin expo_smoke -- \
//!     [--clients 400] [--rounds 6] [--dim 16]
//! ```
//!
//! Exit status: 0 on success; 1 with a diagnostic on any mismatch.

use ff_bench::Args;
use ff_fl::chaos::{AdversarialMode, ChaosClient};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::fleet::{FleetConfig, FleetRuntime};
use ff_fl::robust::AggregationStrategy;
use ff_fl::runtime::RoundPolicy;
use ff_trace::{sample_value, validate_exposition, ExpoConfig, ExpoServer};
use ff_trace::{FlightRecorder, RecorderConfig, Tracer};
use std::io::{Read as _, Write as _};

/// Honest client: constant unit parameters, one example.
struct Honest(usize);

impl FlClient for Honest {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![1.0; self.0],
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
        let center = params.first().copied().unwrap_or(0.0);
        EvalOutput {
            loss: (1.0 - center).abs(),
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
}

const BYZANTINE_ID: usize = 5;

fn fail(msg: &str) -> ! {
    eprintln!("expo_smoke: FAIL — {msg}");
    std::process::exit(1);
}

/// Minimal HTTP GET; returns (status line, body).
fn get(addr: &str, path: &str) -> (String, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    let _ = write!(s, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status = buf.lines().next().unwrap_or_default().to_string();
    let body = match buf.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    (status, body)
}

fn main() {
    let args = Args::parse();
    let n_clients = args.usize("clients", 400);
    let rounds = args.usize("rounds", 6);
    let dim = args.usize("dim", 16);

    // One persistent Byzantine client among honest peers; full
    // participation so it is screened (and eventually quarantined) every
    // round.
    let clients: Vec<Box<dyn FlClient>> = (0..n_clients)
        .map(|id| {
            if id == BYZANTINE_ID {
                Box::new(ChaosClient::adversarial(
                    Box::new(Honest(dim)),
                    AdversarialMode::ScaleBy(1e9),
                    7,
                )) as Box<dyn FlClient>
            } else {
                Box::new(Honest(dim)) as Box<dyn FlClient>
            }
        })
        .collect();
    let fleet = FleetRuntime::new(
        clients,
        FleetConfig {
            fraction: 1.0,
            seed: 42,
            strategy: AggregationStrategy::CoordinateMedian,
            ..FleetConfig::default()
        },
    )
    .expect("fleet");

    let tracer = Tracer::enabled();
    fleet.set_tracer(tracer.clone());
    let recorder = FlightRecorder::enabled(RecorderConfig::default());
    fleet.set_recorder(recorder.clone());
    let server = ExpoServer::start(tracer.clone(), ExpoConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    println!("exposition endpoint: http://{addr}/metrics");

    let policy = RoundPolicy {
        deadline: None,
        min_responses: 1,
        retries: 0,
        backoff: std::time::Duration::ZERO,
    };
    for _ in 0..rounds {
        fleet
            .run_fit_round(vec![0.0; dim], ConfigMap::new(), &policy)
            .expect("fit round");
    }

    // 1. The scrape must be parseable Prometheus text format.
    let (status, body) = get(&addr, "/metrics");
    if !status.contains("200") {
        fail(&format!("/metrics returned {status:?}"));
    }
    if let Err(e) = validate_exposition(&body) {
        fail(&format!("exposition format invalid: {e}"));
    }

    // 2. Scraped counters must match the final in-process snapshot.
    let snapshot = tracer.snapshot();
    for (name, metric) in [
        ("fleet.rounds", "ff_fleet_rounds_total"),
        ("fleet.updates_rejected", "ff_fleet_updates_rejected_total"),
        ("fleet.quarantines", "ff_fleet_quarantines_total"),
    ] {
        let expect = snapshot.counter(name) as f64;
        match sample_value(&body, metric) {
            Some(v) if v == expect => {}
            Some(v) => fail(&format!("{metric}: scraped {v}, snapshot has {expect}")),
            None => fail(&format!("{metric} missing from scrape")),
        }
    }
    if snapshot.counter("fleet.rounds") != rounds as u64 {
        fail(&format!(
            "fleet.rounds counter is {}, ran {rounds} rounds",
            snapshot.counter("fleet.rounds")
        ));
    }

    // 3. The liveness probe must report a live (recently active) run.
    let (status, health) = get(&addr, "/healthz");
    if !status.contains("200") || !health.starts_with("ok") {
        fail(&format!("/healthz: {status:?} body {health:?}"));
    }

    // 4. The robust rule must have screened the attacker, and the flight
    //    recorder must have dumped forensics naming it.
    if snapshot.counter("fleet.updates_rejected") == 0 {
        fail("Byzantine update was never rejected");
    }
    let dumps = recorder.dumps();
    if dumps.is_empty() {
        fail("no forensic dump despite guard rejections");
    }
    let named = dumps.iter().any(|d| {
        d.frames.iter().any(|f| {
            f.rejected.iter().any(|(id, _)| *id == BYZANTINE_ID as u64)
                || f.quarantined.contains(&(BYZANTINE_ID as u64))
        })
    });
    if !named {
        fail(&format!(
            "no dump names the Byzantine client {BYZANTINE_ID}"
        ));
    }
    for d in &dumps {
        println!(
            "dump: trigger={} round={} frames={}",
            d.trigger,
            d.round,
            d.frames.len()
        );
    }
    println!(
        "expo_smoke: OK — {} rounds, {} scrape bytes, {} dumps, client {BYZANTINE_ID} on record",
        rounds,
        body.len(),
        dumps.len()
    );
}
