//! **Experiment E3 — Table 3**: MSE comparison of FedForecaster, random
//! search, federated N-Beats, and N-Beats Cons. across the 12 evaluation
//! datasets, with average ranks and the §5.2 Wilcoxon signed-rank tests.
//!
//! ```text
//! cargo run -p ff-bench --release --bin table3_comparison -- \
//!     [--scale 0.15] [--iters 12 | --secs 300] [--seeds 3] [--kb 64] [--datasets 12]
//! ```

use fedforecaster::report::{render_table, summarize};
use ff_bench::{build_metamodel, compare_on_dataset, Args, RunSettings};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let n_datasets = args.usize("datasets", 12).min(12);

    eprintln!(
        "[table3] building knowledge base ({} synthetic + 30 real-like) and meta-model…",
        settings.kb_size
    );
    let t0 = Instant::now();
    let (kb, meta) = build_metamodel(settings.kb_size);
    eprintln!(
        "[table3] KB ready: {} records in {:.1}s",
        kb.len(),
        t0.elapsed().as_secs_f64()
    );

    let datasets = ff_datasets::benchmark_datasets();
    let mut rows = Vec::new();
    for ds in datasets.iter().take(n_datasets) {
        let t = Instant::now();
        let row = compare_on_dataset(ds, &settings, &meta);
        eprintln!(
            "[table3] {:<38} done in {:.1}s (FF {:.4} | RS {:.4} | NB {:.4})",
            ds.name,
            t.elapsed().as_secs_f64(),
            row.fedforecaster,
            row.random_search,
            row.nbeats
        );
        rows.push(row);
    }

    println!("\nTable 3: Performance Comparison (test MSE; averaged over {} seeds, scale {}, budget {:?})\n", settings.seeds.len(), settings.scale, settings.budget);
    println!("{}", render_table(&rows));

    let summary = summarize(&rows);
    println!(
        "Average rank: FedForecaster {:.2}  RandomSearch {:.2}  N-Beats {:.2}",
        summary.avg_ranks[0], summary.avg_ranks[1], summary.avg_ranks[2]
    );
    println!(
        "FedForecaster lowest-MSE datasets: {}/{}",
        summary.fedforecaster_wins,
        rows.len()
    );
    if let Some(w) = summary.wilcoxon_vs_random {
        println!(
            "Wilcoxon FedForecaster vs Random Search: W = {:.1}, p = {:.4} (paper: p = 0.034)",
            w.statistic, w.p_value
        );
    }
    if let Some(w) = summary.wilcoxon_vs_nbeats {
        println!(
            "Wilcoxon FedForecaster vs N-Beats:       W = {:.1}, p = {:.4} (paper: p = 0.003)",
            w.statistic, w.p_value
        );
    }
}
