//! **Pipeline-search benchmark** — flat algorithm portfolio vs composed
//! pipeline search at an equal trial budget, written to `BENCH_pr7.json`.
//!
//! Both arms run the same engine, meta-model, federation, seeds, and
//! iteration budget; the only difference is the search space: the flat arm
//! tunes Table 2 algorithms over engineered features, the pipeline arm
//! tunes structure × node params × algorithm × algorithm params (see
//! DESIGN.md §14).
//!
//! ```text
//! cargo run -p ff-bench --release --bin pipeline_search -- \
//!     [--smoke] [--scale 0.15] [--iters 16] [--seeds 2] [--kb 48] \
//!     [--datasets 0,2,6,7,8] [--out BENCH_pr7.json]
//! ```

use fedforecaster::prelude::*;
use fedforecaster::report::best_model_label;
use fedforecaster::FedForecaster;
use ff_bench::{build_metamodel, Args};
use ff_models::pipeline::PipelineId;
use ff_trace::{push_json_f64, push_json_str};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let scale = args.f64("scale", if smoke { 0.08 } else { 0.15 });
    // The joint space seeds |P|+|A|−1 warm starts, so budgets below ~12
    // trials leave the pipeline arm no guided iterations at all; the
    // default gives both arms 16 trials (equal budget, enough guidance).
    let iters = args.usize("iters", if smoke { 6 } else { 16 });
    let n_seeds = args.usize("seeds", if smoke { 1 } else { 2 });
    let kb = args.usize("kb", if smoke { 24 } else { 48 });
    let out_path = args.string("out", "BENCH_pr7.json");
    let dataset_arg = args.string("datasets", if smoke { "7,8" } else { "0,2,6,7,8" });
    let all = ff_datasets::benchmark_datasets();
    let picks: Vec<usize> = dataset_arg
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&i: &usize| i < all.len())
        .collect();
    assert!(
        picks.len() >= 2,
        "need at least two datasets for the comparison"
    );
    let (_, meta) = build_metamodel(kb);

    println!(
        "Pipeline search vs flat portfolio ({} trial(s), scale {scale}, {n_seeds} seed(s))\n",
        iters
    );
    println!(
        "{:<38} {:>14} {:>14} {:>9}  best pipeline",
        "dataset", "flat MSE", "pipeline MSE", "Δ%"
    );

    let mut json = String::from("{\n  \"bench\": \"pipeline_search\",\n");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"seeds\": {n_seeds},");
    json.push_str("  \"scale\": ");
    push_json_f64(&mut json, scale);
    json.push_str(",\n  \"datasets\": [\n");

    let mut wins = 0usize;
    for (k, &idx) in picks.iter().enumerate() {
        let ds = &all[idx];
        let mut flat_sum = 0.0;
        let mut pipe_sum = 0.0;
        let mut label = String::new();
        for seed in 0..n_seeds as u64 {
            let clients = ds.generate_federation(seed, scale);
            let flat_cfg = EngineConfig {
                budget: Budget::Iterations(iters),
                seed,
                ..Default::default()
            };
            let pipe_cfg = EngineConfig {
                pipelines: Some(PipelineId::builtin().to_vec()),
                ..flat_cfg.clone()
            };
            flat_sum += FedForecaster::new(flat_cfg, &meta)
                .run(&clients)
                .expect("flat run")
                .test_mse;
            let r = FedForecaster::new(pipe_cfg, &meta)
                .run(&clients)
                .expect("pipeline run");
            pipe_sum += r.test_mse;
            label = best_model_label(&r);
        }
        let flat = flat_sum / n_seeds as f64;
        let pipe = pipe_sum / n_seeds as f64;
        let delta = 100.0 * (flat - pipe) / flat.max(1e-30);
        if pipe < flat {
            wins += 1;
        }
        println!(
            "{:<38} {flat:>14.6} {pipe:>14.6} {delta:>+8.1}%  {label}",
            ds.name
        );
        json.push_str("    {\"name\": ");
        push_json_str(&mut json, ds.name);
        json.push_str(", \"flat_mse\": ");
        push_json_f64(&mut json, flat);
        json.push_str(", \"pipeline_mse\": ");
        push_json_f64(&mut json, pipe);
        json.push_str(", \"improvement_pct\": ");
        push_json_f64(&mut json, delta);
        json.push_str(", \"pipeline_wins\": ");
        json.push_str(if pipe < flat { "true" } else { "false" });
        json.push_str(", \"best_pipeline\": ");
        push_json_str(&mut json, &label);
        json.push('}');
        json.push_str(if k + 1 < picks.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"pipeline_wins\": {wins},");
    let _ = writeln!(json, "  \"datasets_total\": {}", picks.len());
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!(
        "\npipeline search wins on {wins}/{} datasets; wrote {out_path}",
        picks.len()
    );

    if args.has("assert-wins") {
        let need = args.usize("assert-wins", 2);
        if wins < need {
            eprintln!(
                "pipeline search won only {wins}/{} datasets (need {need})",
                picks.len()
            );
            std::process::exit(1);
        }
    }
}
