//! **Parallel kernels benchmark** — sequential vs parallel wall-clock for
//! the ff-par hot loops (matmul, GP fit, random-forest fit), written to
//! `BENCH_pr5.json`. Because every kernel is bit-identical across thread
//! counts, the speedup column is the *entire* observable effect of
//! `FF_THREADS`; the `host_cpus` field records how much hardware the run
//! actually had (speedup ≈ 1.0 is expected on a single-core container).
//!
//! ```text
//! cargo run -p ff-bench --release --bin par_kernels -- \
//!     [--threads 4] [--reps 3] [--out BENCH_pr5.json]
//! ```
//!
//! `--fingerprint <path>` instead runs one telemetry-off engine run under
//! the ambient `FF_THREADS` and writes the bitwise fingerprint of its
//! output; CI diffs this file between `FF_THREADS=1` and `FF_THREADS=4` to
//! pin the engine-level determinism contract.

use fedforecaster::engine::FedForecaster;
use fedforecaster::prelude::*;
use ff_bayesopt::gp::GaussianProcess;
use ff_bench::{build_metamodel, Args};
use ff_linalg::Matrix;
use ff_models::forest::RandomForestRegressor;
use ff_models::Regressor;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_trace::push_json_f64;
use std::fmt::Write as _;
use std::time::Instant;

type Kernel<'a> = (&'a str, Box<dyn Fn()>);

/// A cheap deterministic value stream for benchmark inputs.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }
}

/// Median-of-`reps` wall-clock of `f` under `threads` workers.
fn time_under(threads: usize, reps: usize, f: &dyn Fn()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            ff_par::with_threads(threads, || {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn fingerprint(path: &str) {
    let (_, meta) = build_metamodel(8);
    let clients = generate(
        &SynthesisSpec {
            n: 900,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.5,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        11,
    )
    .split_clients(3);
    let cfg = EngineConfig {
        budget: Budget::Iterations(5),
        seed: 7,
        ..Default::default()
    };
    let r = FedForecaster::new(cfg, &meta)
        .run(&clients)
        .expect("engine");
    let mut out = String::new();
    let _ = writeln!(out, "best_algorithm {:?}", r.best_algorithm);
    let _ = writeln!(out, "best_config {:?}", r.best_config);
    let _ = writeln!(out, "best_valid_loss {:016x}", r.best_valid_loss.to_bits());
    let _ = writeln!(out, "test_mse {:016x}", r.test_mse.to_bits());
    let _ = writeln!(out, "global_model {:?}", r.global_model);
    let _ = writeln!(out, "evaluations {}", r.evaluations);
    for (i, l) in r.loss_history.iter().enumerate() {
        let _ = writeln!(out, "loss[{i}] {:016x}", l.to_bits());
    }
    let _ = writeln!(out, "recommended {:?}", r.recommended);
    let _ = writeln!(out, "bytes {} {}", r.bytes_to_clients, r.bytes_to_server);
    std::fs::write(path, &out).expect("write fingerprint");
    println!(
        "fingerprint ({} workers): {path}",
        ff_par::effective_threads()
    );
}

fn main() {
    let args = Args::parse();
    if args.has("fingerprint") {
        fingerprint(&args.string("fingerprint", "par_fingerprint.txt"));
        return;
    }
    let threads = args.usize("threads", 4);
    let reps = args.usize("reps", 3);
    let out_path = args.string("out", "BENCH_pr5.json");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Kernel 1: 512×512 dense matmul (row-parallel).
    let mut next = lcg(1);
    let a = Matrix::from_fn(512, 512, |_, _| next());
    let b = Matrix::from_fn(512, 512, |_, _| next());
    let matmul = move || {
        let c = a.matmul(&b).unwrap();
        assert!(c.get(0, 0).is_finite());
    };

    // Kernel 2: GP fit at n = 256 (parallel kernel-matrix fill + blocked
    // Cholesky panels).
    let mut next = lcg(2);
    let xs: Vec<Vec<f64>> = (0..256)
        .map(|_| vec![next(), next(), next(), next()])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() + x[1] * x[2] - x[3]).collect();
    let gp_fit = move || {
        let gp = GaussianProcess::fit_auto(1e-6, &xs, &ys).unwrap();
        assert!(gp.log_marginal_likelihood().is_finite());
    };

    // Kernel 3: random forest, 100 trees (per-tree parallel fits).
    let mut next = lcg(3);
    let x = Matrix::from_fn(400, 8, |_, _| next());
    let y: Vec<f64> = (0..400)
        .map(|i| x.get(i, 0) * 2.0 - x.get(i, 4) + x.get(i, 7).abs())
        .collect();
    let forest = move || {
        let mut f = RandomForestRegressor::new(100, 8, 7);
        f.fit(&x, &y).unwrap();
    };

    let kernels: Vec<Kernel> = vec![
        ("matmul_512", Box::new(matmul)),
        ("gp_fit_256", Box::new(gp_fit)),
        ("forest_100_trees", Box::new(forest)),
    ];

    let mut json = String::from("{\n  \"bench\": \"par_kernels\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"kernels\": [\n");
    for (i, (name, f)) in kernels.iter().enumerate() {
        let seq = time_under(1, reps, f.as_ref());
        let par = time_under(threads, reps, f.as_ref());
        let speedup = seq / par.max(1e-12);
        println!("{name:18} seq {seq:.4}s  par({threads}) {par:.4}s  speedup {speedup:.2}x");
        let _ = write!(json, "    {{\"name\": \"{name}\", \"seq_s\": ");
        push_json_f64(&mut json, seq);
        json.push_str(", \"par_s\": ");
        push_json_f64(&mut json, par);
        json.push_str(", \"speedup\": ");
        push_json_f64(&mut json, speedup);
        json.push('}');
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path} (host_cpus = {host_cpus})");
}
