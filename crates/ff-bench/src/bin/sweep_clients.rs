//! **Experiment E5 — client-count sweep** (§5.2 "Additional experiments
//! were carried out on possible client counts"): FedForecaster vs baselines
//! at 5/10/15/20 clients on representative datasets.
//!
//! ```text
//! cargo run -p ff-bench --release --bin sweep_clients -- \
//!     [--scale 0.2] [--iters 10] [--seeds 2] [--kb 48]
//! ```

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_bench::{build_metamodel, Args, RunSettings};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let (_, meta) = build_metamodel(settings.kb_size.min(48));

    // Three regimes: seasonal, trending, random walk.
    let sources: Vec<(&str, TimeSeries)> = vec![
        (
            "seasonal",
            generate(
                &SynthesisSpec {
                    n: 12_000,
                    seasons: vec![SeasonSpec {
                        period: 24.0,
                        amplitude: 4.0,
                    }],
                    snr: Some(15.0),
                    ..Default::default()
                },
                1,
            ),
        ),
        (
            "trending",
            generate(
                &SynthesisSpec {
                    n: 12_000,
                    trend: TrendSpec::Linear(0.01),
                    snr: Some(10.0),
                    ..Default::default()
                },
                2,
            ),
        ),
        (
            "random_walk",
            generate(
                &SynthesisSpec {
                    n: 12_000,
                    trend: TrendSpec::RandomWalk(0.5),
                    snr: None,
                    ..Default::default()
                },
                3,
            ),
        ),
    ];

    println!(
        "Client-count sweep (test MSE, budget {:?}, {} seed(s))\n",
        settings.budget,
        settings.seeds.len()
    );
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>10}",
        "regime", "clients", "FedForecaster", "RandomSearch", "N-Beats"
    );
    for (name, series) in &sources {
        for &n_clients in &[5usize, 10, 15, 20] {
            let mut ff = 0.0;
            let mut rs = 0.0;
            let mut nb = 0.0;
            for &seed in &settings.seeds {
                let clients = series.split_clients(n_clients);
                let cfg = settings.engine_config(seed);
                ff += FedForecaster::new(cfg.clone(), &meta)
                    .run(&clients)
                    .expect("engine")
                    .test_mse;
                rs += RandomSearch::new(cfg.clone())
                    .run(&clients)
                    .expect("random search")
                    .test_mse;
                nb += run_federated_nbeats(&clients, cfg.budget, 40, false, seed)
                    .expect("nbeats")
                    .test_mse;
            }
            let k = settings.seeds.len() as f64;
            println!(
                "{:<14} {:>8} {:>14.4} {:>14.4} {:>10.4}",
                name,
                n_clients,
                ff / k,
                rs / k,
                nb / k
            );
        }
    }
    println!("\nExpected shape: N-Beats degrades fastest as splits shrink (20 clients);");
    println!("FedForecaster stays at or below random search throughout (§5.2).");
}
