//! **Checkpoint overhead benchmark** — the cost of crash tolerance,
//! written to `BENCH_pr9.json`:
//!
//! - `overhead_pct`: wall-clock overhead of a checkpointed engine run
//!   (fsync-per-trial) over the identical uncheckpointed run — the
//!   acceptance budget is < 5%;
//! - `wal.records_per_s` / `wal.bytes_per_record`: framing + CRC + write
//!   throughput of the log itself (fsync off, so the number measures the
//!   codec, not the disk — it feeds the `bench_guard` regression gate);
//! - `wal.fsync_append_us`: median durable-append latency (fsync on);
//! - `bytes_per_trial`: log growth per committed trial on the real
//!   engine workload;
//! - `resume.recovery_ms`: time to read, verify, truncate-to-resume-point,
//!   and build the replay from a crashed run's log.
//!
//! ```text
//! cargo run -p ff-bench --release --bin checkpoint_overhead -- \
//!     [--iters 10] [--out BENCH_pr9.json]
//! ```
//!
//! With `--crash-resume`, instead runs the CI smoke: arm the crash point
//! from `FF_CRASH_AT` (e.g. `trial:3`, `mid-record:4`), kill a run there,
//! resume, and exit non-zero unless the resumed result is bit-identical
//! to the uninterrupted baseline.

use fedforecaster::ckpt::{config_fingerprint, run_fingerprint, CkptSink};
use fedforecaster::prelude::*;
use ff_bench::Args;
use ff_ckpt::{read_wal, CrashPoint, Wal};
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;
use ff_trace::push_json_f64;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// A realistically-sized federation: per-trial training cost must be in
/// production territory, or the one fsync per trial dominates and the
/// overhead number says nothing about real deployments.
fn federation(n: usize, clients: usize) -> Vec<TimeSeries> {
    let s = generate(
        &SynthesisSpec {
            n,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        9,
    );
    s.split_clients(clients)
}

fn train_meta() -> MetaModel {
    let kb = KnowledgeBase::build(&ff_metalearn::synth::synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("meta-model")
}

fn cfg(iters: usize, checkpoint: Option<CkptConfig>) -> EngineConfig {
    EngineConfig {
        budget: Budget::Iterations(iters),
        seed: 123,
        checkpoint,
        ..Default::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-ckpt-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// CI smoke: crash at `FF_CRASH_AT`, resume, require bit-identity.
fn crash_resume_smoke(iters: usize, meta: &MetaModel) {
    let Some(point) = CrashPoint::from_env() else {
        eprintln!("--crash-resume requires FF_CRASH_AT (e.g. trial:3, mid-record:4)");
        std::process::exit(2);
    };
    let clients = federation(800, 3);
    let baseline = FedForecaster::new(cfg(iters, None), meta)
        .run(&clients)
        .expect("baseline run");
    let baseline_fp = run_fingerprint(&baseline);
    let path = scratch("smoke.wal");
    let mut ck = CkptConfig::at(&path);
    ck.crash = Some(point);
    if matches!(point, CrashPoint::PreRename(_)) {
        // Pre-rename fires during compaction; an aggressive threshold
        // guarantees the small smoke run actually compacts.
        ck.compact_after_bytes = Some(512);
    }
    match FedForecaster::new(cfg(iters, Some(ck)), meta).run(&clients) {
        Err(fedforecaster::EngineError::Checkpoint(ff_ckpt::CkptError::Crash(p))) => {
            println!("crashed as requested at {p:?}");
        }
        Ok(_) => {
            eprintln!("FF_CRASH_AT={point:?} never fired (run completed); widen the budget");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("unexpected failure instead of injected crash: {e}");
            std::process::exit(1);
        }
    }
    let resumed = FedForecaster::new(cfg(iters, Some(CkptConfig::at(&path))), meta)
        .resume(&clients)
        .expect("resume after injected crash");
    let resumed_fp = run_fingerprint(&resumed);
    if resumed_fp != baseline_fp {
        eprintln!("resumed run diverged: {resumed_fp:#018x} vs baseline {baseline_fp:#018x}");
        std::process::exit(1);
    }
    println!("resume after {point:?} is bit-identical to the uninterrupted run");
}

fn main() {
    let args = Args::parse();
    let iters = args.usize("iters", 10);
    let out = args.string("out", "BENCH_pr9.json");
    let meta = train_meta();
    if args.flag("crash-resume") {
        crash_resume_smoke(iters, &meta);
        return;
    }
    let n = args.usize("n", 4000);
    let clients = federation(n, args.usize("clients", 4));

    // Engine overhead: identical seeded runs, checkpointing off vs on
    // (fsync-per-trial, the production default). Each variant repeats
    // `reps` times and keeps the minimum — a single short run is at the
    // mercy of scheduler jitter, and the minimum is the least-disturbed
    // observation of the same deterministic work.
    let reps = args.usize("reps", 7);
    let _ = FedForecaster::new(cfg(iters, None), &meta).run(&clients);
    let mut plain_s = f64::INFINITY;
    let mut plain_fp = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        let r = FedForecaster::new(cfg(iters, None), &meta)
            .run(&clients)
            .expect("plain run");
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        plain_fp = run_fingerprint(&r);
    }
    let wal = scratch("overhead.wal");
    let mut ckpt_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let r = FedForecaster::new(cfg(iters, Some(CkptConfig::at(&wal))), &meta)
            .run(&clients)
            .expect("checkpointed run");
        ckpt_s = ckpt_s.min(t.elapsed().as_secs_f64());
        assert_eq!(
            plain_fp,
            run_fingerprint(&r),
            "checkpointing changed the result"
        );
    }
    let overhead_pct = (ckpt_s / plain_s - 1.0) * 100.0;
    let log_bytes = std::fs::metadata(&wal).expect("wal metadata").len();
    let bytes_per_trial = log_bytes as f64 / iters as f64;

    // WAL micro-benchmarks on a representative 384-byte record.
    let payload = vec![0xA5u8; 384];
    let micro = scratch("micro.wal");
    let mut w = Wal::create(&micro).expect("wal create");
    w.set_fsync(false);
    let n = 20_000u32;
    let t = Instant::now();
    for _ in 0..n {
        w.append(&payload).expect("append");
    }
    let records_per_s = n as f64 / t.elapsed().as_secs_f64();
    let bytes_per_record = w.bytes() as f64 / w.records() as f64;
    let durable = scratch("durable.wal");
    let mut w = Wal::create(&durable).expect("wal create");
    let n_sync = 64u32;
    let t = Instant::now();
    for _ in 0..n_sync {
        w.append(&payload).expect("durable append");
    }
    let fsync_append_us = t.elapsed().as_secs_f64() * 1e6 / n_sync as f64;

    // Recovery latency: crash mid-run, then time only the log-recovery
    // step (read + header verify + truncate to the resume point + replay
    // construction) — the rest of a resume is ordinary re-execution.
    let crashed = scratch("crashed.wal");
    let mut ck = CkptConfig::at(&crashed);
    ck.crash = Some(CrashPoint::AfterTrial((iters / 2).max(1) as u32));
    let crash_cfg = cfg(iters, Some(ck));
    assert!(
        FedForecaster::new(crash_cfg.clone(), &meta)
            .run(&clients)
            .is_err(),
        "injected crash must fire"
    );
    let fp = config_fingerprint(&crash_cfg);
    let t = Instant::now();
    let (_sink, replay) = CkptSink::resume(
        &CkptConfig::at(&crashed),
        crash_cfg.seed,
        fp,
        clients.len() as u32,
        ff_trace::Tracer::disabled(),
    )
    .expect("log recovery");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let replayed_trials = replay.map(|r| r.trials.len()).unwrap_or(0);
    let log_records = read_wal(&crashed).expect("read crashed wal").records.len();

    let mut json = String::from("{\n  \"bench\": \"checkpoint_overhead\",\n");
    let _ = write!(json, "  \"iters\": {iters},\n  \"overhead_pct\": ");
    push_json_f64(&mut json, overhead_pct);
    let _ = write!(json, ",\n  \"plain_s\": ");
    push_json_f64(&mut json, plain_s);
    let _ = write!(json, ",\n  \"checkpointed_s\": ");
    push_json_f64(&mut json, ckpt_s);
    let _ = write!(json, ",\n  \"bytes_per_trial\": ");
    push_json_f64(&mut json, bytes_per_trial);
    let _ = write!(json, ",\n  \"wal\": {{\"records_per_s\": ");
    push_json_f64(&mut json, records_per_s);
    let _ = write!(json, ", \"bytes_per_record\": ");
    push_json_f64(&mut json, bytes_per_record);
    let _ = write!(json, ", \"fsync_append_us\": ");
    push_json_f64(&mut json, fsync_append_us);
    let _ = write!(json, "}},\n  \"resume\": {{\"recovery_ms\": ");
    push_json_f64(&mut json, recovery_ms);
    let _ = write!(
        json,
        ", \"replayed_trials\": {replayed_trials}, \"log_records\": {log_records}}}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    println!("wrote {out}");

    if overhead_pct >= 5.0 {
        eprintln!("checkpoint overhead {overhead_pct:.2}% breaches the 5% budget");
        std::process::exit(1);
    }
}
