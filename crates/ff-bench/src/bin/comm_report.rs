//! **Communication report** — the FL-efficiency angle of the paper's
//! motivation (§1: FL "reduc\[es\] communication overhead"). Breaks one
//! engine run's traffic down by pipeline phase, compares it against the
//! federated N-BEATS baseline's weight exchange, and shows what update
//! compression would save.
//!
//! ```text
//! cargo run -p ff-bench --release --bin comm_report -- [--scale 0.15] [--iters 10] [--kb 48]
//! ```

use fedforecaster::FedForecaster;
use ff_bench::{build_metamodel, Args, RunSettings};
use ff_fl::compress::{compress, decompress, Compression};
use ff_neural::nbeats::{NBeats, NBeatsConfig};
use ff_neural::Parameterized;

fn kib(b: usize) -> f64 {
    b as f64 / 1024.0
}

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let (_, meta) = build_metamodel(settings.kb_size.min(48));
    let ds = &ff_datasets::benchmark_datasets()[args.usize("dataset", 2).min(11)];
    let clients = ds.generate_federation(0, settings.scale);
    let cfg = settings.engine_config(0);

    let r = FedForecaster::new(cfg, &meta)
        .run(&clients)
        .expect("engine");
    println!(
        "FedForecaster on {} ({} clients, {} evaluations)\n",
        ds.name,
        clients.len(),
        r.evaluations
    );
    println!("{:<22} {:>14} {:>14}", "phase", "down (KiB)", "up (KiB)");
    for p in &r.phase_bytes {
        println!(
            "{:<22} {:>14.1} {:>14.1}",
            p.phase,
            kib(p.to_clients),
            kib(p.to_server)
        );
    }
    println!(
        "{:<22} {:>14.1} {:>14.1}\n",
        "total",
        kib(r.bytes_to_clients),
        kib(r.bytes_to_server)
    );

    // The neural baseline's per-round weight exchange, for contrast.
    let mut net = NBeats::new(NBeatsConfig::small(12, 0));
    let weights = net.params_flat();
    let raw_bytes = weights.len() * 8;
    let f32_bytes = compress(&weights, Compression::F32).len();
    let q8_bytes = compress(&weights, Compression::Q8).len();
    println!(
        "Federated N-BEATS weight vector: {} parameters = {:.1} KiB per client per round",
        weights.len(),
        kib(raw_bytes)
    );
    println!(
        "  with f32 compression: {:.1} KiB ({:.1}x)",
        kib(f32_bytes),
        raw_bytes as f64 / f32_bytes as f64
    );
    let q8_restored = decompress(&compress(&weights, Compression::Q8)).expect("roundtrip");
    let max_err = weights
        .iter()
        .zip(&q8_restored)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  with q8 compression:  {:.1} KiB ({:.1}x, max abs error {:.2e})",
        kib(q8_bytes),
        raw_bytes as f64 / q8_bytes as f64,
        max_err
    );
    println!(
        "\nReading: FedForecaster exchanges statistics and scalar losses —\n\
         orders of magnitude less than per-round neural weight shipping,\n\
         the efficiency argument of §1/§4.3."
    );
}
