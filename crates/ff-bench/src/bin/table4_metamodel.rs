//! **Experiment E4 — Table 4**: meta-model selection. Trains the eight
//! classifier families on an 80/20 split of the knowledge base and reports
//! MRR@3 and macro-F1 for each.
//!
//! ```text
//! cargo run -p ff-bench --release --bin table4_metamodel -- \
//!     [--kb 160 | --full] [--seeds 3]
//! ```

use ff_bench::Args;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{evaluate_zoo, MetaClassifierKind};
use ff_metalearn::synth::{reallike_kb, synthetic_kb};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let kb_size = if args.flag("full") {
        512
    } else {
        args.usize("kb", 160)
    };
    let n_seeds = args.usize("seeds", 3) as u64;

    eprintln!("[table4] building knowledge base ({kb_size} synthetic + 30 real-like)…");
    let t0 = Instant::now();
    let mut datasets = synthetic_kb(kb_size);
    datasets.extend(reallike_kb());
    let kb = KnowledgeBase::build(&datasets, &[5, 10, 15, 20], 60);
    eprintln!(
        "[table4] {} labelled records in {:.1}s",
        kb.len(),
        t0.elapsed().as_secs_f64()
    );

    // Label distribution (context for interpreting F1).
    let mut counts = vec![0usize; ff_models::zoo::AlgorithmKind::all().len()];
    for l in kb.labels() {
        counts[l] += 1;
    }
    eprintln!("[table4] label distribution:");
    for (kind, c) in ff_models::zoo::AlgorithmKind::all().into_iter().zip(counts) {
        eprintln!("  {:<20} {}", kind.name(), c);
    }

    // Average the zoo over seeds (the paper tunes with random search on a
    // validation split; we average split seeds for stability).
    let mut agg: Vec<(MetaClassifierKind, f64, f64)> = MetaClassifierKind::ALL
        .iter()
        .map(|&k| (k, 0.0, 0.0))
        .collect();
    for seed in 0..n_seeds {
        let results = evaluate_zoo(&kb, seed).expect("zoo evaluation");
        for (slot, r) in agg.iter_mut().zip(results) {
            debug_assert_eq!(slot.0, r.kind);
            slot.1 += r.mrr3 / n_seeds as f64;
            slot.2 += r.f1 / n_seeds as f64;
        }
    }

    println!("\nTable 4: Performance of Different Classifiers for the Meta-Model");
    println!("(KB = {} records, {}-seed average)\n", kb.len(), n_seeds);
    println!("{:<22} {:>6} {:>9}", "Model", "MRR@3", "F1 Score");
    let mut sorted = agg.clone();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (kind, mrr, f1) in &agg {
        println!("{:<22} {:>6.3} {:>9.2}", kind.name(), mrr, f1);
    }
    println!(
        "\nBest by MRR@3: {} ({:.3}) — paper's winner: Random Forest (0.858)",
        sorted[0].0.name(),
        sorted[0].1
    );
}
