//! **Experiment E6 — budget sweep** (§5.2 "different time budgets"):
//! best validation loss and test MSE of FedForecaster vs random search as
//! the optimization budget grows.
//!
//! ```text
//! cargo run -p ff-bench --release --bin sweep_budget -- \
//!     [--scale 0.15] [--seeds 2] [--kb 48] [--dataset 2]
//! ```

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_bench::{build_metamodel, Args, RunSettings};

fn main() {
    let args = Args::parse();
    let settings = RunSettings::from_args(&args);
    let idx = args.usize("dataset", 2).min(11);
    let ds = &ff_datasets::benchmark_datasets()[idx];
    let (_, meta) = build_metamodel(settings.kb_size.min(48));

    println!(
        "Budget sweep on {} ({} clients, scale {}, {} seed(s))\n",
        ds.name,
        ds.clients,
        settings.scale,
        settings.seeds.len()
    );
    println!(
        "{:>8} {:>18} {:>18} {:>14} {:>14}",
        "budget", "FF valid loss", "RS valid loss", "FF test MSE", "RS test MSE"
    );
    for &iters in &[2usize, 4, 8, 16, 32] {
        let mut ff_v = 0.0;
        let mut rs_v = 0.0;
        let mut ff_t = 0.0;
        let mut rs_t = 0.0;
        for &seed in &settings.seeds {
            let clients = ds.generate_federation(seed, settings.scale);
            let cfg = EngineConfig {
                budget: Budget::Iterations(iters),
                seed,
                ..Default::default()
            };
            let r = FedForecaster::new(cfg.clone(), &meta)
                .run(&clients)
                .expect("engine");
            ff_v += r.best_valid_loss;
            ff_t += r.test_mse;
            let r = RandomSearch::new(cfg).run(&clients).expect("random search");
            rs_v += r.best_valid_loss;
            rs_t += r.test_mse;
        }
        let k = settings.seeds.len() as f64;
        println!(
            "{:>8} {:>18.5} {:>18.5} {:>14.5} {:>14.5}",
            iters,
            ff_v / k,
            rs_v / k,
            ff_t / k,
            rs_t / k
        );
    }
    println!("\nExpected shape: FedForecaster reaches low loss within the first few");
    println!("evaluations (meta-model warm start); random search needs a larger");
    println!("budget to catch up — consistent with the paper's 5-minute-budget wins.");
}
