//! **Experiment E7 — §5.2 Runtime**: offline knowledge-base record cost and
//! per-client meta-feature extraction cost.
//!
//! The paper reports ~114.53 s per KB record (grid search on their cluster)
//! and 2.74 s per client for meta-feature extraction. Absolute numbers
//! differ on other hardware; the claim being reproduced is the *ratio*:
//! extraction is insignificant next to the online 5-minute budget, and the
//! KB build is a one-time offline cost.
//!
//! ```text
//! cargo run -p ff-bench --release --bin runtime_costs -- [--records 5] [--scale 0.15]
//! ```

use ff_bench::Args;
use ff_metalearn::features::ClientMetaFeatures;
use ff_metalearn::kb::label_federation;
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::generate;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n_records = args.usize("records", 5);
    let scale = args.f64("scale", 0.15);

    // KB record cost: full labelling (meta-features + grid search) per
    // dataset.
    let specs = synthetic_kb(n_records.max(1));
    let mut total = 0.0;
    for ds in specs.iter().take(n_records) {
        let series = generate(&ds.spec, ds.seed);
        let clients = series.split_clients(5);
        let t = Instant::now();
        let _ = label_federation(&clients).expect("labelling");
        total += t.elapsed().as_secs_f64();
    }
    println!(
        "KB record construction: {:.2} s/record over {} records (paper: 114.53 s on 1 vCPU / 2 GB)",
        total / n_records as f64,
        n_records
    );

    // Per-client meta-feature extraction cost on the benchmark datasets.
    let mut times = Vec::new();
    for ds in ff_datasets::benchmark_datasets() {
        let clients = ds.generate_federation(0, scale);
        let t = Instant::now();
        for c in &clients {
            let _ = ClientMetaFeatures::extract(c);
        }
        times.push(t.elapsed().as_secs_f64() / clients.len() as f64);
    }
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Meta-feature extraction: avg {:.4} s/client, max {:.4} s/client across the 12 benchmarks (paper: 2.74 s)",
        avg, max
    );
    println!(
        "Extraction / 5-minute online budget = {:.4}% — insignificant, matching §5.2.",
        100.0 * avg / 300.0
    );
}
