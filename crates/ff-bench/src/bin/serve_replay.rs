//! **Serve replay benchmark** — forecasts/sec and tail latency for the
//! ff-serve layer over a multi-tenant store, serial vs batched, written
//! to `BENCH_pr10.json`. The store holds 64 tenants × 4 series each
//! (256 published models by default) backed by a small pool of
//! genuinely fitted pipeline artifacts; the replay sweeps every key
//! with varying forecast windows, so the numbers include store
//! resolution, revive-cache traffic, and the full member fold — not a
//! cached single-model hot loop.
//!
//! ```text
//! cargo run -p ff-bench --release --bin serve_replay -- \
//!     [--threads 4] [--tenants 64] [--series 256] [--requests 4096] \
//!     [--out BENCH_pr10.json] [--assert-p99-ms 250]
//! ```
//!
//! The run also re-asserts the serving determinism contract (batched
//! output bit-identical at 1 and N threads); a divergence aborts the
//! benchmark rather than reporting throughput for wrong answers. The
//! `--assert-p99-ms` ceiling is the CI latency gate, the serving
//! counterpart of `fleet_round`'s `--assert-rss-mb`.

use ff_bench::Args;
use ff_models::pipeline::{PipelineId, PipelineModel};
use ff_models::zoo::{AlgorithmKind, HyperParams};
use ff_serve::{Artifact, BatchOutcome, Batcher, ModelStore, PredictRequest};
use ff_trace::push_json_f64;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SERIES_LEN: usize = 160;
const FIT_END: usize = 120;
/// Distinct fitted models backing the store; keys cycle through them.
const MODEL_POOL: usize = 8;

fn series(seed: u64, n: usize) -> Vec<f64> {
    let slope = 0.03 + 0.01 * (seed % 7) as f64;
    let period = 8.0 + (seed % 5) as f64;
    (0..n)
        .map(|t| {
            let t = t as f64;
            4.0 + slope * t + (std::f64::consts::TAU * t / period).sin()
        })
        .collect()
}

fn artifact(seed: u64) -> Artifact {
    let v = series(seed, SERIES_LEN);
    let m = PipelineModel::fit(
        PipelineId::LAGGED,
        AlgorithmKind::LINEAR_SVR,
        &HyperParams::default(),
        &v,
        FIT_END,
    )
    .expect("pipeline fit");
    Artifact {
        algorithm: "LinearSVR".into(),
        pipeline: Some("lagged".into()),
        lags: vec![],
        members: vec![(1.0, m.to_blob().expect("v3 blob"))],
    }
}

fn build_store(tenants: usize, total_series: usize) -> Arc<ModelStore> {
    let pool: Vec<Artifact> = (0..MODEL_POOL as u64).map(artifact).collect();
    // Revive capacity covers every key: the bench measures steady-state
    // serving, not decode thrash (the LRU contract has its own tests).
    let store = Arc::new(ModelStore::with_revive_capacity(total_series.max(1)));
    let per_tenant = total_series.div_ceil(tenants.max(1)).max(1);
    let mut published = 0;
    'outer: for t in 0..tenants {
        for s in 0..per_tenant {
            if published >= total_series {
                break 'outer;
            }
            store.publish(
                &format!("tenant-{t}"),
                &format!("series-{s}"),
                pool[published % MODEL_POOL].clone(),
            );
            published += 1;
        }
    }
    store
}

fn build_requests(tenants: usize, total_series: usize, n: usize) -> Vec<PredictRequest> {
    let per_tenant = total_series.div_ceil(tenants.max(1)).max(1);
    let histories: Vec<Vec<f64>> = (0..MODEL_POOL as u64)
        .map(|s| series(s, SERIES_LEN))
        .collect();
    (0..n)
        .map(|i| {
            let key = i % total_series;
            let start = FIT_END + (i * 3) % 30;
            PredictRequest {
                tenant: format!("tenant-{}", key / per_tenant),
                series: format!("series-{}", key % per_tenant),
                values: histories[key % MODEL_POOL].clone(),
                start,
                end: start + 1 + i % 8,
            }
        })
        .collect()
}

fn forecast_bits(outcome: &BatchOutcome) -> Vec<Vec<u64>> {
    outcome
        .forecasts
        .iter()
        .map(|r| {
            r.as_ref()
                .expect("replay request")
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

/// One measured replay pass at `threads` workers; the store is warmed
/// first so lazy decode is not billed to the serving numbers.
fn measure(store: &ModelStore, requests: &[PredictRequest], threads: usize) -> (f64, BatchOutcome) {
    ff_par::with_threads(threads, || {
        let batcher = Batcher::new();
        let _warm = batcher.run(store, requests);
        let t = Instant::now();
        let outcome = batcher.run(store, requests);
        let elapsed = t.elapsed().as_secs_f64();
        (requests.len() as f64 / elapsed.max(1e-9), outcome)
    })
}

fn main() {
    let args = Args::parse();
    let threads = args.usize("threads", 4);
    let tenants = args.usize("tenants", 64);
    let total_series = args.usize("series", 256);
    let n_requests = args.usize("requests", 4096);
    let out_path = args.string("out", "BENCH_pr10.json");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let store = build_store(tenants, total_series);
    let requests = build_requests(tenants, total_series, n_requests);

    let (serial_fps, serial_outcome) = measure(&store, &requests, 1);
    let (batched_fps, batched_outcome) = measure(&store, &requests, threads);

    // Determinism contract before any number is reported: throughput
    // for wrong answers is not a benchmark.
    assert_eq!(
        forecast_bits(&serial_outcome),
        forecast_bits(&batched_outcome),
        "serving diverged between 1 and {threads} threads"
    );

    let hist = batched_outcome.latency_histogram();
    let p50 = hist.percentile(0.50).unwrap_or(0.0);
    let p95 = hist.percentile(0.95).unwrap_or(0.0);
    let p99 = hist.percentile(0.99).unwrap_or(0.0);
    let speedup = batched_fps / serial_fps.max(1e-9);

    println!(
        "serve_replay: {n_requests} requests over {} models ({tenants} tenants): \
         serial {serial_fps:9.0} fc/s  batched({threads}) {batched_fps:9.0} fc/s  \
         speedup {speedup:.2}×  p50 {p50:.0} µs  p95 {p95:.0} µs  p99 {p99:.0} µs",
        store.len()
    );

    let mut json = String::from("{\n  \"bench\": \"serve_replay\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"tenants\": {tenants},");
    let _ = writeln!(json, "  \"series\": {},", store.len());
    let _ = writeln!(json, "  \"requests\": {n_requests},");
    json.push_str("  \"serial_forecasts_per_s\": ");
    push_json_f64(&mut json, serial_fps);
    json.push_str(",\n  \"batched_forecasts_per_s\": ");
    push_json_f64(&mut json, batched_fps);
    json.push_str(",\n  \"speedup\": ");
    push_json_f64(&mut json, speedup);
    json.push_str(",\n  \"p50_us\": ");
    push_json_f64(&mut json, p50);
    json.push_str(",\n  \"p95_us\": ");
    push_json_f64(&mut json, p95);
    json.push_str(",\n  \"p99_us\": ");
    push_json_f64(&mut json, p99);
    json.push_str(",\n  \"deterministic_across_threads\": true\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path} (host_cpus = {host_cpus})");

    if args.has("assert-p99-ms") {
        let budget_ms = args.f64("assert-p99-ms", 250.0);
        let p99_ms = p99 / 1000.0;
        if p99_ms > budget_ms {
            eprintln!("p99 latency {p99_ms:.2} ms exceeds the {budget_ms:.0} ms budget");
            std::process::exit(1);
        }
        println!("p99 latency {p99_ms:.2} ms within the {budget_ms:.0} ms budget");
    }
}
