//! **Fleet round benchmark** — rounds/sec and peak memory for the
//! event-driven fleet scheduler across fleet sizes {100, 1k, 10k} ×
//! participation {1%, 10%}, sequential vs parallel, written to
//! `BENCH_pr6.json`. Every configuration runs the same chaotic fleet
//! (1% Byzantine + 2% flaky links via [`ChaosConfig::fleet_profile`])
//! under coordinate-median aggregation, so the numbers include the full
//! screen → fold → merge → health pipeline, not a happy-path broadcast.
//!
//! ```text
//! cargo run -p ff-bench --release --bin fleet_round -- \
//!     [--threads 4] [--rounds 10] [--dim 64] [--out BENCH_pr6.json] \
//!     [--assert-rss-mb 512]
//! ```
//!
//! Two memory columns are reported: `agg_peak_bytes` is the scheduler's
//! own high-water mark of live aggregation state (the O(model × shards)
//! contract, measured exactly), and `rss_hwm_mb` is the process-wide
//! `VmHWM` after the run — monotone across configurations by nature, so
//! only the final value (and the `--assert-rss-mb` ceiling CI applies to
//! it) is meaningful in absolute terms.

use ff_bench::Args;
use ff_fl::chaos::{ChaosClient, ChaosConfig};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::fleet::{FleetConfig, FleetRuntime};
use ff_fl::robust::AggregationStrategy;
use ff_fl::runtime::RoundPolicy;
use ff_trace::push_json_f64;
use std::fmt::Write as _;
use std::time::Instant;

/// Honest client: constant parameters of the requested dimension.
struct Honest {
    dim: usize,
}

impl FlClient for Honest {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![1.0; self.dim],
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
        let center = params.first().copied().unwrap_or(0.0);
        EvalOutput {
            loss: (1.0 - center).abs(),
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
}

fn build_fleet(n: usize, dim: usize, fraction: f64) -> FleetRuntime {
    let clients: Vec<Box<dyn FlClient>> = (0..n)
        .map(|id| {
            let profile = ChaosConfig::fleet_profile(0, id, 0.01, 0.02);
            Box::new(ChaosClient::new(Box::new(Honest { dim }), profile)) as Box<dyn FlClient>
        })
        .collect();
    FleetRuntime::new(
        clients,
        FleetConfig {
            fraction,
            seed: 42,
            strategy: AggregationStrategy::CoordinateMedian,
            ..FleetConfig::default()
        },
    )
    .expect("fleet construction")
}

/// Runs `rounds` fit rounds and returns (rounds/sec, scheduler agg peak
/// bytes). Building the fleet inside keeps each measurement independent
/// of the previous configuration's client state. A quorum failure — a
/// tiny cohort whose only members were flaky this round — still counts
/// as an attempted round; any other error is a bug.
fn measure(n: usize, dim: usize, fraction: f64, rounds: usize, threads: usize) -> (f64, usize) {
    ff_par::with_threads(threads, || {
        let fleet = build_fleet(n, dim, fraction);
        let policy = RoundPolicy {
            deadline: None,
            min_responses: 1,
            retries: 1,
            backoff: std::time::Duration::ZERO,
        };
        let t = Instant::now();
        for _ in 0..rounds {
            match fleet.run_fit_round(vec![0.0; dim], ConfigMap::new(), &policy) {
                Ok(out) => assert_eq!(out.global.len(), dim),
                Err(ff_fl::FlError::Quorum { .. }) => {}
                Err(e) => panic!("fleet round failed: {e}"),
            }
        }
        let elapsed = t.elapsed().as_secs_f64();
        (rounds as f64 / elapsed.max(1e-9), fleet.peak_agg_bytes())
    })
}

/// Process-wide peak resident set (`VmHWM`) in MiB, from
/// `/proc/self/status`; 0.0 where unavailable (non-Linux).
fn rss_hwm_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

fn main() {
    let args = Args::parse();
    let threads = args.usize("threads", 4);
    let rounds = args.usize("rounds", 10);
    let dim = args.usize("dim", 64);
    let out_path = args.string("out", "BENCH_pr6.json");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let fleets = [100usize, 1_000, 10_000];
    let participation = [0.01f64, 0.10];

    let mut json = String::from("{\n  \"bench\": \"fleet_round\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"dim\": {dim},");
    json.push_str("  \"configs\": [\n");

    let total = fleets.len() * participation.len();
    let mut i = 0;
    for &n in &fleets {
        for &frac in &participation {
            let (seq_rps, _) = measure(n, dim, frac, rounds, 1);
            let (par_rps, agg_peak) = measure(n, dim, frac, rounds, threads);
            let cohort = ((n as f64 * frac).round() as usize).clamp(1, n);
            let hwm = rss_hwm_mb();
            println!(
                "fleet {n:>6} × {:>4.0}% (cohort {cohort:>5}): \
                 seq {seq_rps:8.1} rps  par({threads}) {par_rps:8.1} rps  \
                 agg peak {agg_peak:>8} B  rss hwm {hwm:.1} MiB",
                frac * 100.0
            );
            let _ = write!(
                json,
                "    {{\"fleet\": {n}, \"participation\": {frac}, \"cohort\": {cohort}, \
                 \"seq_rounds_per_s\": "
            );
            push_json_f64(&mut json, seq_rps);
            json.push_str(", \"par_rounds_per_s\": ");
            push_json_f64(&mut json, par_rps);
            let _ = write!(json, ", \"agg_peak_bytes\": {agg_peak}, \"rss_hwm_mb\": ");
            push_json_f64(&mut json, hwm);
            json.push('}');
            i += 1;
            json.push_str(if i < total { ",\n" } else { "\n" });
        }
    }
    json.push_str("  ],\n");
    let final_hwm = rss_hwm_mb();
    json.push_str("  \"final_rss_hwm_mb\": ");
    push_json_f64(&mut json, final_hwm);
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path} (host_cpus = {host_cpus})");

    if args.has("assert-rss-mb") {
        let budget = args.usize("assert-rss-mb", 512) as f64;
        if final_hwm > budget {
            eprintln!("peak RSS {final_hwm:.1} MiB exceeds the {budget:.0} MiB budget");
            std::process::exit(1);
        }
        println!("peak RSS {final_hwm:.1} MiB within the {budget:.0} MiB budget");
    }
}
