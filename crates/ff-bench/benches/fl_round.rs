//! Criterion benchmarks of federated-round overhead: message codec
//! round-trips and a full broadcast/collect cycle over the threaded
//! runtime — the communication tax every §4.3 optimization iteration pays.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::FederatedRuntime;

struct NoopClient;

impl FlClient for NoopClient {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new().with_float("x", 1.0)
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![0.0; 64],
            num_examples: 100,
            metrics: ConfigMap::new().with_float("valid_loss", 0.5),
        }
    }
    fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
        EvalOutput {
            loss: 0.5,
            num_examples: 100,
            metrics: ConfigMap::new(),
        }
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_codec");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dim in [64usize, 1024, 16384] {
        let ins = Instruction::Fit {
            params: vec![1.0; dim],
            config: ConfigMap::new()
                .with_str("op", "fit_eval")
                .with_float("alpha", 0.1),
        };
        group.bench_with_input(BenchmarkId::new("roundtrip", dim), &ins, |b, ins| {
            b.iter(|| {
                let bytes = black_box(ins).encode();
                Instruction::decode(bytes).unwrap()
            })
        });
    }
    let reply = Reply::FitRes {
        params: vec![0.5; 1024],
        num_examples: 500,
        metrics: ConfigMap::new().with_float("valid_loss", 0.25),
    };
    group.bench_function("reply_roundtrip_1024", |b| {
        b.iter(|| Reply::decode(black_box(&reply).encode()).unwrap())
    });
    group.finish();
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_clients in [5usize, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("broadcast_fit", n_clients),
            &n_clients,
            |b, &n| {
                let clients: Vec<Box<dyn FlClient>> = (0..n)
                    .map(|_| Box::new(NoopClient) as Box<dyn FlClient>)
                    .collect();
                let rt = FederatedRuntime::new(clients);
                let ins = Instruction::Fit {
                    params: vec![0.0; 64],
                    config: ConfigMap::new().with_str("op", "noop"),
                };
                b.iter(|| rt.broadcast_all(black_box(&ins)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_round);
criterion_main!(benches);
