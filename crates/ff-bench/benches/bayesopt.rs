//! Criterion benchmarks of the Bayesian-optimization server loop: GP fit +
//! EI argmax per ask() as the observation count grows — the server-side
//! cost of each communication round in §4.3.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedforecaster::search_space::table2_space;
use ff_bayesopt::optimizer::BayesOpt;
use ff_models::zoo::AlgorithmKind;

fn bench_bayesopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayesopt");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_obs in [5usize, 15, 40] {
        group.bench_with_input(
            BenchmarkId::new("ask_after_n_observations", n_obs),
            &n_obs,
            |b, &n_obs| {
                // Pre-populate an optimizer with n_obs synthetic evaluations.
                let mut bo = BayesOpt::new(table2_space(&AlgorithmKind::all()), 3).unwrap();
                for i in 0..n_obs {
                    let cfg = bo.ask().unwrap();
                    // A deterministic pseudo-loss keeps the landscape fixed.
                    let loss = (i as f64 * 0.37).sin().abs();
                    bo.tell(&cfg, loss).unwrap();
                }
                b.iter(|| {
                    let cfg = bo.ask().unwrap();
                    black_box(&cfg);
                    // Re-asking is cheap (pending); measure the guided path
                    // by telling and asking again.
                    bo.tell(&cfg, 0.5).unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bayesopt);
criterion_main!(benches);
