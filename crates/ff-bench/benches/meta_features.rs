//! Criterion benchmark of full Table 1 meta-feature extraction and
//! server-side aggregation — the per-client cost §5.2 reports as 2.74 s.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

fn client_series(n: usize) -> TimeSeries {
    generate(
        &SynthesisSpec {
            n,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 24.0,
                amplitude: 3.0,
            }],
            snr: Some(10.0),
            missing_fraction: 0.02,
            ..Default::default()
        },
        7,
    )
}

fn bench_meta_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_features");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [500usize, 2000, 8000] {
        let s = client_series(n);
        group.bench_with_input(BenchmarkId::new("extract", n), &s, |b, s| {
            b.iter(|| ClientMetaFeatures::extract(black_box(s)))
        });
    }
    // Aggregation cost scales with client count (pairwise KL).
    let metas: Vec<ClientMetaFeatures> = (0..20)
        .map(|i| ClientMetaFeatures::extract(&client_series(500 + 10 * i)))
        .collect();
    for k in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("aggregate", k), &k, |b, &k| {
            b.iter(|| GlobalMetaFeatures::aggregate(black_box(&metas[..k])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_meta_features);
criterion_main!(benches);
