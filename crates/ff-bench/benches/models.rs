//! Criterion benchmarks of the six Table 2 forecasting algorithms —
//! fit + predict on a lag-feature design, the inner loop of both the grid
//! search (offline) and every federated evaluation (online).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_linalg::Matrix;
use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::windowing::lag_matrix;

fn design(n: usize) -> (Matrix, Vec<f64>) {
    let s = generate(
        &SynthesisSpec {
            n: n + 10,
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 3.0,
            }],
            snr: Some(10.0),
            ..Default::default()
        },
        3,
    );
    lag_matrix(s.values(), &[1, 2, 3, 4, 5, 6, 7]).expect("windows")
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models_fit_predict");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let (x, y) = design(1000);
    for kind in AlgorithmKind::all() {
        group.bench_with_input(BenchmarkId::new("fit", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut m = build_regressor(kind, &HyperParams::default());
                m.fit(black_box(&x), black_box(&y)).unwrap();
                m.predict(black_box(&x)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
