//! Criterion micro-benchmarks of the time-series kernels that dominate
//! meta-feature extraction (ACF/pACF, ADF, FFT periodogram, Higuchi FD).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::{acf, fractal, periodogram, stationarity};

fn series(n: usize) -> Vec<f64> {
    generate(
        &SynthesisSpec {
            n,
            seasons: vec![SeasonSpec {
                period: 24.0,
                amplitude: 3.0,
            }],
            snr: Some(10.0),
            ..Default::default()
        },
        1,
    )
    .values()
    .to_vec()
}

fn bench_timeseries(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeseries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [500usize, 2000, 8000] {
        let v = series(n);
        group.bench_with_input(BenchmarkId::new("acf", n), &v, |b, v| {
            b.iter(|| acf::acf(black_box(v), 40))
        });
        group.bench_with_input(BenchmarkId::new("pacf", n), &v, |b, v| {
            b.iter(|| acf::pacf(black_box(v), 40))
        });
        group.bench_with_input(BenchmarkId::new("adf", n), &v, |b, v| {
            b.iter(|| stationarity::adf_test(black_box(v), stationarity::AdfRegression::Constant))
        });
        group.bench_with_input(BenchmarkId::new("periodogram", n), &v, |b, v| {
            b.iter(|| periodogram::detect_seasonality(black_box(v), 5, 5.0))
        });
        group.bench_with_input(BenchmarkId::new("higuchi_fd", n), &v, |b, v| {
            b.iter(|| fractal::higuchi_fd(black_box(v), 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeseries);
criterion_main!(benches);
