//! Criterion benchmarks of N-BEATS training throughput — the per-round
//! local-compute cost of the paper's neural baseline (why N-Beats suffers
//! under a shared time budget on weak clients).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_linalg::Matrix;
use ff_neural::nbeats::{NBeats, NBeatsConfig};

fn bench_nbeats(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbeats");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (name, cfg) in [
        ("small", NBeatsConfig::small(12, 0)),
        (
            "paper_scale",
            NBeatsConfig {
                lookback: 24,
                ..Default::default()
            },
        ),
    ] {
        let batch = cfg.batch_size.min(64);
        let lookback = cfg.lookback;
        let mut net = NBeats::new(cfg);
        let x = Matrix::from_fn(batch, lookback, |i, j| ((i * 7 + j) % 13) as f64 * 0.1);
        let y = Matrix::from_fn(batch, 1, |i, _| (i % 5) as f64 * 0.2);
        group.bench_with_input(BenchmarkId::new("train_step", name), &(), |b, _| {
            b.iter(|| net.train_step(black_box(&x), black_box(&y)))
        });
    }

    let series: Vec<f64> = (0..500)
        .map(|t| (std::f64::consts::TAU * t as f64 / 16.0).sin())
        .collect();
    let net = {
        let mut n = NBeats::new(NBeatsConfig::small(16, 1));
        n.fit_series(&series, 50, || false);
        n
    };
    group.bench_function("predict_one_step_100", |b| {
        b.iter(|| net.predict_one_step(black_box(&series[..400]), black_box(&series[400..])))
    });
    group.finish();
}

criterion_group!(benches, bench_nbeats);
criterion_main!(benches);
