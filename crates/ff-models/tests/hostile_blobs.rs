//! Hostile-bytes hardening for the member-blob codecs: truncated and
//! bit-flipped v2/v3 blobs fed through `ser::Reader`,
//! [`decode_member_blob`], and [`PipelineModel::from_blob`] must return
//! `Err` (or, for single flipped bits that land in a value field, a
//! structurally valid member) — never panic, and never allocate from an
//! unchecked length prefix. A resumed run decodes blobs it found on disk;
//! disk contents after a crash are adversarial input.

use ff_linalg::Matrix;
use ff_models::data::{Standardizer, TargetScaler};
use ff_models::pipeline::{decode_member_blob, encode_external_blob, PipelineId, PipelineModel};
use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A genuine v3 pipeline blob (built once — fitting inside every proptest
/// case would dominate the runtime).
fn v3_blob() -> &'static [u8] {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let v: Vec<f64> = (0..150)
            .map(|t| 10.0 + 0.08 * t as f64 + (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        PipelineModel::fit(
            PipelineId::LAGGED,
            AlgorithmKind::LASSO,
            &HyperParams::default(),
            &v,
            120,
        )
        .unwrap()
        .to_blob()
        .unwrap()
    })
}

/// A genuine v2 (flat ensemble-member) blob with a real model codec
/// section.
fn v2_blob() -> &'static [u8] {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let x = Matrix::from_fn(60, 3, |i, j| ((i * (j + 2)) % 11) as f64 * 0.3);
        let y: Vec<f64> = (0..60)
            .map(|i| x.get(i, 0) * 1.5 - x.get(i, 1) + 2.0)
            .collect();
        let scaler = Standardizer::fit(&x);
        let yscaler = TargetScaler::fit(&y);
        let xs = scaler.transform(&x);
        let ys: Vec<f64> = y.iter().map(|&v| yscaler.scale(v)).collect();
        let mut model = build_regressor(AlgorithmKind::XGB_REGRESSOR, &HyperParams::default());
        model.fit(&xs, &ys).unwrap();
        encode_external_blob(
            AlgorithmKind::XGB_REGRESSOR,
            &scaler,
            &yscaler,
            &model.to_blob().unwrap(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_v3_blob_is_an_error(frac in 0.0f64..1.0) {
        let blob = v3_blob();
        // Every strict prefix must be rejected: the codec is sequential
        // with no padding, so a cut always lands inside some field.
        let cut = ((blob.len() as f64 * frac) as usize).min(blob.len() - 1);
        prop_assert!(PipelineModel::from_blob(&blob[..cut]).is_err());
        prop_assert!(decode_member_blob(&blob[..cut]).is_err());
    }

    #[test]
    fn truncated_v2_blob_is_an_error(frac in 0.0f64..1.0) {
        let blob = v2_blob();
        let cut = ((blob.len() as f64 * frac) as usize).min(blob.len() - 1);
        prop_assert!(decode_member_blob(&blob[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_v3_blob_never_panics(byte in 0usize..10_000, bit in 0u8..8) {
        let mut blob = v3_blob().to_vec();
        let byte = byte % blob.len();
        blob[byte] ^= 1 << bit;
        // A flip in a value field may still decode to a valid (different)
        // model; a flip in a length, tag, or name must error. Either way:
        // no panic, no unbounded allocation.
        let _ = PipelineModel::from_blob(&blob);
        let _ = decode_member_blob(&blob);
    }

    #[test]
    fn bit_flipped_v2_blob_never_panics(byte in 0usize..10_000, bit in 0u8..8) {
        let mut blob = v2_blob().to_vec();
        let byte = byte % blob.len();
        blob[byte] ^= 1 << bit;
        let _ = decode_member_blob(&blob);
    }

    #[test]
    fn arbitrary_bytes_never_panic(mut bytes in prop::collection::vec(any::<u8>(), 0..512), version in 2u8..=3) {
        // Fully random payloads, plus the same bytes forced onto the two
        // real version tags so the deeper decode paths are exercised.
        let _ = decode_member_blob(&bytes);
        if !bytes.is_empty() {
            bytes[0] = version;
            let _ = decode_member_blob(&bytes);
            let _ = PipelineModel::from_blob(&bytes);
        }
    }

    #[test]
    fn hostile_length_prefixes_do_not_allocate_the_claimed_size(claim in 1u32..u32::MAX) {
        // A blob whose f64s length field claims up to 4 billion entries
        // must be rejected by the remaining-input clamp before any
        // allocation. Layout: version 3, real pipeline and algorithm
        // names, then the poisoned node-values length over a short tail.
        let mut w = ff_models::ser::Writer::new();
        w.u8(3);
        w.str(PipelineId::LAGGED.name());
        w.str(AlgorithmKind::LASSO.name());
        w.u32(claim);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0u8; 64]);
        prop_assert!(PipelineModel::from_blob(&bytes).is_err());
        prop_assert!(decode_member_blob(&bytes).is_err());
    }
}
