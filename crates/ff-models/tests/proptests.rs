//! Property-based tests for the model substrate.

use ff_linalg::Matrix;
use ff_models::boosting::gbdt::XgbRegressor;
use ff_models::forest::{RandomForestClassifier, RandomForestRegressor};
use ff_models::linear::cd::{coordinate_descent, soft_threshold, Selection};
use ff_models::linear::lasso::Lasso;
use ff_models::metrics;
use ff_models::{Classifier, Regressor};
use proptest::prelude::*;

fn design(n: usize, p: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, n * p).prop_map(move |d| Matrix::from_vec(n, p, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn soft_threshold_is_shrinkage(z in -10.0f64..10.0, t in 0.0f64..5.0) {
        let s = soft_threshold(z, t);
        prop_assert!(s.abs() <= z.abs() + 1e-12);
        prop_assert!(s * z >= 0.0, "sign must not flip");
        if z.abs() <= t {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn lasso_predictions_are_finite(x in design(30, 3), noise in prop::collection::vec(-0.1f64..0.1, 30)) {
        let y: Vec<f64> = (0..30).map(|i| x.get(i, 0) * 2.0 + noise[i]).collect();
        let mut m = Lasso::new(0.01, Selection::Cyclic);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        prop_assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cd_objective_decreases_with_weaker_regularization(x in design(40, 2)) {
        let y: Vec<f64> = (0..40).map(|i| 3.0 * x.get(i, 0) - x.get(i, 1)).collect();
        let weak = coordinate_descent(&x, &y, 1e-6, 1.0, Selection::Cyclic, 300, 1e-9, 0);
        let strong = coordinate_descent(&x, &y, 1.0, 1.0, Selection::Cyclic, 300, 1e-9, 0);
        let sse = |coef: &[f64], b: f64| -> f64 {
            (0..40).map(|i| {
                let p = ff_linalg::vector::dot(x.row(i), coef) + b;
                (y[i] - p) * (y[i] - p)
            }).sum()
        };
        prop_assert!(sse(&weak.coef, weak.intercept) <= sse(&strong.coef, strong.intercept) + 1e-6);
    }

    #[test]
    fn forest_predictions_within_target_range(x in design(40, 2)) {
        let y: Vec<f64> = (0..40).map(|i| x.get(i, 0)).collect();
        let mut f = RandomForestRegressor::new(10, 4, 1);
        f.fit(&x, &y).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in f.predict(&x).unwrap() {
            // Averages of leaf means can never escape the convex hull of y.
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_importances_form_distribution(x in design(40, 3)) {
        let y: Vec<f64> = (0..40).map(|i| x.get(i, 1) * 2.0).collect();
        let mut f = RandomForestRegressor::new(10, 4, 2);
        f.feature_subsample = 1.0;
        f.fit(&x, &y).unwrap();
        let imp = f.feature_importances().unwrap();
        let sum: f64 = imp.iter().sum();
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        prop_assert!(sum < 1.0 + 1e-9);
    }

    #[test]
    fn classifier_proba_is_distribution(x in design(30, 2), seed in 0u64..100) {
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let mut c = RandomForestClassifier::new(8, 4, seed);
        c.fit(&x, &labels, 2).unwrap();
        let p = c.predict_proba(&x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn xgb_train_error_beats_mean_baseline(x in design(60, 2)) {
        let y: Vec<f64> = (0..60).map(|i| (x.get(i, 0) * 1.3).sin() * 4.0 + x.get(i, 1)).collect();
        let mut m = XgbRegressor::new(25, 3, 0.3, 1.0, 1.0);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        let mean = ff_linalg::vector::mean(&y);
        let base: Vec<f64> = vec![mean; 60];
        prop_assert!(metrics::mse(&y, &pred) <= metrics::mse(&y, &base) + 1e-9);
    }

    #[test]
    fn mrr_bounded_unit_interval(
        labels in prop::collection::vec(0usize..4, 10),
        perm_seed in 0u64..50,
    ) {
        let mut state = perm_seed;
        let rankings: Vec<Vec<usize>> = (0..10).map(|_| {
            let mut order = vec![0usize, 1, 2, 3];
            for i in (1..4).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            order
        }).collect();
        let mrr = metrics::mrr_at_k(&labels, &rankings, 3);
        prop_assert!((0.0..=1.0).contains(&mrr));
    }

    #[test]
    fn average_ranks_sum_is_invariant(losses in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 4), 5)) {
        let ranks = metrics::average_ranks(&losses);
        // Ranks of m methods always sum to m(m+1)/2 per dataset.
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - 10.0).abs() < 1e-9, "rank sum {sum}");
    }
}
