//! Evaluation metrics: regression errors, classification scores, and the
//! Mean Reciprocal Rank used for meta-model selection (Table 4).

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Coefficient of determination R².
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let mean = ff_linalg::vector::mean(y_true);
    let ss_tot: f64 = y_true.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum();
    if ss_tot <= 1e-300 {
        if ss_res <= 1e-300 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Classification accuracy.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count() as f64 / y_true.len() as f64
}

/// Macro-averaged F1 score over `n_classes` classes. Classes absent from
/// both truth and prediction contribute F1 = 0 only if they appear in the
/// ground truth (standard macro-F1 over observed classes).
pub fn f1_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut f1s = Vec::new();
    for c in 0..n_classes {
        let tp = y_true
            .iter()
            .zip(y_pred)
            .filter(|(&t, &p)| t == c && p == c)
            .count() as f64;
        let fp = y_true
            .iter()
            .zip(y_pred)
            .filter(|(&t, &p)| t != c && p == c)
            .count() as f64;
        let fn_ = y_true
            .iter()
            .zip(y_pred)
            .filter(|(&t, &p)| t == c && p != c)
            .count() as f64;
        let support = y_true.iter().filter(|&&t| t == c).count();
        if support == 0 {
            continue;
        }
        let denom = 2.0 * tp + fp + fn_;
        f1s.push(if denom == 0.0 { 0.0 } else { 2.0 * tp / denom });
    }
    if f1s.is_empty() {
        0.0
    } else {
        f1s.iter().sum::<f64>() / f1s.len() as f64
    }
}

/// Mean Reciprocal Rank at K: for each sample, the reciprocal rank of the
/// true label within the top-K ranked predictions (0 if absent).
///
/// `rankings[i]` lists class indices ordered from most to least likely.
pub fn mrr_at_k(y_true: &[usize], rankings: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(y_true.len(), rankings.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&truth, ranking) in y_true.iter().zip(rankings) {
        if let Some(pos) = ranking.iter().take(k).position(|&c| c == truth) {
            total += 1.0 / (pos + 1) as f64;
        }
    }
    total / y_true.len() as f64
}

/// Ranks class indices by descending probability for one probability row.
pub fn rank_classes(probs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
    idx
}

/// Average rank (1-based) of each method across datasets, given a loss
/// matrix `losses[dataset][method]` (lower is better). Ties share the
/// average of their rank positions.
pub fn average_ranks(losses: &[Vec<f64>]) -> Vec<f64> {
    if losses.is_empty() {
        return Vec::new();
    }
    let m = losses[0].len();
    let mut sums = vec![0.0; m];
    for row in losses {
        assert_eq!(row.len(), m);
        // Rank with average ties.
        let mut idx: Vec<usize> = (0..m).collect();
        idx.sort_by(|&a, &b| row[a].total_cmp(&row[b]));
        let mut i = 0;
        while i < m {
            let mut j = i;
            while j + 1 < m && row[idx[j + 1]] == row[idx[i]] {
                j += 1;
            }
            let avg_rank = (i + j) as f64 / 2.0 + 1.0;
            for k in i..=j {
                sums[idx[k]] += avg_rank;
            }
            i = j + 1;
        }
    }
    sums.iter().map(|s| s / losses.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_metrics_known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_f1() {
        let t = [0, 0, 1, 1, 2, 2];
        let p = [0, 1, 1, 1, 2, 0];
        assert!((accuracy(&t, &p) - 4.0 / 6.0).abs() < 1e-12);
        // Per-class F1: c0: tp=1 fp=1 fn=1 → 0.5; c1: tp=2 fp=1 fn=0 → 0.8;
        // c2: tp=1 fp=0 fn=1 → 2/3. Macro = (0.5+0.8+0.6667)/3.
        let f1 = f1_macro(&t, &p, 3);
        assert!((f1 - (0.5 + 0.8 + 2.0 / 3.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn f1_skips_classes_without_support() {
        let t = [0, 0, 1];
        let p = [0, 0, 1];
        // Class 2 has no support: macro over classes 0 and 1 only.
        assert!((f1_macro(&t, &p, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_at_k_values() {
        let t = [0, 1, 2];
        let rankings = vec![
            vec![0, 1, 2], // rank 1 → 1.0
            vec![0, 1, 2], // rank 2 → 0.5
            vec![0, 1, 2], // rank 3 → 1/3
        ];
        assert!((mrr_at_k(&t, &rankings, 3) - (1.0 + 0.5 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
        // K = 2 cuts off the third sample.
        assert!((mrr_at_k(&t, &rankings, 2) - (1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_classes_descending() {
        assert_eq!(rank_classes(&[0.1, 0.7, 0.2]), vec![1, 2, 0]);
    }

    #[test]
    fn average_ranks_with_ties() {
        // Two datasets, three methods.
        let losses = vec![vec![1.0, 2.0, 3.0], vec![2.0, 1.0, 1.0]];
        let ranks = average_ranks(&losses);
        assert!((ranks[0] - 2.0).abs() < 1e-12); // (1 + 3)/2
        assert!((ranks[1] - 1.75).abs() < 1e-12); // (2 + 1.5)/2
        assert!((ranks[2] - 2.25).abs() < 1e-12); // (3 + 1.5)/2
    }
}
