//! Composable, tunable forecasting pipelines.
//!
//! The flat portfolio (one [`AlgorithmKind`] = one model fitted on
//! externally engineered features) is generalized here into *pipelines*:
//! ordered stages of registered [`NodeSpec`]s that transform the raw series
//! before an inner regressor, with an optional two-branch shape — a trend
//! branch joined to the lagged-regression branch by a weighted ensemble
//! (FEDOT's `polyfit + lagged→ridge` composition). Every node carries its
//! own namespaced [`ParamDef`]s, so the joint (structure × node × algorithm)
//! space is tunable by the same Bayesian optimizer that tunes the flat
//! space, with the same cross-namespace no-leak guarantee.
//!
//! Three registries mirror [`crate::spec`]:
//! - **nodes** ([`NodeId`] / [`register_node`]) — preprocessing operators
//!   promoted out of the engine's feature-engineering path: lag windowing,
//!   moving-average and Gaussian smoothing, differencing, polynomial and
//!   EMA trend extraction, and the two-branch join weight;
//! - **pipelines** ([`PipelineId`] / [`register_pipeline`]) — named node
//!   compositions, seeded with seven builtin structures;
//! - the existing **algorithm** registry supplies the inner regressor.
//!
//! A fitted [`PipelineModel`] serializes as **blob v3**, which embeds the
//! full composition (pipeline name, node parameter values, fitted trend
//! state, scalers, inner model). Blob v2 — the flat format — still revives,
//! as a [`RevivedMember::SingleNode`]: a degenerate single-node pipeline
//! whose features are engineered externally. [`decode_member_blob`] accepts
//! both, so federated ensembles may mix generations.
//!
//! **Causality contract:** every transform is strictly causal. The value a
//! pipeline predicts at index `t` depends only on `values[..t]` — trend
//! estimates are either frozen functions of `t` (polynomial, fitted on the
//! training region only) or expanding EMAs of the past, smoothing kernels
//! are one-sided, and lag features end at `t-1`. This is the same
//! no-leakage discipline the engine's feature engineering follows, and it
//! makes one-step-ahead evaluation with true history exact.

use crate::data::{Standardizer, TargetScaler};
use crate::ser::{Reader, SerError, Writer};
use crate::spec::{ParamDef, ParamKind, SpecValue};
use crate::zoo::{build_regressor, AlgorithmKind, HyperParams};
use crate::{ModelError, Regressor};
use ff_linalg::Matrix;
use std::sync::{OnceLock, RwLock};

/// How the pipeline executor interprets a node. Extension nodes reuse one
/// of these roles (with their own parameter domains and defaults); the
/// role, not the node name, is the execution hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Lag-window feature extraction (the mandatory final stage before the
    /// inner regressor).
    Lagged,
    /// Trailing moving-average smoothing of the residual series.
    SmoothMa,
    /// Causal (one-sided) Gaussian smoothing of the residual series.
    SmoothGauss,
    /// Differencing of the residual series (order 0–2).
    Diff,
    /// Polynomial trend fitted on the training region and extrapolated.
    TrendPoly,
    /// Expanding EMA trend (strictly causal level estimate).
    TrendEma,
    /// Weighted ensemble join of the trend branch into the prediction.
    Join,
}

/// One registered pipeline node: a named, namespaced, tunable transform.
pub struct NodeSpec {
    name: String,
    prefix: String,
    role: NodeRole,
    params: Vec<ParamDef>,
}

impl std::fmt::Debug for NodeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSpec")
            .field("name", &self.name)
            .field("prefix", &self.prefix)
            .field("role", &self.role)
            .field("params", &self.params)
            .finish()
    }
}

impl NodeSpec {
    /// Creates a node spec. Every param key must carry `prefix`, and every
    /// param must declare its warm value via [`ParamDef::with_warm`]
    /// (nodes have no grid to derive one from).
    pub fn new(
        name: impl Into<String>,
        prefix: impl Into<String>,
        role: NodeRole,
        params: Vec<ParamDef>,
    ) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            prefix: prefix.into(),
            role,
            params,
        }
    }

    /// Display name (e.g. `lagged`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Namespace prefix every param key starts with (e.g. `node_lag_`).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Execution role.
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Namespaced parameter definitions.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }
}

/// Handle into the node registry; the first seven indices are the builtin
/// nodes (associated consts below).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u16);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec().name())
    }
}

impl NodeId {
    /// Lag-window features.
    pub const LAGGED: NodeId = NodeId(0);
    /// Moving-average smoothing.
    pub const SMOOTH_MA: NodeId = NodeId(1);
    /// Causal Gaussian smoothing.
    pub const SMOOTH_GAUSS: NodeId = NodeId(2);
    /// Differencing.
    pub const DIFF: NodeId = NodeId(3);
    /// Polynomial trend branch.
    pub const TREND_POLY: NodeId = NodeId(4);
    /// EMA trend branch.
    pub const TREND_EMA: NodeId = NodeId(5);
    /// Two-branch ensemble join.
    pub const JOIN: NodeId = NodeId(6);

    /// The seven builtin nodes in registry order.
    pub fn builtin() -> [NodeId; 7] {
        [
            NodeId::LAGGED,
            NodeId::SMOOTH_MA,
            NodeId::SMOOTH_GAUSS,
            NodeId::DIFF,
            NodeId::TREND_POLY,
            NodeId::TREND_EMA,
            NodeId::JOIN,
        ]
    }

    /// Every registered node (builtins first).
    pub fn all() -> Vec<NodeId> {
        let n = node_registry().read().expect("node registry lock").len();
        (0..n as u16).map(NodeId).collect()
    }

    /// This node's spec.
    pub fn spec(&self) -> &'static NodeSpec {
        node_registry().read().expect("node registry lock")[self.0 as usize]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.spec().name.as_str()
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<NodeId> {
        let reg = node_registry().read().expect("node registry lock");
        reg.iter()
            .position(|s| s.name() == name)
            .map(|i| NodeId(i as u16))
    }

    /// Registry index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

fn node_registry() -> &'static RwLock<Vec<&'static NodeSpec>> {
    static REGISTRY: OnceLock<RwLock<Vec<&'static NodeSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(
            builtin_nodes()
                .into_iter()
                .map(|s| &*Box::leak(Box::new(s)))
                .collect(),
        )
    })
}

/// Registers an extension node and returns its handle. Mirrors the
/// algorithm-registry contract: non-empty unique name; `_`-terminated
/// prefix disjoint from every registered node prefix; every param key
/// carries the prefix; keys unique; every param warm value finite (node
/// params are numeric-only so they serialize into blob v3 as `f64`s).
pub fn register_node(spec: NodeSpec) -> std::result::Result<NodeId, String> {
    if spec.name.is_empty() {
        return Err("node name must be non-empty".into());
    }
    if spec.prefix.is_empty() || !spec.prefix.ends_with('_') {
        return Err(format!(
            "node prefix {:?} must be non-empty and end in '_'",
            spec.prefix
        ));
    }
    for pd in &spec.params {
        if !pd.key().starts_with(spec.prefix.as_str()) {
            return Err(format!(
                "node param {} must carry the {} namespace prefix",
                pd.key(),
                spec.prefix
            ));
        }
        if matches!(pd.kind(), ParamKind::Categorical { .. }) {
            return Err(format!(
                "node param {} is categorical; node params must be numeric \
                 (encode choices as distinct nodes)",
                pd.key()
            ));
        }
        if !pd.warm().as_f64().is_finite() {
            return Err(format!(
                "node param {} has no warm value (use ParamDef::with_warm)",
                pd.key()
            ));
        }
    }
    let mut keys: Vec<&str> = spec.params.iter().map(|p| p.key()).collect();
    keys.sort_unstable();
    if keys.windows(2).any(|w| w[0] == w[1]) {
        return Err(format!("node {} has duplicate param keys", spec.name));
    }
    let mut reg = node_registry().write().expect("node registry lock");
    if reg.len() >= u16::MAX as usize {
        return Err("node registry full".into());
    }
    for existing in reg.iter() {
        if existing.name() == spec.name {
            return Err(format!("node {} is already registered", spec.name));
        }
        if existing.prefix.starts_with(spec.prefix.as_str())
            || spec.prefix.starts_with(existing.prefix.as_str())
        {
            return Err(format!(
                "node prefix {} collides with registered prefix {}",
                spec.prefix, existing.prefix
            ));
        }
    }
    let idx = reg.len() as u16;
    reg.push(Box::leak(Box::new(spec)));
    Ok(NodeId(idx))
}

fn builtin_nodes() -> Vec<NodeSpec> {
    vec![
        NodeSpec::new(
            "lagged",
            "node_lag_",
            NodeRole::Lagged,
            vec![
                ParamDef::extra("node_lag_window", ParamKind::Integer { lo: 2, hi: 20 }, 8.0)
                    .with_warm(SpecValue::Int(8)),
            ],
        ),
        NodeSpec::new(
            "smooth_ma",
            "node_ma_",
            NodeRole::SmoothMa,
            vec![
                ParamDef::extra("node_ma_width", ParamKind::Integer { lo: 2, hi: 12 }, 3.0)
                    .with_warm(SpecValue::Int(3)),
            ],
        ),
        NodeSpec::new(
            "smooth_gauss",
            "node_gauss_",
            NodeRole::SmoothGauss,
            vec![ParamDef::extra(
                "node_gauss_sigma",
                ParamKind::Continuous { lo: 0.5, hi: 5.0 },
                1.5,
            )
            .with_warm(SpecValue::Float(1.5))],
        ),
        NodeSpec::new(
            "diff",
            "node_diff_",
            NodeRole::Diff,
            vec![
                ParamDef::extra("node_diff_order", ParamKind::Integer { lo: 0, hi: 2 }, 1.0)
                    .with_warm(SpecValue::Int(1)),
            ],
        ),
        NodeSpec::new(
            "trend_poly",
            "node_poly_",
            NodeRole::TrendPoly,
            vec![
                ParamDef::extra("node_poly_degree", ParamKind::Integer { lo: 1, hi: 3 }, 2.0)
                    .with_warm(SpecValue::Int(2)),
            ],
        ),
        NodeSpec::new(
            "trend_ema",
            "node_ema_",
            NodeRole::TrendEma,
            vec![
                ParamDef::extra("node_ema_span", ParamKind::Integer { lo: 5, hi: 60 }, 12.0)
                    .with_warm(SpecValue::Int(12)),
            ],
        ),
        NodeSpec::new(
            "join",
            "node_join_",
            NodeRole::Join,
            vec![ParamDef::extra(
                "node_join_weight",
                ParamKind::Continuous { lo: 0.0, hi: 1.0 },
                1.0,
            )
            .with_warm(SpecValue::Float(1.0))],
        ),
    ]
}

/// A named pipeline structure: ordered stages of registered nodes, with an
/// optional trend branch joined by [`NodeRole::Join`].
pub struct PipelineSpec {
    name: String,
    nodes: Vec<NodeId>,
}

impl std::fmt::Debug for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSpec")
            .field("name", &self.name)
            .field("nodes", &self.nodes)
            .finish()
    }
}

impl PipelineSpec {
    /// Creates a pipeline spec (validated at [`register_pipeline`] time).
    pub fn new(name: impl Into<String>, nodes: Vec<NodeId>) -> PipelineSpec {
        PipelineSpec {
            name: name.into(),
            nodes,
        }
    }

    /// Display name (e.g. `trend_lagged`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages, in declaration order (trend branch first, then the
    /// join, then residual preprocessing, then the lag window).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Every node [`ParamDef`] of this pipeline, in node order. This is
    /// the flattened tunable surface of the structure.
    pub fn params(&self) -> Vec<&'static ParamDef> {
        self.nodes
            .iter()
            .flat_map(|n| n.spec().params().iter())
            .collect()
    }

    /// Decodes this pipeline's node params from `lookup` into the bundle's
    /// `extras`; missing keys fall back to the node's warm value. Keys of
    /// nodes outside this structure are never consulted — the namespacing
    /// makes cross-branch leaks impossible by construction (the same
    /// contract as `AlgorithmSpec::decode`).
    pub fn decode_into(&self, hp: &mut HyperParams, lookup: impl Fn(&str) -> Option<SpecValue>) {
        for pd in self.params() {
            let value = lookup(pd.key()).map(|v| pd.canonical(&v));
            pd.apply(hp, value.as_ref().unwrap_or(pd.warm()));
        }
    }

    /// Encodes the bundle's node params into `(key, value)` pairs, one per
    /// node param, canonicalized. Inverse of [`PipelineSpec::decode_into`].
    pub fn encode(&self, hp: &HyperParams) -> Vec<(String, SpecValue)> {
        self.params()
            .iter()
            .map(|pd| (pd.key().to_string(), pd.read(hp)))
            .collect()
    }

    /// The warm-start `(key, value)` pairs of this structure.
    pub fn warm_values(&self) -> Vec<(String, SpecValue)> {
        self.params()
            .iter()
            .map(|pd| (pd.key().to_string(), pd.warm().clone()))
            .collect()
    }
}

/// Handle into the pipeline registry; the first seven indices are the
/// builtin structures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(u16);

impl std::fmt::Debug for PipelineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec().name())
    }
}

impl PipelineId {
    /// Pure lag-window regression (the flat portfolio's shape).
    pub const LAGGED: PipelineId = PipelineId(0);
    /// Moving-average smoothing → lagged regression.
    pub const SMOOTH_LAGGED: PipelineId = PipelineId(1);
    /// Gaussian smoothing → lagged regression.
    pub const GAUSS_LAGGED: PipelineId = PipelineId(2);
    /// Differencing → lagged regression.
    pub const DIFF_LAGGED: PipelineId = PipelineId(3);
    /// FEDOT's two-branch shape: polynomial trend branch + lagged
    /// regression branch → weighted ensemble join.
    pub const TREND_LAGGED: PipelineId = PipelineId(4);
    /// Two-branch with smoothing on the residual branch.
    pub const TREND_SMOOTH_LAGGED: PipelineId = PipelineId(5);
    /// Two-branch with an EMA (expanding, causal) trend branch.
    pub const EMA_TREND_LAGGED: PipelineId = PipelineId(6);

    /// The seven builtin structures in registry order.
    pub fn builtin() -> [PipelineId; 7] {
        [
            PipelineId::LAGGED,
            PipelineId::SMOOTH_LAGGED,
            PipelineId::GAUSS_LAGGED,
            PipelineId::DIFF_LAGGED,
            PipelineId::TREND_LAGGED,
            PipelineId::TREND_SMOOTH_LAGGED,
            PipelineId::EMA_TREND_LAGGED,
        ]
    }

    /// Every registered pipeline (builtins first).
    pub fn all() -> Vec<PipelineId> {
        let n = pipeline_registry()
            .read()
            .expect("pipeline registry lock")
            .len();
        (0..n as u16).map(PipelineId).collect()
    }

    /// This pipeline's spec.
    pub fn spec(&self) -> &'static PipelineSpec {
        pipeline_registry().read().expect("pipeline registry lock")[self.0 as usize]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.spec().name.as_str()
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<PipelineId> {
        let reg = pipeline_registry().read().expect("pipeline registry lock");
        reg.iter()
            .position(|s| s.name() == name)
            .map(|i| PipelineId(i as u16))
    }

    /// Registry index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`PipelineId::index`].
    pub fn from_index(idx: usize) -> Option<PipelineId> {
        let n = pipeline_registry()
            .read()
            .expect("pipeline registry lock")
            .len();
        (idx < n).then_some(PipelineId(idx as u16))
    }
}

fn pipeline_registry() -> &'static RwLock<Vec<&'static PipelineSpec>> {
    static REGISTRY: OnceLock<RwLock<Vec<&'static PipelineSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(
            builtin_pipelines()
                .into_iter()
                .map(|s| &*Box::leak(Box::new(s)))
                .collect(),
        )
    })
}

/// Registers an extension pipeline structure. Validation enforces the
/// executable-shape contract: non-empty unique name; exactly one
/// [`NodeRole::Lagged`] node; at most one node per role; a
/// [`NodeRole::Join`] node exactly when a trend node is present (the join
/// is what merges the two branches); no duplicate nodes.
pub fn register_pipeline(spec: PipelineSpec) -> std::result::Result<PipelineId, String> {
    if spec.name.is_empty() {
        return Err("pipeline name must be non-empty".into());
    }
    if spec.nodes.is_empty() {
        return Err(format!("pipeline {} has no nodes", spec.name));
    }
    let mut role_counts = [0usize; 7];
    for n in &spec.nodes {
        role_counts[n.spec().role() as usize] += 1;
    }
    let count = |r: NodeRole| role_counts[r as usize];
    if count(NodeRole::Lagged) != 1 {
        return Err(format!(
            "pipeline {} must contain exactly one lagged node",
            spec.name
        ));
    }
    if role_counts.iter().any(|&c| c > 1) {
        return Err(format!(
            "pipeline {} has more than one node of the same role",
            spec.name
        ));
    }
    let trend = count(NodeRole::TrendPoly) + count(NodeRole::TrendEma);
    if trend > 1 {
        return Err(format!(
            "pipeline {} has more than one trend node",
            spec.name
        ));
    }
    if (trend == 1) != (count(NodeRole::Join) == 1) {
        return Err(format!(
            "pipeline {} must pair a trend branch with exactly one join node",
            spec.name
        ));
    }
    let mut ids: Vec<NodeId> = spec.nodes.clone();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(format!("pipeline {} repeats a node", spec.name));
    }
    let mut reg = pipeline_registry().write().expect("pipeline registry lock");
    if reg.len() >= u16::MAX as usize {
        return Err("pipeline registry full".into());
    }
    if reg.iter().any(|p| p.name() == spec.name) {
        return Err(format!("pipeline {} is already registered", spec.name));
    }
    let idx = reg.len() as u16;
    reg.push(Box::leak(Box::new(spec)));
    Ok(PipelineId(idx))
}

fn builtin_pipelines() -> Vec<PipelineSpec> {
    vec![
        PipelineSpec::new("lagged", vec![NodeId::LAGGED]),
        PipelineSpec::new("smooth_lagged", vec![NodeId::SMOOTH_MA, NodeId::LAGGED]),
        PipelineSpec::new("gauss_lagged", vec![NodeId::SMOOTH_GAUSS, NodeId::LAGGED]),
        PipelineSpec::new("diff_lagged", vec![NodeId::DIFF, NodeId::LAGGED]),
        PipelineSpec::new(
            "trend_lagged",
            vec![NodeId::TREND_POLY, NodeId::JOIN, NodeId::LAGGED],
        ),
        PipelineSpec::new(
            "trend_smooth_lagged",
            vec![
                NodeId::TREND_POLY,
                NodeId::JOIN,
                NodeId::SMOOTH_MA,
                NodeId::LAGGED,
            ],
        ),
        PipelineSpec::new(
            "ema_trend_lagged",
            vec![NodeId::TREND_EMA, NodeId::JOIN, NodeId::LAGGED],
        ),
    ]
}

// --- Execution ------------------------------------------------------------

/// Causal expanding-EMA level estimate: `out[t]` summarizes `values[..t]`
/// (strictly — `out[t]` never sees `values[t]`), seeded at the first
/// observation. Shared by the EMA trend node and the engine's
/// feature-engineering trend feature (which fixes `span = (n/10)` clamped
/// to `[5, 60]`).
pub fn causal_ema_trend(values: &[f64], span: f64) -> Vec<f64> {
    let alpha = 2.0 / (span + 1.0);
    let mut out = Vec::with_capacity(values.len());
    let mut ema = values.first().copied().unwrap_or(0.0);
    for (t, &v) in values.iter().enumerate() {
        out.push(ema); // summary of values[..t]
        if t == 0 {
            ema = v; // seed with the first observation
        } else {
            ema = (1.0 - alpha) * ema + alpha * v;
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Smoothing {
    None,
    Ma { width: usize },
    Gauss { sigma: f64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TrendKind {
    None,
    Poly { degree: usize },
    Ema { span: f64 },
}

/// The numeric view of one structure's node params, extracted from the
/// bundle with domains clamped to executable ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PipelineParams {
    window: usize,
    smoothing: Smoothing,
    diff: usize,
    trend: TrendKind,
    join_weight: f64,
}

impl PipelineParams {
    fn extract(spec: &PipelineSpec, hp: &HyperParams) -> PipelineParams {
        let mut p = PipelineParams {
            window: 8,
            smoothing: Smoothing::None,
            diff: 0,
            trend: TrendKind::None,
            join_weight: 1.0,
        };
        for node in spec.nodes() {
            let ns = node.spec();
            let read = |i: usize| ns.params()[i].read(hp).as_f64();
            match ns.role() {
                NodeRole::Lagged => p.window = (read(0).round() as i64).clamp(1, 64) as usize,
                NodeRole::SmoothMa => {
                    p.smoothing = Smoothing::Ma {
                        width: (read(0).round() as i64).clamp(2, 64) as usize,
                    }
                }
                NodeRole::SmoothGauss => {
                    p.smoothing = Smoothing::Gauss {
                        sigma: read(0).clamp(0.3, 16.0),
                    }
                }
                NodeRole::Diff => p.diff = (read(0).round() as i64).clamp(0, 2) as usize,
                NodeRole::TrendPoly => {
                    p.trend = TrendKind::Poly {
                        degree: (read(0).round() as i64).clamp(1, 3) as usize,
                    }
                }
                NodeRole::TrendEma => {
                    p.trend = TrendKind::Ema {
                        span: read(0).clamp(2.0, 512.0),
                    }
                }
                NodeRole::Join => p.join_weight = read(0).clamp(0.0, 1.0),
            }
        }
        p
    }
}

/// Fitted trend-branch state, serialized into blob v3.
#[derive(Debug, Clone, PartialEq)]
enum TrendModel {
    None,
    /// Frozen polynomial in normalized time `t / (n_fit - 1)`, fitted by
    /// least squares on the training region and extrapolated beyond it.
    Poly {
        coeffs: Vec<f64>,
        n_fit: usize,
    },
    /// Stateless causal EMA recomputed from true history at predict time.
    Ema {
        span: f64,
    },
}

impl TrendModel {
    fn fit(kind: TrendKind, values: &[f64], fit_end: usize) -> TrendModel {
        match kind {
            TrendKind::None => TrendModel::None,
            TrendKind::Ema { span } => TrendModel::Ema { span },
            TrendKind::Poly { degree } => {
                let y = &values[..fit_end];
                let degree = degree.min(fit_end.saturating_sub(2));
                let coeffs = polyfit(y, degree)
                    .unwrap_or_else(|| vec![y.iter().sum::<f64>() / y.len().max(1) as f64]);
                TrendModel::Poly {
                    coeffs,
                    n_fit: fit_end,
                }
            }
        }
    }

    /// The trend series over `0..end` (strictly causal; see module docs).
    fn series(&self, values: &[f64], end: usize) -> Vec<f64> {
        match self {
            TrendModel::None => vec![0.0; end],
            TrendModel::Ema { span } => causal_ema_trend(&values[..end], *span),
            TrendModel::Poly { coeffs, n_fit } => {
                let denom = (n_fit.saturating_sub(1)).max(1) as f64;
                (0..end)
                    .map(|t| {
                        let x = t as f64 / denom;
                        coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
                    })
                    .collect()
            }
        }
    }
}

/// Least-squares polynomial fit of `y[t]` in normalized time
/// `x = t / (n-1)`, returning coefficients low-order first. `None` when the
/// normal equations are singular.
fn polyfit(y: &[f64], degree: usize) -> Option<Vec<f64>> {
    let n = y.len();
    if n == 0 {
        return None;
    }
    let p = degree + 1;
    let denom = (n - 1).max(1) as f64;
    // Normal equations: A[j][k] = Σ x^(j+k), b[j] = Σ x^j y.
    let mut a = vec![vec![0.0; p]; p];
    let mut b = vec![0.0; p];
    for (t, &yt) in y.iter().enumerate() {
        let x = t as f64 / denom;
        let mut xp = 1.0;
        let mut powers = Vec::with_capacity(2 * p - 1);
        for _ in 0..(2 * p - 1) {
            powers.push(xp);
            xp *= x;
        }
        for j in 0..p {
            b[j] += powers[j] * yt;
            for k in 0..p {
                a[j][k] += powers[j + k];
            }
        }
    }
    solve_dense(&mut a, &mut b)
}

/// Gaussian elimination with partial pivoting for the tiny (≤ 4×4) trend
/// systems. Returns `None` on a (near-)singular matrix.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut v = b[col];
        for k in (col + 1)..n {
            v -= a[col][k] * x[k];
        }
        x[col] = v / a[col][col];
    }
    x.iter().all(|v| v.is_finite()).then_some(x)
}

/// The causal transform chain applied to a raw series before lag-window
/// extraction: subtract the (weighted) trend, difference, smooth.
struct Transformed {
    /// `join_weight · trend[t]` — what the prediction adds back.
    base: Vec<f64>,
    /// Residual `values[t] − base[t]`.
    r: Vec<f64>,
    /// Smoothed, differenced residual; defined for `t ≥ diff` (leading
    /// entries are zeros and never read).
    s: Vec<f64>,
    /// Differenced residual (the regression target); same domain as `s`.
    z: Vec<f64>,
}

fn transform(values: &[f64], end: usize, trend: &TrendModel, p: &PipelineParams) -> Transformed {
    let tr = trend.series(values, end);
    let base: Vec<f64> = tr.iter().map(|&v| p.join_weight * v).collect();
    let r: Vec<f64> = values[..end]
        .iter()
        .zip(&base)
        .map(|(&v, &b)| v - b)
        .collect();
    let d = p.diff;
    let mut z = vec![0.0; end];
    for t in d..end {
        z[t] = match d {
            0 => r[t],
            1 => r[t] - r[t - 1],
            _ => r[t] - 2.0 * r[t - 1] + r[t - 2],
        };
    }
    let s = match p.smoothing {
        Smoothing::None => z.clone(),
        Smoothing::Ma { width } => {
            let mut s = vec![0.0; end];
            for t in d..end {
                let lo = (t + 1).saturating_sub(width).max(d);
                let k = (t + 1 - lo) as f64;
                s[t] = z[lo..=t].iter().sum::<f64>() / k;
            }
            s
        }
        Smoothing::Gauss { sigma } => {
            let reach = (3.0 * sigma).ceil() as usize;
            let w: Vec<f64> = (0..=reach)
                .map(|j| (-((j * j) as f64) / (2.0 * sigma * sigma)).exp())
                .collect();
            let mut s = vec![0.0; end];
            for t in d..end {
                let mut num = 0.0;
                let mut den = 0.0;
                for (j, &wj) in w.iter().enumerate() {
                    if t < d + j {
                        break;
                    }
                    num += wj * z[t - j];
                    den += wj;
                }
                s[t] = num / den;
            }
            s
        }
    };
    Transformed { base, r, s, z }
}

// --- The fitted pipeline model --------------------------------------------

/// A fitted pipeline: trend-branch state, the causal transform parameters,
/// locally fitted scalers, and the inner regressor. Operates on the raw
/// series (not pre-engineered matrices) and serializes as blob v3.
pub struct PipelineModel {
    pipeline: PipelineId,
    algorithm: AlgorithmKind,
    /// Canonical node param values in [`PipelineSpec::params`] order — the
    /// blob's record of the composition's tuning.
    node_values: Vec<f64>,
    params: PipelineParams,
    trend: TrendModel,
    scaler: Standardizer,
    yscaler: TargetScaler,
    model: Box<dyn Regressor + Send + Sync>,
}

impl std::fmt::Debug for PipelineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineModel")
            .field("pipeline", &self.pipeline)
            .field("algorithm", &self.algorithm)
            .field("node_values", &self.node_values)
            .field("params", &self.params)
            .field("trend", &self.trend)
            .finish()
    }
}

impl PipelineModel {
    /// Fits the full pipeline end-to-end on `values[..fit_end]`: the trend
    /// branch on the training region, then the inner regressor on
    /// standardized lag-window features of the transformed residual. Node
    /// and algorithm params are both read from `hp` (each layer consults
    /// only its own namespace).
    pub fn fit(
        pipeline: PipelineId,
        algorithm: AlgorithmKind,
        hp: &HyperParams,
        values: &[f64],
        fit_end: usize,
    ) -> crate::Result<PipelineModel> {
        let spec = pipeline.spec();
        let params = PipelineParams::extract(spec, hp);
        if fit_end > values.len() {
            return Err(ModelError::InvalidData(format!(
                "fit_end {fit_end} past series length {}",
                values.len()
            )));
        }
        let t0 = params.diff + params.window;
        if fit_end < t0 + 4 {
            return Err(ModelError::InvalidData(format!(
                "series too short for pipeline {}: need > {} training points, have {fit_end}",
                pipeline.name(),
                t0 + 3
            )));
        }
        let trend = TrendModel::fit(params.trend, values, fit_end);
        let tf = transform(values, fit_end, &trend, &params);
        let rows = fit_end - t0;
        let x = Matrix::from_fn(rows, params.window, |i, j| tf.s[t0 + i - 1 - j]);
        let y: Vec<f64> = (t0..fit_end).map(|t| tf.z[t]).collect();
        let scaler = Standardizer::fit(&x);
        let yscaler = TargetScaler::fit(&y);
        let xs = scaler.transform(&x);
        let ys: Vec<f64> = y.iter().map(|&v| yscaler.scale(v)).collect();
        let mut model = build_regressor(algorithm, hp);
        model.fit(&xs, &ys)?;
        let node_values = spec
            .params()
            .iter()
            .map(|pd| pd.read(hp).as_f64())
            .collect();
        Ok(PipelineModel {
            pipeline,
            algorithm,
            node_values,
            params,
            trend,
            scaler,
            yscaler,
            model,
        })
    }

    /// The structure this model was fitted as.
    pub fn pipeline(&self) -> PipelineId {
        self.pipeline
    }

    /// The inner regressor's algorithm.
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// Earliest index this pipeline can predict (it needs `diff + window`
    /// true past values).
    pub fn min_predict_index(&self) -> usize {
        self.params.diff + self.params.window
    }

    /// One-step-ahead predictions for indices `start..end` given the true
    /// history: the prediction at `t` uses `values[..t]` only (transforms
    /// are recomputed causally from the actual series). This matches the
    /// engine's evaluation protocol, where every test row conditions on
    /// real lagged observations.
    pub fn predict_range(
        &self,
        values: &[f64],
        start: usize,
        end: usize,
    ) -> crate::Result<Vec<f64>> {
        let t0 = self.min_predict_index();
        if start < t0 || start >= end || end > values.len() {
            return Err(ModelError::InvalidData(format!(
                "bad predict range {start}..{end} (min {t0}, len {})",
                values.len()
            )));
        }
        let tf = transform(values, end, &self.trend, &self.params);
        let rows = end - start;
        let x = Matrix::from_fn(rows, self.params.window, |i, j| tf.s[start + i - 1 - j]);
        let xs = self.scaler.transform(&x);
        let zhat = self.model.predict(&xs)?;
        let d = self.params.diff;
        Ok((start..end)
            .zip(zhat)
            .map(|(t, zh)| {
                let z = self.yscaler.unscale(zh);
                let rhat = match d {
                    0 => z,
                    1 => z + tf.r[t - 1],
                    _ => z + 2.0 * tf.r[t - 1] - tf.r[t - 2],
                };
                tf.base[t] + rhat
            })
            .collect())
    }

    /// Serializes as blob v3: the full composition (structure name, node
    /// values, trend state), the local scalers, and the inner model —
    /// either the algorithm's codec bytes ([`Regressor::to_blob`]) or, for
    /// affine models without a codec, probed `[coef.., intercept]` in the
    /// standardized space. Errors when the model is neither serializable
    /// nor affine.
    pub fn to_blob(&self) -> std::result::Result<Vec<u8>, String> {
        let mut w = Writer::new();
        w.u8(3); // blob version
        w.str(self.pipeline.name());
        w.str(self.algorithm.name());
        w.f64s(&self.node_values);
        match &self.trend {
            TrendModel::None => w.u8(0),
            TrendModel::Poly { coeffs, n_fit } => {
                w.u8(1);
                w.f64s(coeffs);
                w.u32(*n_fit as u32);
            }
            TrendModel::Ema { span } => {
                w.u8(2);
                w.f64(*span);
            }
        }
        w.f64s(self.scaler.means());
        w.f64s(self.scaler.stds());
        w.f64(self.yscaler.mean);
        w.f64(self.yscaler.std);
        match self.model.to_blob() {
            Some(bytes) => {
                w.u8(1);
                w.bytes(&bytes);
            }
            None => {
                let affine =
                    probe_affine(self.model.as_ref(), self.scaler.dim()).ok_or_else(|| {
                        format!(
                            "pipeline inner model {} is neither blob-serializable nor affine",
                            self.algorithm.name()
                        )
                    })?;
                w.u8(0);
                w.f64s(&affine);
            }
        }
        Ok(w.finish())
    }

    /// Revives a blob-v3 pipeline. Inverse of [`PipelineModel::to_blob`].
    pub fn from_blob(blob: &[u8]) -> std::result::Result<PipelineModel, String> {
        let err = |e: SerError| e.to_string();
        let mut r = Reader::new(blob);
        let version = r.u8().map_err(err)?;
        if version != 3 {
            return Err(format!("unsupported pipeline blob version {version}"));
        }
        let pname = r.str(256).map_err(err)?.to_string();
        let pipeline = PipelineId::from_name(&pname)
            .ok_or_else(|| format!("blob names unregistered pipeline {pname:?}"))?;
        let aname = r.str(256).map_err(err)?.to_string();
        let algorithm = AlgorithmKind::from_name(&aname)
            .ok_or_else(|| format!("blob names unregistered algorithm {aname:?}"))?;
        let node_values = r.f64s(4096).map_err(err)?;
        let spec = pipeline.spec();
        let defs = spec.params();
        if node_values.len() != defs.len() {
            return Err(format!(
                "pipeline {pname} expects {} node values, blob has {}",
                defs.len(),
                node_values.len()
            ));
        }
        let mut hp = HyperParams::default();
        for (pd, &v) in defs.iter().zip(&node_values) {
            pd.apply(&mut hp, &SpecValue::Float(v));
        }
        let params = PipelineParams::extract(spec, &hp);
        let trend = match r.u8().map_err(err)? {
            0 => TrendModel::None,
            1 => {
                let coeffs = r.f64s(16).map_err(err)?;
                let n_fit = r.u32().map_err(err)? as usize;
                TrendModel::Poly { coeffs, n_fit }
            }
            2 => TrendModel::Ema {
                span: r.f64().map_err(err)?,
            },
            t => return Err(format!("unknown trend tag {t}")),
        };
        let means = r.f64s(100_000).map_err(err)?;
        let stds = r.f64s(100_000).map_err(err)?;
        if means.len() != stds.len() {
            return Err("scaler shape mismatch".into());
        }
        let ymean = r.f64().map_err(err)?;
        let ystd = r.f64().map_err(err)?;
        let model: Box<dyn Regressor + Send + Sync> = match r.u8().map_err(err)? {
            1 => {
                let bytes = r.bytes(100_000_000).map_err(err)?;
                algorithm.spec().deserialize_model(bytes)?
            }
            0 => {
                let affine = r.f64s(100_000).map_err(err)?;
                if affine.len() != means.len() + 1 {
                    return Err("affine parameter shape mismatch".into());
                }
                Box::new(AffineModel {
                    coef: affine[..means.len()].to_vec(),
                    intercept: affine[means.len()],
                })
            }
            k => return Err(format!("unknown model kind {k}")),
        };
        Ok(PipelineModel {
            pipeline,
            algorithm,
            node_values,
            params,
            trend,
            scaler: Standardizer::from_parts(means, stds),
            yscaler: TargetScaler {
                mean: ymean,
                std: ystd.max(1e-12),
            },
            model,
        })
    }
}

/// Probes an affine predictor for `[coef.., intercept]` with unit vectors —
/// exact for any affine model regardless of internal standardization.
/// `None` when prediction fails or the model is not usable on a zero row.
fn probe_affine(model: &dyn Regressor, p: usize) -> Option<Vec<f64>> {
    let mut probe = Matrix::zeros(p + 1, p);
    for j in 0..p {
        probe.set(j + 1, j, 1.0);
    }
    let pred = model.predict(&probe).ok()?;
    let intercept = pred[0];
    let mut out: Vec<f64> = (0..p).map(|j| pred[j + 1] - intercept).collect();
    out.push(intercept);
    out.iter().all(|v| v.is_finite()).then_some(out)
}

/// A revived affine inner model (blob-v3 `model_kind = 0`): predicts
/// `coef·x + intercept` in the standardized feature space.
#[derive(Debug, Clone)]
struct AffineModel {
    coef: Vec<f64>,
    intercept: f64,
}

impl Regressor for AffineModel {
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> crate::Result<()> {
        Err(ModelError::InvalidData(
            "revived affine models are frozen".into(),
        ))
    }
    fn predict(&self, x: &Matrix) -> crate::Result<Vec<f64>> {
        if x.cols() != self.coef.len() {
            return Err(ModelError::InvalidData(format!(
                "{} cols vs {} coefficients",
                x.cols(),
                self.coef.len()
            )));
        }
        Ok((0..x.rows())
            .map(|i| ff_linalg::vector::dot(x.row(i), &self.coef) + self.intercept)
            .collect())
    }
}

// --- The member codec (blob v2 + v3) --------------------------------------

/// One revived federated-ensemble member. v3 blobs revive as full
/// pipelines over the raw series; v2 blobs revive as *single-node
/// pipelines* — the model plus its local scalers, applied to externally
/// engineered feature rows (the flat portfolio's shape).
pub enum RevivedMember {
    /// A flat (blob-v2) member: inner model + local scalers, fed
    /// pre-engineered feature matrices.
    SingleNode {
        /// The member's local feature scaler.
        scaler: Standardizer,
        /// The member's local target scaler.
        yscaler: TargetScaler,
        /// The revived inner model.
        model: Box<dyn Regressor + Send + Sync>,
    },
    /// A full (blob-v3) pipeline member operating on the raw series.
    Pipeline(Box<PipelineModel>),
}

impl RevivedMember {
    /// Expected engineered-feature dimension (`None` for pipeline members,
    /// which consume the raw series instead).
    pub fn feature_dim(&self) -> Option<usize> {
        match self {
            RevivedMember::SingleNode { scaler, .. } => Some(scaler.dim()),
            RevivedMember::Pipeline(_) => None,
        }
    }

    /// Predicts from pre-engineered feature rows (single-node members
    /// only).
    pub fn predict_features(&self, x: &Matrix) -> std::result::Result<Vec<f64>, String> {
        match self {
            RevivedMember::SingleNode {
                scaler,
                yscaler,
                model,
            } => {
                if scaler.dim() != x.cols() {
                    return Err("member dimension mismatch".into());
                }
                let xs = scaler.transform(x);
                let pred = model.predict(&xs).map_err(|e| e.to_string())?;
                Ok(pred.iter().map(|&v| yscaler.unscale(v)).collect())
            }
            RevivedMember::Pipeline(_) => {
                Err("pipeline members predict from the raw series".into())
            }
        }
    }

    /// Predicts indices `start..end` from the raw series with true history
    /// (pipeline members only).
    pub fn predict_series(
        &self,
        values: &[f64],
        start: usize,
        end: usize,
    ) -> std::result::Result<Vec<f64>, String> {
        match self {
            RevivedMember::Pipeline(m) => m
                .predict_range(values, start, end)
                .map_err(|e| e.to_string()),
            RevivedMember::SingleNode { .. } => {
                Err("single-node members predict from engineered features".into())
            }
        }
    }
}

/// Encodes a flat (non-pipeline) ensemble-union contribution as blob v2:
/// the algorithm name, the local scalers, and the model's codec bytes with
/// the model section trailing the framed header. This is the wire form the
/// PR-2 clients shipped; it is kept bit-compatible so old blobs revive.
pub fn encode_external_blob(
    algo: AlgorithmKind,
    scaler: &Standardizer,
    yscaler: &TargetScaler,
    model_bytes: &[u8],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(2); // blob version
    w.str(algo.name());
    w.f64s(scaler.means());
    w.f64s(scaler.stds());
    w.f64(yscaler.mean);
    w.f64(yscaler.std);
    w.u32(model_bytes.len() as u32);
    let mut out = w.finish();
    out.extend_from_slice(model_bytes);
    out
}

/// Decodes any supported member blob: v2 ([`encode_external_blob`]) →
/// [`RevivedMember::SingleNode`], v3 ([`PipelineModel::to_blob`]) →
/// [`RevivedMember::Pipeline`].
pub fn decode_member_blob(blob: &[u8]) -> std::result::Result<RevivedMember, String> {
    match blob.first() {
        Some(2) => decode_v2_blob(blob),
        Some(3) => PipelineModel::from_blob(blob).map(|m| RevivedMember::Pipeline(Box::new(m))),
        Some(v) => Err(format!("unsupported blob version {v}")),
        None => Err("empty blob".into()),
    }
}

fn decode_v2_blob(blob: &[u8]) -> std::result::Result<RevivedMember, String> {
    let err = |e: SerError| e.to_string();
    let mut r = Reader::new(blob);
    let version = r.u8().map_err(err)?;
    if version != 2 {
        return Err(format!("unsupported blob version {version}"));
    }
    let name = r.str(256).map_err(err)?.to_string();
    let algo = AlgorithmKind::from_name(&name)
        .ok_or_else(|| format!("blob names unregistered algorithm {name:?}"))?;
    let means = r.f64s(100_000).map_err(err)?;
    let stds = r.f64s(100_000).map_err(err)?;
    if means.len() != stds.len() {
        return Err("scaler shape mismatch".into());
    }
    let ymean = r.f64().map_err(err)?;
    let ystd = r.f64().map_err(err)?;
    let model_len = r.u32().map_err(err)? as usize;
    if blob.len() < model_len {
        return Err("truncated model section".into());
    }
    let model_bytes = &blob[blob.len() - model_len..];
    let model = algo.spec().deserialize_model(model_bytes)?;
    Ok(RevivedMember::SingleNode {
        scaler: Standardizer::from_parts(means, stds),
        yscaler: TargetScaler {
            mean: ymean,
            std: ystd.max(1e-12),
        },
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 10.0 + 0.08 * t as f64 + 2.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect()
    }

    #[test]
    fn builtin_node_registry_order_and_roundtrip() {
        let names: Vec<&str> = NodeId::builtin().iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            [
                "lagged",
                "smooth_ma",
                "smooth_gauss",
                "diff",
                "trend_poly",
                "trend_ema",
                "join"
            ]
        );
        for n in NodeId::builtin() {
            assert_eq!(NodeId::from_name(n.name()), Some(n));
        }
    }

    #[test]
    fn builtin_pipeline_registry_order_and_roundtrip() {
        let names: Vec<&str> = PipelineId::builtin().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "lagged",
                "smooth_lagged",
                "gauss_lagged",
                "diff_lagged",
                "trend_lagged",
                "trend_smooth_lagged",
                "ema_trend_lagged"
            ]
        );
        for p in PipelineId::builtin() {
            assert_eq!(PipelineId::from_name(p.name()), Some(p));
            assert_eq!(PipelineId::from_index(p.index()), Some(p));
        }
    }

    #[test]
    fn two_branch_target_is_fedot_shape() {
        // The first search target: polyfit trend branch + lagged→regressor
        // branch → weighted ensemble join.
        let spec = PipelineId::TREND_LAGGED.spec();
        let roles: Vec<NodeRole> = spec.nodes().iter().map(|n| n.spec().role()).collect();
        assert_eq!(
            roles,
            [NodeRole::TrendPoly, NodeRole::Join, NodeRole::Lagged]
        );
    }

    #[test]
    fn register_node_validates_contract() {
        let mk = |name: &str, prefix: &str, params: Vec<ParamDef>| {
            NodeSpec::new(name, prefix, NodeRole::SmoothMa, params)
        };
        assert!(register_node(mk("lagged", "zz_", vec![])).is_err()); // dup name
        assert!(register_node(mk("x1", "node_lag_", vec![])).is_err()); // prefix clash
        assert!(register_node(mk("x2", "noend", vec![])).is_err()); // no underscore
        assert!(register_node(mk(
            "x3",
            "nx3_",
            vec![
                ParamDef::extra("other_key", ParamKind::Integer { lo: 1, hi: 2 }, 1.0)
                    .with_warm(SpecValue::Int(1))
            ]
        ))
        .is_err()); // foreign key
        assert!(register_node(mk(
            "x4",
            "nx4_",
            vec![ParamDef::extra(
                "nx4_k",
                ParamKind::Integer { lo: 1, hi: 2 },
                1.0
            )]
        ))
        .is_err()); // missing warm value
    }

    #[test]
    fn register_pipeline_validates_shape() {
        assert!(register_pipeline(PipelineSpec::new("p_empty", vec![])).is_err());
        assert!(register_pipeline(PipelineSpec::new("p_nolag", vec![NodeId::DIFF])).is_err());
        // Trend without a join.
        assert!(register_pipeline(PipelineSpec::new(
            "p_nojoin",
            vec![NodeId::TREND_POLY, NodeId::LAGGED]
        ))
        .is_err());
        // Join without a trend.
        assert!(register_pipeline(PipelineSpec::new(
            "p_notrend",
            vec![NodeId::JOIN, NodeId::LAGGED]
        ))
        .is_err());
        // Two trend branches.
        assert!(register_pipeline(PipelineSpec::new(
            "p_twotrend",
            vec![
                NodeId::TREND_POLY,
                NodeId::TREND_EMA,
                NodeId::JOIN,
                NodeId::LAGGED
            ]
        ))
        .is_err());
        assert!(register_pipeline(PipelineSpec::new("lagged", vec![NodeId::LAGGED])).is_err());
    }

    #[test]
    fn decode_into_ignores_foreign_node_namespaces() {
        // Decoding diff_lagged must never consult smoothing keys.
        let spec = PipelineId::DIFF_LAGGED.spec();
        let mut hp = HyperParams::default();
        spec.decode_into(&mut hp, |key| match key {
            "node_diff_order" => Some(SpecValue::Int(2)),
            "node_lag_window" => Some(SpecValue::Int(5)),
            "node_ma_width" => Some(SpecValue::Int(11)), // unselected branch
            _ => None,
        });
        assert_eq!(hp.extras.get("node_diff_order"), Some(&2.0));
        assert_eq!(hp.extras.get("node_lag_window"), Some(&5.0));
        assert!(!hp.extras.contains_key("node_ma_width"));
    }

    #[test]
    fn encode_decode_roundtrip_across_builtin_pipelines() {
        for p in PipelineId::builtin() {
            let spec = p.spec();
            let mut hp = HyperParams::default();
            spec.decode_into(&mut hp, |_| None); // warm values
            let pairs = spec.encode(&hp);
            assert_eq!(pairs, spec.warm_values(), "{p:?}");
            let mut back = HyperParams::default();
            spec.decode_into(&mut back, |key| {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
            });
            assert_eq!(spec.encode(&back), pairs, "{p:?}");
        }
    }

    #[test]
    fn every_builtin_pipeline_fits_and_predicts_finite() {
        let v = series(160);
        for p in PipelineId::builtin() {
            let m = PipelineModel::fit(p, AlgorithmKind::LASSO, &HyperParams::default(), &v, 130)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
            let pred = m.predict_range(&v, 130, 160).unwrap();
            assert_eq!(pred.len(), 30);
            assert!(pred.iter().all(|x| x.is_finite()), "{p:?}");
            // On a clean trend+seasonal series every structure should do
            // far better than predicting the mean.
            let mean = v[..130].iter().sum::<f64>() / 130.0;
            let mse = |ps: &[f64]| {
                ps.iter()
                    .zip(&v[130..])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / 30.0
            };
            let base = mse(&vec![mean; 30]);
            assert!(mse(&pred) < base, "{p:?}: {} !< {}", mse(&pred), base);
        }
    }

    #[test]
    fn prediction_at_t_never_sees_value_at_t() {
        let v = series(140);
        for p in [
            PipelineId::EMA_TREND_LAGGED,
            PipelineId::TREND_SMOOTH_LAGGED,
        ] {
            let m = PipelineModel::fit(p, AlgorithmKind::LASSO, &HyperParams::default(), &v, 110)
                .unwrap();
            let clean = m.predict_range(&v, 120, 121).unwrap();
            let mut spiked = v.clone();
            spiked[120] += 1000.0;
            let with_spike = m.predict_range(&spiked, 120, 121).unwrap();
            assert_eq!(clean[0].to_bits(), with_spike[0].to_bits(), "{p:?}");
        }
    }

    #[test]
    fn polyfit_recovers_linear_and_quadratic_trends() {
        let y: Vec<f64> = (0..50).map(|t| 3.0 + 2.0 * t as f64 / 49.0).collect();
        let c = polyfit(&y, 1).unwrap();
        assert!((c[0] - 3.0).abs() < 1e-8 && (c[1] - 2.0).abs() < 1e-8);
        let y: Vec<f64> = (0..50)
            .map(|t| {
                let x = t as f64 / 49.0;
                1.0 - x + 4.0 * x * x
            })
            .collect();
        let c = polyfit(&y, 2).unwrap();
        assert!((c[2] - 4.0).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn blob_v3_roundtrip_is_bit_identical() {
        let v = series(150);
        for algo in [AlgorithmKind::LASSO, AlgorithmKind::XGB_REGRESSOR] {
            let m = PipelineModel::fit(
                PipelineId::TREND_LAGGED,
                algo,
                &HyperParams::default(),
                &v,
                120,
            )
            .unwrap();
            let blob = m.to_blob().unwrap();
            let back = PipelineModel::from_blob(&blob).unwrap();
            assert_eq!(back.pipeline(), PipelineId::TREND_LAGGED);
            assert_eq!(back.algorithm(), algo);
            let a = m.predict_range(&v, 120, 150).unwrap();
            let b = back.predict_range(&v, 120, 150).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{algo:?}");
            }
        }
    }

    #[test]
    fn blob_v2_still_revives_as_single_node_member() {
        // Fit a flat XGB on an engineered-style matrix, ship it as v2, and
        // revive it through the unified member codec.
        let x = Matrix::from_fn(60, 3, |i, j| ((i * (j + 2)) % 11) as f64 * 0.3);
        let y: Vec<f64> = (0..60)
            .map(|i| x.get(i, 0) * 1.5 - x.get(i, 1) + 2.0)
            .collect();
        let scaler = Standardizer::fit(&x);
        let yscaler = TargetScaler::fit(&y);
        let xs = scaler.transform(&x);
        let ys: Vec<f64> = y.iter().map(|&v| yscaler.scale(v)).collect();
        let mut model = build_regressor(AlgorithmKind::XGB_REGRESSOR, &HyperParams::default());
        model.fit(&xs, &ys).unwrap();
        let direct: Vec<f64> = model
            .predict(&xs)
            .unwrap()
            .iter()
            .map(|&p| yscaler.unscale(p))
            .collect();
        let blob = encode_external_blob(
            AlgorithmKind::XGB_REGRESSOR,
            &scaler,
            &yscaler,
            &model.to_blob().unwrap(),
        );
        let member = decode_member_blob(&blob).unwrap();
        assert_eq!(member.feature_dim(), Some(3));
        let revived = member.predict_features(&x).unwrap();
        for (a, b) in direct.iter().zip(&revived) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(member.predict_series(&[0.0; 10], 5, 6).is_err());
    }

    #[test]
    fn affine_inner_models_ship_via_probe() {
        // Lasso has no model codec; its pipeline blob must carry probed
        // affine parameters and revive to bit-identical predictions.
        let v = series(150);
        let m = PipelineModel::fit(
            PipelineId::DIFF_LAGGED,
            AlgorithmKind::LASSO,
            &HyperParams::default(),
            &v,
            120,
        )
        .unwrap();
        let blob = m.to_blob().unwrap();
        let member = decode_member_blob(&blob).unwrap();
        assert!(member.feature_dim().is_none());
        let a = m.predict_range(&v, 120, 150).unwrap();
        let b = member.predict_series(&v, 120, 150).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn corrupt_blobs_error_not_panic() {
        assert!(decode_member_blob(&[]).is_err());
        assert!(decode_member_blob(&[9, 9, 9]).is_err());
        assert!(decode_member_blob(&[3, 1, 2, 3]).is_err());
        let v = series(150);
        let m = PipelineModel::fit(
            PipelineId::LAGGED,
            AlgorithmKind::LASSO,
            &HyperParams::default(),
            &v,
            120,
        )
        .unwrap();
        let mut blob = m.to_blob().unwrap();
        blob.truncate(blob.len() / 2);
        assert!(PipelineModel::from_blob(&blob).is_err());
    }

    #[test]
    fn too_short_series_is_a_typed_error() {
        let v = series(10);
        let e = PipelineModel::fit(
            PipelineId::LAGGED,
            AlgorithmKind::LASSO,
            &HyperParams::default(),
            &v,
            10,
        )
        .unwrap_err();
        assert!(matches!(e, ModelError::InvalidData(_)));
    }

    #[test]
    fn causal_ema_trend_matches_spike_contract() {
        let mut v = vec![1.0; 50];
        v[30] = 100.0;
        let tr = causal_ema_trend(&v, 9.0);
        assert!((tr[30] - 1.0).abs() < 1e-9, "leaked: {}", tr[30]);
        assert!(tr[31] > 1.0);
    }
}
