//! Multinomial logistic regression (softmax + L2), fitted by full-batch
//! gradient descent with backtracking-free adaptive steps.

use crate::data::Standardizer;
use crate::{Classifier, ModelError, Result};
use ff_linalg::Matrix;

/// Row-wise softmax over a score matrix.
pub fn softmax(scores: &Matrix) -> Matrix {
    let mut out = scores.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// L2-regularized multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Inverse regularization strength (sklearn's `C`): penalty is `1/(2C)‖W‖²`.
    pub c: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
    /// Learning rate.
    pub lr: f64,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    /// `(p+1) × k` weights, last row is the bias.
    w: Matrix,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates a logistic-regression classifier.
    pub fn new(c: f64) -> LogisticRegression {
        LogisticRegression {
            c: c.max(1e-6),
            max_iter: 300,
            lr: 0.5,
            state: None,
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, labels: &[usize], n_classes: usize) -> Result<()> {
        if x.rows() == 0 || x.rows() != labels.len() {
            return Err(ModelError::InvalidData("bad shapes".into()));
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(ModelError::InvalidData("label out of range".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = xs.rows();
        let p = xs.cols();
        // Augment with a bias column.
        let xa = Matrix::from_fn(n, p + 1, |i, j| if j < p { xs.get(i, j) } else { 1.0 });
        let mut w = Matrix::zeros(p + 1, n_classes);
        let lambda = 1.0 / self.c;
        let mut lr = self.lr;
        let mut prev_loss = f64::INFINITY;
        for _ in 0..self.max_iter {
            let scores = xa.matmul(&w).expect("shape");
            let probs = softmax(&scores);
            // Loss for adaptive step control.
            let mut loss = 0.0;
            for (i, &l) in labels.iter().enumerate() {
                loss -= probs.get(i, l).max(1e-12).ln();
            }
            loss /= n as f64;
            for j in 0..p {
                for c in 0..n_classes {
                    loss += 0.5 * lambda * w.get(j, c) * w.get(j, c) / n as f64;
                }
            }
            if loss > prev_loss {
                lr *= 0.5;
                if lr < 1e-6 {
                    break;
                }
            }
            prev_loss = loss;
            // Gradient: Xᵀ(P − Y)/n + λW/n (bias unpenalized).
            let mut diff = probs;
            for (i, &l) in labels.iter().enumerate() {
                let v = diff.get(i, l) - 1.0;
                diff.set(i, l, v);
            }
            let grad = xa
                .transpose()
                .matmul(&diff)
                .expect("shape")
                .scale(1.0 / n as f64);
            for j in 0..p + 1 {
                for c in 0..n_classes {
                    let reg = if j < p {
                        lambda * w.get(j, c) / n as f64
                    } else {
                        0.0
                    };
                    let v = w.get(j, c) - lr * (grad.get(j, c) + reg);
                    w.set(j, c, v);
                }
            }
        }
        if !w.is_finite() {
            return Err(ModelError::Numerical("diverged".into()));
        }
        self.state = Some(FitState {
            scaler,
            w,
            n_classes,
        });
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        let p = xs.cols();
        let xa = Matrix::from_fn(
            xs.rows(),
            p + 1,
            |i, j| if j < p { xs.get(i, j) } else { 1.0 },
        );
        let scores = xa
            .matmul(&s.w)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        let _ = s.n_classes;
        Ok(softmax(&scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn separates_linear_clusters() {
        let n = 120;
        let x = Matrix::from_fn(n, 2, |i, j| {
            let cls = i / 40;
            let offset = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)][cls];
            (if j == 0 { offset.0 } else { offset.1 }) + ((i * 7 + j * 3) % 10) as f64 * 0.1
        });
        let labels: Vec<usize> = (0..n).map(|i| i / 40).collect();
        let mut m = LogisticRegression::new(10.0);
        m.fit(&x, &labels, 3).unwrap();
        assert!(accuracy(&labels, &m.predict(&x).unwrap()) > 0.95);
    }

    #[test]
    fn strong_regularization_flattens_probabilities() {
        let x = Matrix::from_fn(40, 1, |i, _| if i < 20 { -3.0 } else { 3.0 });
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let mut free = LogisticRegression::new(100.0);
        let mut tight = LogisticRegression::new(1e-4);
        free.fit(&x, &labels, 2).unwrap();
        tight.fit(&x, &labels, 2).unwrap();
        let pf = free.predict_proba(&x).unwrap();
        let pt = tight.predict_proba(&x).unwrap();
        assert!(pf.get(0, 0) > pt.get(0, 0), "regularization should flatten");
    }

    #[test]
    fn softmax_rows_normalized() {
        let s = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]);
        let p = softmax(&s);
        assert!(((0..3).map(|j| p.get(0, j)).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn not_fitted_errors() {
        let m = LogisticRegression::new(1.0);
        assert!(m.predict_proba(&Matrix::zeros(1, 2)).is_err());
    }
}
