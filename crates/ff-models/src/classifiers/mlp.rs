//! MLP classifier — the `MLPClassifier` row of Table 4, built on the
//! `ff-neural` substrate.

use crate::data::Standardizer;
use crate::{Classifier, ModelError, Result};
use ff_linalg::Matrix;
use ff_neural::adam::Adam;
use ff_neural::mlp::Mlp;

/// A ReLU MLP classifier trained with Adam on softmax cross-entropy.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    net: Mlp,
}

impl MlpClassifier {
    /// Creates an MLP classifier with the given hidden sizes.
    pub fn new(hidden: Vec<usize>, epochs: usize, seed: u64) -> MlpClassifier {
        MlpClassifier {
            hidden,
            epochs,
            lr: 5e-3,
            seed,
            state: None,
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, labels: &[usize], n_classes: usize) -> Result<()> {
        if x.rows() == 0 || x.rows() != labels.len() {
            return Err(ModelError::InvalidData("bad shapes".into()));
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(ModelError::InvalidData("label out of range".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let mut sizes = vec![xs.cols()];
        sizes.extend_from_slice(&self.hidden);
        sizes.push(n_classes);
        let mut net = Mlp::new(&sizes, self.seed);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            net.train_step_cross_entropy(&xs, labels, &mut opt);
        }
        self.state = Some(FitState { scaler, net });
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(s.net.predict_proba(&s.scaler.transform(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn learns_nonlinear_boundary() {
        // Ring vs center: not linearly separable.
        let n = 160;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let angle = i as f64 * 0.39;
            if i % 2 == 0 {
                rows.push(vec![0.3 * angle.cos(), 0.3 * angle.sin()]);
                labels.push(0);
            } else {
                rows.push(vec![2.0 * angle.cos(), 2.0 * angle.sin()]);
                labels.push(1);
            }
        }
        let x = Matrix::from_fn(n, 2, |i, j| rows[i][j]);
        let mut m = MlpClassifier::new(vec![32], 400, 3);
        m.fit(&x, &labels, 2).unwrap();
        assert!(accuracy(&labels, &m.predict(&x).unwrap()) > 0.9);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let x = Matrix::from_fn(30, 2, |i, j| (i * (j + 1)) as f64 * 0.1);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let mut m = MlpClassifier::new(vec![8], 50, 0);
        m.fit(&x, &labels, 3).unwrap();
        let p = m.predict_proba(&x).unwrap();
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn not_fitted_errors() {
        let m = MlpClassifier::new(vec![4], 10, 0);
        assert!(m.predict_proba(&Matrix::zeros(1, 2)).is_err());
    }
}
