// Index-based loops across parallel arrays are the clearest form for the
// numeric kernels in this crate; the iterator rewrites clippy suggests
// obscure the math.
#![allow(clippy::needless_range_loop)]

//! From-scratch forecasting regressors and meta-model classifiers.
//!
//! This crate reimplements every learner the paper depends on:
//!
//! **Table 2 forecasting regressors** (scikit-learn / XGBoost in the paper):
//! - [`linear::lasso::Lasso`] — L1 coordinate descent (cyclic/random).
//! - [`linear::elastic_net::ElasticNetCv`] — elastic-net with internal
//!   time-series cross-validated alpha selection.
//! - [`linear::svr::LinearSvr`] — ε-insensitive linear SVR.
//! - [`linear::huber::HuberRegressor`] — Huber loss via IRLS.
//! - [`linear::quantile::QuantileRegressor`] — pinball loss.
//! - [`boosting::gbdt::XgbRegressor`] — second-order gradient-boosted trees
//!   with `reg_lambda`, `subsample`, `max_depth`.
//!
//! **Feature selection** (§4.2.2): [`forest::RandomForestRegressor`] with
//! impurity-based feature importances.
//!
//! **Table 4 meta-model classifier zoo**: [`forest::RandomForestClassifier`],
//! [`forest::ExtraTreesClassifier`], [`classifiers::logistic::LogisticRegression`],
//! [`boosting::clf::XgbClassifier`], [`boosting::clf::GradientBoostingClassifier`],
//! [`boosting::clf::CatBoostClassifier`] (oblivious trees),
//! [`boosting::clf::LightGbmClassifier`] (histogram + leaf-wise growth), and
//! [`classifiers::mlp::MlpClassifier`].

pub mod data;
pub mod forest;
pub mod metrics;
pub mod pipeline;
pub mod ser;
pub mod spec;
pub mod tree;
pub mod zoo;

pub mod linear {
    //! Linear-family regressors (Table 2).
    pub mod cd;
    pub mod elastic_net;
    pub mod huber;
    pub mod lasso;
    pub mod quantile;
    pub mod svr;
}

pub mod boosting {
    //! Gradient-boosting regressors and classifiers.
    pub mod clf;
    pub mod gbdt;
    pub mod histogram;
    pub mod oblivious;
}

pub mod classifiers {
    //! Non-tree classifiers for the meta-model zoo.
    pub mod logistic;
    pub mod mlp;
}

use ff_linalg::Matrix;

/// Errors produced by model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Training data is empty or has inconsistent shapes.
    InvalidData(String),
    /// The optimizer failed to produce finite parameters.
    Numerical(String),
    /// Predict was called before fit.
    NotFitted,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidData(m) => write!(f, "invalid training data: {m}"),
            ModelError::Numerical(m) => write!(f, "numerical failure: {m}"),
            ModelError::NotFitted => write!(f, "model is not fitted"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

/// A supervised regressor mapping feature rows to a scalar target.
pub trait Regressor {
    /// Fits on a design matrix (rows = samples) and target vector.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()>;
    /// Predicts one value per row. Must be called after a successful
    /// [`Regressor::fit`].
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;
    /// Serializes the fitted model for ensemble-union aggregation. `None`
    /// (the default) means the model cannot ship as a blob; algorithms
    /// registered with `FinalizeStrategy::EnsembleUnion` must override this
    /// and pair it with the decoder given to
    /// [`spec::AlgorithmSpec::with_model_codec`].
    fn to_blob(&self) -> Option<Vec<u8>> {
        None
    }
}

/// A probabilistic multi-class classifier.
pub trait Classifier {
    /// Fits on labeled rows; `labels[i] < n_classes`.
    fn fit(&mut self, x: &Matrix, labels: &[usize], n_classes: usize) -> Result<()>;
    /// Class probabilities, one row per sample (rows sum to 1).
    fn predict_proba(&self, x: &Matrix) -> Result<Matrix>;
    /// Hard class predictions (argmax of probabilities).
    fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| ff_linalg::vector::argmax(p.row(i)).unwrap_or(0))
            .collect())
    }
}

/// Linear models expose their parameters for federated weight averaging.
pub trait LinearParams {
    /// Feature coefficients.
    fn coefficients(&self) -> Result<&[f64]>;
    /// Intercept term.
    fn intercept(&self) -> Result<f64>;
    /// Overwrites coefficients and intercept (used by FedAvg-style
    /// aggregation of linear forecasters).
    fn set_linear_params(&mut self, coef: &[f64], intercept: f64);
}

fn validate_xy(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(ModelError::InvalidData("empty design matrix".into()));
    }
    if x.rows() != y.len() {
        return Err(ModelError::InvalidData(format!(
            "{} rows vs {} targets",
            x.rows(),
            y.len()
        )));
    }
    if y.iter().any(|v| v.is_nan()) || !x.is_finite() {
        return Err(ModelError::InvalidData("non-finite values".into()));
    }
    Ok(())
}
