//! Decision trees: a gradient/hessian CART shared by every boosting variant
//! and the random-forest regressor, plus a Gini classification tree for the
//! forest classifiers.
//!
//! The gradient/hessian formulation (XGBoost-style) subsumes plain
//! regression: fitting targets `y` is `grad = −y, hess = 1`, which makes the
//! optimal leaf weight `Σy/(n+λ)` and the gain criterion equivalent to
//! variance reduction.

use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of a gradient/hessian tree.
#[derive(Debug, Clone, Copy)]
pub struct GhTreeConfig {
    /// Maximum tree depth (0 = a single leaf).
    pub max_depth: usize,
    /// Minimum hessian sum per child (≈ min samples for hess = 1).
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights (XGBoost's `reg_lambda`).
    pub lambda: f64,
    /// Fraction of features considered at each split, in (0, 1].
    pub feature_subsample: f64,
    /// Extra-Trees mode: draw one random threshold per feature instead of
    /// scanning all cut points.
    pub random_thresholds: bool,
}

impl Default for GhTreeConfig {
    fn default() -> Self {
        GhTreeConfig {
            max_depth: 6,
            min_child_weight: 1.0,
            lambda: 1.0,
            feature_subsample: 1.0,
            random_thresholds: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted gradient/hessian regression tree.
#[derive(Debug, Clone)]
pub struct GhTree {
    nodes: Vec<Node>,
    /// Total split gain attributed to each feature (impurity importance).
    pub feature_gains: Vec<f64>,
}

impl GhTree {
    /// Fits a tree to gradients/hessians over the given row subset.
    pub fn fit(
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        cfg: &GhTreeConfig,
        rng: &mut StdRng,
    ) -> GhTree {
        let mut tree = GhTree {
            nodes: Vec::new(),
            feature_gains: vec![0.0; x.cols()],
        };
        let mut rows_buf = rows.to_vec();
        tree.build(x, grad, hess, &mut rows_buf, 0, cfg, rng);
        tree
    }

    fn leaf_value(grad_sum: f64, hess_sum: f64, lambda: f64) -> f64 {
        -grad_sum / (hess_sum + lambda)
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carries its full context
    fn build(
        &mut self,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        cfg: &GhTreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let (g_sum, h_sum) = rows
            .iter()
            .fold((0.0, 0.0), |(g, h), &i| (g + grad[i], h + hess[i]));
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: Self::leaf_value(g_sum, h_sum, cfg.lambda),
            });
            nodes.len() - 1
        };
        if depth >= cfg.max_depth || rows.len() < 2 || h_sum < 2.0 * cfg.min_child_weight {
            return make_leaf(&mut self.nodes);
        }
        // Candidate features.
        let p = x.cols();
        let k = ((p as f64 * cfg.feature_subsample).ceil() as usize).clamp(1, p);
        let features: Vec<usize> = if k == p {
            (0..p).collect()
        } else {
            let mut all: Vec<usize> = (0..p).collect();
            for i in 0..k {
                let j = rng.gen_range(i..p);
                all.swap(i, j);
            }
            all.truncate(k);
            all
        };

        let parent_score = g_sum * g_sum / (h_sum + cfg.lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)

        for &f in &features {
            if cfg.random_thresholds {
                // Extra-Trees: a single uniform threshold in [min, max).
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &i in rows.iter() {
                    let v = x.get(i, f);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi <= lo {
                    continue;
                }
                let thr = lo + rng.gen::<f64>() * (hi - lo);
                let (mut gl, mut hl) = (0.0, 0.0);
                for &i in rows.iter() {
                    if x.get(i, f) < thr {
                        gl += grad[i];
                        hl += hess[i];
                    }
                }
                let (gr, hr) = (g_sum - gl, h_sum - hl);
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score);
                if gain > best.map_or(1e-12, |b| b.0) {
                    best = Some((gain, f, thr));
                }
            } else {
                // Exact greedy: scan sorted cut points.
                let mut order: Vec<usize> = rows.to_vec();
                order.sort_by(|&a, &b| x.get(a, f).total_cmp(&x.get(b, f)));
                let (mut gl, mut hl) = (0.0, 0.0);
                for w in 0..order.len() - 1 {
                    let i = order[w];
                    gl += grad[i];
                    hl += hess[i];
                    let v_here = x.get(i, f);
                    let v_next = x.get(order[w + 1], f);
                    if v_next <= v_here {
                        continue; // no valid cut between equal values
                    }
                    let (gr, hr) = (g_sum - gl, h_sum - hl);
                    if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                        continue;
                    }
                    let gain = 0.5
                        * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda)
                            - parent_score);
                    if gain > best.map_or(1e-12, |b| b.0) {
                        best = Some((gain, f, 0.5 * (v_here + v_next)));
                    }
                }
            }
        }

        let Some((gain, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        self.feature_gains[feature] += gain;

        // Partition rows in place.
        let mut split_point = 0;
        for i in 0..rows.len() {
            if x.get(rows[i], feature) < threshold {
                rows.swap(i, split_point);
                split_point += 1;
            }
        }
        if split_point == 0 || split_point == rows.len() {
            return make_leaf(&mut self.nodes);
        }
        // Reserve the split node slot, then build children.
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(split_point);
        let left = self.build(x, grad, hess, left_rows, depth + 1, cfg, rng);
        let right = self.build(x, grad, hess, right_rows, depth + 1, cfg, rng);
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_idx
    }

    /// Predicts the leaf weight for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serializes the tree into `w` (see [`crate::ser`]).
    pub fn write_to(&self, w: &mut crate::ser::Writer) {
        w.u32(self.nodes.len() as u32);
        for node in &self.nodes {
            match node {
                Node::Leaf { value } => {
                    w.u8(0);
                    w.f64(*value);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.u8(1);
                    w.u32(*feature as u32);
                    w.f64(*threshold);
                    w.u32(*left as u32);
                    w.u32(*right as u32);
                }
            }
        }
        w.f64s(&self.feature_gains);
    }

    /// Deserializes a tree written by [`GhTree::write_to`]. Child indices
    /// are bounds-checked so corrupt input cannot cause out-of-range
    /// traversal.
    pub fn read_from(r: &mut crate::ser::Reader<'_>) -> Result<GhTree, crate::ser::SerError> {
        let n = r.u32()? as usize;
        if n == 0 || n > 1_000_000 {
            return Err(crate::ser::SerError::BadLength(n as u64));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u8()?;
            nodes.push(match tag {
                0 => Node::Leaf { value: r.f64()? },
                1 => {
                    let feature = r.u32()? as usize;
                    let threshold = r.f64()?;
                    let left = r.u32()? as usize;
                    let right = r.u32()? as usize;
                    if left >= n || right >= n {
                        return Err(crate::ser::SerError::BadLength(left.max(right) as u64));
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                t => return Err(crate::ser::SerError::BadTag(t)),
            });
        }
        let feature_gains = r.f64s(100_000)?;
        Ok(GhTree {
            nodes,
            feature_gains,
        })
    }
}

/// A Gini-impurity classification tree with class-distribution leaves.
#[derive(Debug, Clone)]
pub struct ClassificationTree {
    nodes: Vec<ClsNode>,
    n_classes: usize,
    /// Total impurity decrease per feature.
    pub feature_gains: Vec<f64>,
}

#[derive(Debug, Clone)]
enum ClsNode {
    Leaf {
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Configuration for classification trees.
#[derive(Debug, Clone, Copy)]
pub struct ClsTreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features per split.
    pub feature_subsample: f64,
    /// Extra-Trees random thresholds.
    pub random_thresholds: bool,
}

impl Default for ClsTreeConfig {
    fn default() -> Self {
        ClsTreeConfig {
            max_depth: 12,
            min_samples_leaf: 1,
            feature_subsample: 1.0,
            random_thresholds: false,
        }
    }
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|c| (c / total) * (c / total))
        .sum::<f64>()
}

impl ClassificationTree {
    /// Fits the tree on labeled rows.
    pub fn fit(
        x: &Matrix,
        labels: &[usize],
        n_classes: usize,
        rows: &[usize],
        cfg: &ClsTreeConfig,
        rng: &mut StdRng,
    ) -> ClassificationTree {
        let mut tree = ClassificationTree {
            nodes: Vec::new(),
            n_classes,
            feature_gains: vec![0.0; x.cols()],
        };
        let mut rows_buf = rows.to_vec();
        tree.build(x, labels, &mut rows_buf, 0, cfg, rng);
        tree
    }

    fn build(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        rows: &mut [usize],
        depth: usize,
        cfg: &ClsTreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let n_classes = self.n_classes;
        let mut counts = vec![0.0; n_classes];
        for &i in rows.iter() {
            counts[labels[i]] += 1.0;
        }
        let total = rows.len() as f64;
        let node_gini = gini(&counts, total);
        let make_leaf = |nodes: &mut Vec<ClsNode>| {
            let probs: Vec<f64> = counts.iter().map(|c| c / total.max(1.0)).collect();
            nodes.push(ClsNode::Leaf { probs });
            nodes.len() - 1
        };
        if depth >= cfg.max_depth || node_gini <= 1e-12 || rows.len() < 2 * cfg.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        let p = x.cols();
        let k = ((p as f64 * cfg.feature_subsample).ceil() as usize).clamp(1, p);
        let features: Vec<usize> = if k == p {
            (0..p).collect()
        } else {
            let mut all: Vec<usize> = (0..p).collect();
            for i in 0..k {
                let j = rng.gen_range(i..p);
                all.swap(i, j);
            }
            all.truncate(k);
            all
        };

        let mut best: Option<(f64, usize, f64)> = None;
        for &f in &features {
            if cfg.random_thresholds {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &i in rows.iter() {
                    let v = x.get(i, f);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi <= lo {
                    continue;
                }
                let thr = lo + rng.gen::<f64>() * (hi - lo);
                let mut lc = vec![0.0; n_classes];
                let mut ln = 0.0;
                for &i in rows.iter() {
                    if x.get(i, f) < thr {
                        lc[labels[i]] += 1.0;
                        ln += 1.0;
                    }
                }
                let rn = total - ln;
                if ln < cfg.min_samples_leaf as f64 || rn < cfg.min_samples_leaf as f64 {
                    continue;
                }
                let rc: Vec<f64> = counts.iter().zip(&lc).map(|(c, l)| c - l).collect();
                let gain = node_gini - (ln / total) * gini(&lc, ln) - (rn / total) * gini(&rc, rn);
                if gain > best.map_or(1e-12, |b| b.0) {
                    best = Some((gain, f, thr));
                }
            } else {
                let mut order: Vec<usize> = rows.to_vec();
                order.sort_by(|&a, &b| x.get(a, f).total_cmp(&x.get(b, f)));
                let mut lc = vec![0.0; n_classes];
                for w in 0..order.len() - 1 {
                    let i = order[w];
                    lc[labels[i]] += 1.0;
                    let v_here = x.get(i, f);
                    let v_next = x.get(order[w + 1], f);
                    if v_next <= v_here {
                        continue;
                    }
                    let ln = (w + 1) as f64;
                    let rn = total - ln;
                    if ln < cfg.min_samples_leaf as f64 || rn < cfg.min_samples_leaf as f64 {
                        continue;
                    }
                    let rc: Vec<f64> = counts.iter().zip(&lc).map(|(c, l)| c - l).collect();
                    let gain =
                        node_gini - (ln / total) * gini(&lc, ln) - (rn / total) * gini(&rc, rn);
                    if gain > best.map_or(1e-12, |b| b.0) {
                        best = Some((gain, f, 0.5 * (v_here + v_next)));
                    }
                }
            }
        }

        let Some((gain, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        self.feature_gains[feature] += gain * total;

        let mut split_point = 0;
        for i in 0..rows.len() {
            if x.get(rows[i], feature) < threshold {
                rows.swap(i, split_point);
                split_point += 1;
            }
        }
        if split_point == 0 || split_point == rows.len() {
            return make_leaf(&mut self.nodes);
        }
        let node_idx = self.nodes.len();
        self.nodes.push(ClsNode::Leaf { probs: vec![] });
        let (left_rows, right_rows) = rows.split_at_mut(split_point);
        let left = self.build(x, labels, left_rows, depth + 1, cfg, rng);
        let right = self.build(x, labels, right_rows, depth + 1, cfg, rng);
        self.nodes[node_idx] = ClsNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_idx
    }

    /// Class probabilities for one row.
    pub fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                ClsNode::Leaf { probs } => return probs,
                ClsNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn gh_tree_fits_step_function() {
        // y = 1 for x < 0.5, y = 5 otherwise.
        let n = 100;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if (i as f64 / n as f64) < 0.5 {
                    1.0
                } else {
                    5.0
                }
            })
            .collect();
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; n];
        let rows: Vec<usize> = (0..n).collect();
        let cfg = GhTreeConfig {
            max_depth: 2,
            lambda: 0.0,
            min_child_weight: 1.0,
            ..Default::default()
        };
        let tree = GhTree::fit(&x, &grad, &hess, &rows, &cfg, &mut rng());
        assert!((tree.predict_row(&[0.2]) - 1.0).abs() < 0.2);
        assert!((tree.predict_row(&[0.8]) - 5.0).abs() < 0.2);
        assert!(tree.feature_gains[0] > 0.0);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y = [10.0; 10];
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; 10];
        let rows: Vec<usize> = (0..10).collect();
        let small = GhTree::fit(
            &x,
            &grad,
            &hess,
            &rows,
            &GhTreeConfig {
                max_depth: 0,
                lambda: 0.0,
                ..Default::default()
            },
            &mut rng(),
        );
        let big = GhTree::fit(
            &x,
            &grad,
            &hess,
            &rows,
            &GhTreeConfig {
                max_depth: 0,
                lambda: 10.0,
                ..Default::default()
            },
            &mut rng(),
        );
        assert!((small.predict_row(&[0.0]) - 10.0).abs() < 1e-9);
        assert!((big.predict_row(&[0.0]) - 5.0).abs() < 1e-9); // 100/(10+10)
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let x = Matrix::from_fn(10, 2, |i, j| (i * (j + 1)) as f64);
        let grad = vec![-1.0; 10];
        let hess = vec![1.0; 10];
        let rows: Vec<usize> = (0..10).collect();
        let tree = GhTree::fit(
            &x,
            &grad,
            &hess,
            &rows,
            &GhTreeConfig {
                max_depth: 0,
                ..Default::default()
            },
            &mut rng(),
        );
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn classification_tree_separates_classes() {
        let n = 90;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64);
        let labels: Vec<usize> = (0..n).map(|i| i / 30).collect();
        let rows: Vec<usize> = (0..n).collect();
        let tree =
            ClassificationTree::fit(&x, &labels, 3, &rows, &ClsTreeConfig::default(), &mut rng());
        assert!(tree.predict_row(&[5.0])[0] > 0.9);
        assert!(tree.predict_row(&[45.0])[1] > 0.9);
        assert!(tree.predict_row(&[75.0])[2] > 0.9);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_fn(20, 1, |i, _| i as f64);
        let labels = vec![0usize; 20];
        let rows: Vec<usize> = (0..20).collect();
        let tree =
            ClassificationTree::fit(&x, &labels, 2, &rows, &ClsTreeConfig::default(), &mut rng());
        assert_eq!(tree.nodes.len(), 1);
    }

    #[test]
    fn random_thresholds_still_learn() {
        let n = 100;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= 50)).collect();
        let rows: Vec<usize> = (0..n).collect();
        let cfg = ClsTreeConfig {
            random_thresholds: true,
            max_depth: 6,
            ..Default::default()
        };
        let tree = ClassificationTree::fit(&x, &labels, 2, &rows, &cfg, &mut rng());
        assert!(tree.predict_row(&[0.1])[0] > 0.8);
        assert!(tree.predict_row(&[0.9])[1] > 0.8);
    }
}
