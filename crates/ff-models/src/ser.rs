//! Compact binary serialization for tree-ensemble models.
//!
//! §4.4 of the paper has the server "aggregate the local models". Linear
//! models aggregate by coefficient averaging, but tree ensembles must
//! travel as whole models; this module gives [`crate::boosting::gbdt::XgbRegressor`]
//! (and the trees inside it) a stable little-endian wire form so federated
//! clients can exchange fitted ensembles as opaque byte blobs.
//!
//! The format is versioned and fully round-trip tested; decoding is
//! defensive (truncation and bad tags return errors, never panics).

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerError {
    /// Input ended prematurely.
    Truncated,
    /// Unknown tag or version byte.
    BadTag(u8),
    /// A length field exceeded sanity bounds.
    BadLength(u64),
}

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerError::Truncated => write!(f, "truncated model blob"),
            SerError::BadTag(t) => write!(f, "unknown tag {t}"),
            SerError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for SerError {}

/// Little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed f64 slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, SerError> {
        let v = *self.buf.get(self.pos).ok_or(SerError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SerError> {
        let end = self.pos + 4;
        let raw = self.buf.get(self.pos..end).ok_or(SerError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SerError> {
        let end = self.pos.checked_add(8).ok_or(SerError::Truncated)?;
        let raw = self.buf.get(self.pos..end).ok_or(SerError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Reads a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, SerError> {
        let end = self.pos + 8;
        let raw = self.buf.get(self.pos..end).ok_or(SerError::Truncated)?;
        self.pos = end;
        Ok(f64::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Reads a length-prefixed f64 vector (lengths over `max_len` are
    /// rejected to bound allocations on corrupt input, and a declared
    /// length that exceeds the remaining input is truncation — checked
    /// *before* any allocation, so a hostile length prefix cannot force
    /// a huge up-front reservation).
    pub fn f64s(&mut self, max_len: usize) -> Result<Vec<f64>, SerError> {
        let n = self.u32()? as usize;
        if n > max_len {
            return Err(SerError::BadLength(n as u64));
        }
        if n.saturating_mul(8) > self.buf.len() - self.pos {
            return Err(SerError::Truncated);
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed byte slice (lengths over `max_len` are
    /// rejected to bound allocations on corrupt input).
    pub fn bytes(&mut self, max_len: usize) -> Result<&'a [u8], SerError> {
        let n = self.u32()? as usize;
        if n > max_len {
            return Err(SerError::BadLength(n as u64));
        }
        let end = self.pos + n;
        let raw = self.buf.get(self.pos..end).ok_or(SerError::Truncated)?;
        self.pos = end;
        Ok(raw)
    }

    /// Reads a length-prefixed UTF-8 string (invalid UTF-8 is a bad tag).
    pub fn str(&mut self, max_len: usize) -> Result<&'a str, SerError> {
        let raw = self.bytes(max_len)?;
        std::str::from_utf8(raw).map_err(|_| SerError::BadTag(0))
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed — what a framing layer reports when a
    /// decoder finishes early on input that should have been exhausted.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(123_456);
        w.f64(-2.5e-3);
        w.f64s(&[1.0, 2.0, 3.0]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap(), -2.5e-3);
        assert_eq!(r.f64s(10).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut w = Writer::new();
        w.str("XGBRegressor");
        w.bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str(64).unwrap(), "XGBRegressor");
        assert_eq!(r.bytes(64).unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(4), Err(SerError::BadLength(_))));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.f64(1.0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..4]);
        assert_eq!(r.f64().unwrap_err(), SerError::Truncated);
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.f64s(100), Err(SerError::BadLength(_))));
    }

    #[test]
    fn u64_roundtrips() {
        let mut w = Writer::new();
        w.u64(u64::MAX - 7);
        w.u64(0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.u64().unwrap(), 0);
        assert!(r.is_exhausted());
        assert_eq!(
            Reader::new(&bytes[..7]).u64().unwrap_err(),
            SerError::Truncated
        );
    }

    #[test]
    fn declared_length_beyond_input_is_truncation_not_allocation() {
        // A length prefix claiming ~32 GiB of f64s over a 12-byte buffer
        // must fail fast, not pre-reserve the declared capacity.
        let mut w = Writer::new();
        w.u32(u32::MAX / 2);
        w.f64(1.0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.f64s(usize::MAX).unwrap_err(), SerError::Truncated);
    }
}
