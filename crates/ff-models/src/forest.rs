//! Random forests and Extra-Trees.
//!
//! [`RandomForestRegressor`] provides the impurity-based feature importances
//! that drive the paper's feature selection (§4.2.2: keep features covering
//! 95% of cumulative importance). [`RandomForestClassifier`] is the winning
//! meta-model of Table 4; [`ExtraTreesClassifier`] and
//! [`ExtraTreesRegressor`] are additional zoo members.

use crate::tree::{ClassificationTree, ClsTreeConfig, GhTree, GhTreeConfig};
use crate::{validate_xy, Classifier, ModelError, Regressor, Result};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-tree RNG seed: a splitmix64 hash of the forest seed and the tree
/// index. Each tree owns an independent stream, so trees can be fitted in
/// any order (or in parallel) with a thread-count-independent result.
fn derive_tree_seed(seed: u64, tree: u64) -> u64 {
    let mut z = seed ^ tree.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Below this many row-predictions, per-row parallel prediction costs more
/// in pool spawns than it saves.
const PAR_MIN_PREDICTIONS: usize = 4096;

/// Bagged regression forest.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Fraction of features per split.
    pub feature_subsample: f64,
    /// Use bootstrap sampling of rows.
    pub bootstrap: bool,
    /// Extra-Trees random thresholds.
    pub random_thresholds: bool,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<GhTree>,
    importances: Vec<f64>,
}

impl RandomForestRegressor {
    /// Creates a forest with sensible defaults (100 trees, depth 8,
    /// 1/3 feature subsample — the scikit-learn regression convention).
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForestRegressor {
            n_trees,
            max_depth,
            feature_subsample: 1.0 / 3.0,
            bootstrap: true,
            random_thresholds: false,
            seed,
            trees: Vec::new(),
            importances: Vec::new(),
        }
    }

    /// Extra-Trees variant: random thresholds, no bootstrap.
    pub fn extra_trees(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForestRegressor {
            bootstrap: false,
            random_thresholds: true,
            ..Self::new(n_trees, max_depth, seed)
        }
    }

    /// Normalized impurity-based feature importances (sum to 1 when any
    /// split occurred).
    pub fn feature_importances(&self) -> Result<&[f64]> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(&self.importances)
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let n = x.rows();
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; n];
        let cfg = GhTreeConfig {
            max_depth: self.max_depth,
            min_child_weight: 1.0,
            lambda: 1e-6,
            feature_subsample: self.feature_subsample,
            random_thresholds: self.random_thresholds,
        };
        // Each tree gets its own derived RNG stream, so the fits are
        // independent tasks; ff-par returns them in tree order and the
        // forest is identical at every thread count.
        let (seed, bootstrap) = (self.seed, self.bootstrap);
        self.trees = ff_par::run_indexed(self.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(derive_tree_seed(seed, t as u64));
            let rows: Vec<usize> = if bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            GhTree::fit(x, &grad, &hess, &rows, &cfg, &mut rng)
        });
        let mut gains = vec![0.0; x.cols()];
        for tree in &self.trees {
            for (g, t) in gains.iter_mut().zip(&tree.feature_gains) {
                *g += t;
            }
        }
        let total: f64 = gains.iter().sum();
        self.importances = if total > 0.0 {
            gains.iter().map(|g| g / total).collect()
        } else {
            vec![0.0; x.cols()]
        };
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let predict_row = |i: usize| {
            let row = x.row(i);
            self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
        };
        // Rows are independent; small batches stay on the calling thread.
        if x.rows() * self.trees.len() >= PAR_MIN_PREDICTIONS {
            Ok(ff_par::run_indexed(x.rows(), predict_row))
        } else {
            Ok((0..x.rows()).map(predict_row).collect())
        }
    }
}

/// Bagged classification forest (Gini trees, majority soft-vote).
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Fraction of features per split (√p convention ≈ use `None` to auto).
    pub feature_subsample: Option<f64>,
    /// Bootstrap rows.
    pub bootstrap: bool,
    /// Extra-Trees random thresholds.
    pub random_thresholds: bool,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<ClassificationTree>,
    n_classes: usize,
    importances: Vec<f64>,
}

impl RandomForestClassifier {
    /// Standard random forest.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForestClassifier {
            n_trees,
            max_depth,
            feature_subsample: None,
            bootstrap: true,
            random_thresholds: false,
            seed,
            trees: Vec::new(),
            n_classes: 0,
            importances: Vec::new(),
        }
    }

    /// Extra-Trees variant.
    pub fn extra_trees(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForestClassifier {
            bootstrap: false,
            random_thresholds: true,
            ..Self::new(n_trees, max_depth, seed)
        }
    }

    /// Normalized feature importances.
    pub fn feature_importances(&self) -> Result<&[f64]> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(&self.importances)
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, labels: &[usize], n_classes: usize) -> Result<()> {
        if x.rows() == 0 || x.rows() != labels.len() {
            return Err(ModelError::InvalidData("bad shapes".into()));
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(ModelError::InvalidData("label out of range".into()));
        }
        let n = x.rows();
        let p = x.cols();
        let subsample = self
            .feature_subsample
            .unwrap_or_else(|| ((p as f64).sqrt() / p as f64).clamp(0.05, 1.0));
        let cfg = ClsTreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: 1,
            feature_subsample: subsample,
            random_thresholds: self.random_thresholds,
        };
        self.n_classes = n_classes;
        // Independent per-tree RNG streams; see the regressor fit above.
        let (seed, bootstrap) = (self.seed, self.bootstrap);
        self.trees = ff_par::run_indexed(self.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(derive_tree_seed(seed, t as u64));
            let rows: Vec<usize> = if bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            ClassificationTree::fit(x, labels, n_classes, &rows, &cfg, &mut rng)
        });
        let mut gains = vec![0.0; p];
        for tree in &self.trees {
            for (g, t) in gains.iter_mut().zip(&tree.feature_gains) {
                *g += t;
            }
        }
        let total: f64 = gains.iter().sum();
        self.importances = if total > 0.0 {
            gains.iter().map(|g| g / total).collect()
        } else {
            vec![0.0; p]
        };
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        let fill_row = |i: usize, acc: &mut [f64]| {
            let row = x.row(i);
            for tree in &self.trees {
                for (a, &p) in acc.iter_mut().zip(tree.predict_row(row)) {
                    *a += p;
                }
            }
            let sum: f64 = acc.iter().sum();
            if sum > 0.0 {
                for a in acc.iter_mut() {
                    *a /= sum;
                }
            }
        };
        // Each output row is written whole by one task, so the proba matrix
        // is identical at every thread count.
        if x.rows() * self.trees.len() >= PAR_MIN_PREDICTIONS && self.n_classes > 0 {
            let n_classes = self.n_classes;
            ff_par::par_chunks_mut(out.as_mut_slice(), n_classes, |i, acc| fill_row(i, acc));
        } else {
            for i in 0..x.rows() {
                fill_row(i, out.row_mut(i));
            }
        }
        Ok(out)
    }
}

/// Extra-Trees classifier: a [`RandomForestClassifier`] with random
/// thresholds and no bootstrap, packaged as its own type for the Table 4 zoo.
pub type ExtraTreesClassifier = RandomForestClassifier;

/// Extra-Trees regressor alias.
pub type ExtraTreesRegressor = RandomForestRegressor;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, mse};

    fn regression_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 2u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            let junk = rnd();
            rows.push(vec![a, b, junk]);
            y.push(if a > 0.0 { 5.0 } else { 0.0 } + b + 0.05 * rnd());
        }
        (Matrix::from_fn(n, 3, |i, j| rows[i][j]), y)
    }

    #[test]
    fn forest_fits_nonlinear_signal() {
        let (x, y) = regression_data(300);
        let mut f = RandomForestRegressor::new(30, 6, 3);
        f.feature_subsample = 1.0;
        f.fit(&x, &y).unwrap();
        let pred = f.predict(&x).unwrap();
        assert!(mse(&y, &pred) < 1.0, "mse {}", mse(&y, &pred));
    }

    #[test]
    fn importances_rank_signal_over_junk() {
        let (x, y) = regression_data(300);
        let mut f = RandomForestRegressor::new(30, 6, 3);
        f.feature_subsample = 1.0;
        f.fit(&x, &y).unwrap();
        let imp = f.feature_importances().unwrap();
        assert!(imp[0] > imp[2] * 5.0, "importances {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classifier_learns_separable_data() {
        let n = 200;
        let x = Matrix::from_fn(n, 2, |i, j| {
            if j == 0 {
                (i % 10) as f64
            } else {
                (i / 10) as f64
            }
        });
        let labels: Vec<usize> = (0..n).map(|i| usize::from((i / 10) >= 10)).collect();
        let mut c = RandomForestClassifier::new(20, 8, 5);
        c.fit(&x, &labels, 2).unwrap();
        let pred = c.predict(&x).unwrap();
        assert!(accuracy(&labels, &pred) > 0.95);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        let labels: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let mut c = RandomForestClassifier::new(10, 4, 1);
        c.fit(&x, &labels, 3).unwrap();
        let p = c.predict_proba(&x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extra_trees_variants_work() {
        let (x, y) = regression_data(200);
        let mut f = RandomForestRegressor::extra_trees(20, 8, 7);
        f.feature_subsample = 1.0;
        f.fit(&x, &y).unwrap();
        assert!(mse(&y, &f.predict(&x).unwrap()) < 2.0);

        let labels: Vec<usize> = y.iter().map(|&v| usize::from(v > 2.0)).collect();
        let mut c = RandomForestClassifier::extra_trees(20, 8, 7);
        c.fit(&x, &labels, 2).unwrap();
        assert!(accuracy(&labels, &c.predict(&x).unwrap()) > 0.9);
    }

    #[test]
    fn forest_fit_and_predict_are_thread_count_invariant() {
        let (x, y) = regression_data(150);
        let labels: Vec<usize> = y.iter().map(|&v| usize::from(v > 2.0)).collect();
        let run = |threads: usize| {
            ff_par::with_threads(threads, || {
                let mut f = RandomForestRegressor::new(16, 5, 9);
                f.fit(&x, &y).unwrap();
                let pred: Vec<u64> = f.predict(&x).unwrap().iter().map(|v| v.to_bits()).collect();
                let imp: Vec<u64> = f
                    .feature_importances()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let mut c = RandomForestClassifier::new(16, 5, 9);
                c.fit(&x, &labels, 2).unwrap();
                let proba: Vec<u64> = c
                    .predict_proba(&x)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (pred, imp, proba)
            })
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        assert_eq!(run(8), seq);
    }

    #[test]
    fn invalid_labels_rejected() {
        let x = Matrix::zeros(3, 1);
        let mut c = RandomForestClassifier::new(5, 3, 0);
        assert!(c.fit(&x, &[0, 1, 5], 2).is_err());
    }

    #[test]
    fn not_fitted_errors() {
        let f = RandomForestRegressor::new(5, 3, 0);
        assert!(f.predict(&Matrix::zeros(1, 1)).is_err());
        assert!(f.feature_importances().is_err());
        let c = RandomForestClassifier::new(5, 3, 0);
        assert!(c.predict_proba(&Matrix::zeros(1, 1)).is_err());
    }
}
