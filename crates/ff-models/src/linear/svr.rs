//! Linear support vector regression (Table 2: `C ∈ [1, 10]`,
//! `epsilon ∈ [0.01, 0.1]`).
//!
//! Minimizes `1/2 ‖w‖² + C Σ max(0, |yᵢ − w·xᵢ − b| − ε)` by averaged
//! stochastic subgradient descent (Pegasos-style step sizes) on
//! standardized features — the primal analogue of LIBLINEAR's L1-loss SVR.

use crate::data::{Standardizer, TargetScaler};
use crate::{validate_xy, LinearParams, ModelError, Regressor, Result};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ε-insensitive linear SVR.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    /// Slack penalty.
    pub c: f64,
    /// Insensitivity tube half-width (in standardized target units).
    pub epsilon: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    target: TargetScaler,
    w: Vec<f64>,
    b: f64,
}

impl LinearSvr {
    /// Creates a LinearSVR with the given penalty and tube width.
    pub fn new(c: f64, epsilon: f64) -> LinearSvr {
        LinearSvr {
            c,
            epsilon,
            epochs: 60,
            seed: 13,
            state: None,
        }
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let target = TargetScaler::fit(y);
        let xs = scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| target.scale(v)).collect();
        let n = xs.rows();
        let p = xs.cols();
        // Regularization in Pegasos form: lambda = 1 / (C n).
        let lambda = 1.0 / (self.c.max(1e-9) * n as f64);
        let mut w = vec![0.0; p];
        let mut b = 0.0;
        let mut w_avg = vec![0.0; p];
        let mut b_avg = 0.0;
        let mut averaged = 0usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0usize;
        let total_steps = self.epochs * n;
        for _ in 0..self.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let pred = ff_linalg::vector::dot(xs.row(i), &w) + b;
                let err = ys[i] - pred;
                // Subgradient of the epsilon-insensitive loss.
                let g = if err > self.epsilon {
                    -1.0
                } else if err < -self.epsilon {
                    1.0
                } else {
                    0.0
                };
                // w ← (1 − η λ) w − η g xᵢ / n·C scaling folded into lambda.
                let shrink = 1.0 - (eta * lambda).min(0.999);
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if g != 0.0 {
                    let step = eta / n as f64;
                    for (wj, &xj) in w.iter_mut().zip(xs.row(i)) {
                        *wj -= step * g * xj;
                    }
                    b -= step * g;
                }
                // Tail averaging over the last half of training.
                if t * 2 >= total_steps {
                    for (wa, &wj) in w_avg.iter_mut().zip(&w) {
                        *wa += wj;
                    }
                    b_avg += b;
                    averaged += 1;
                }
            }
        }
        if averaged > 0 {
            for wa in w_avg.iter_mut() {
                *wa /= averaged as f64;
            }
            b_avg /= averaged as f64;
        } else {
            w_avg = w;
            b_avg = b;
        }
        if w_avg.iter().any(|v| !v.is_finite()) || !b_avg.is_finite() {
            return Err(ModelError::Numerical("SVR diverged".into()));
        }
        self.state = Some(FitState {
            scaler,
            target,
            w: w_avg,
            b: b_avg,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                s.target
                    .unscale(ff_linalg::vector::dot(xs.row(i), &s.w) + s.b)
            })
            .collect())
    }
}

impl LinearParams for LinearSvr {
    fn coefficients(&self) -> Result<&[f64]> {
        self.state
            .as_ref()
            .map(|s| s.w.as_slice())
            .ok_or(ModelError::NotFitted)
    }

    fn intercept(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.b)
            .ok_or(ModelError::NotFitted)
    }

    fn set_linear_params(&mut self, coef: &[f64], intercept: f64) {
        if let Some(s) = self.state.as_mut() {
            s.w = coef.to_vec();
            s.b = intercept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 31u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            rows.push(vec![a, b]);
            y.push(2.0 * a + b - 1.0 + 0.02 * rnd());
        }
        (Matrix::from_fn(n, 2, |i, j| rows[i][j]), y)
    }

    #[test]
    fn fits_linear_relationship() {
        let (x, y) = data(200);
        let mut m = LinearSvr::new(5.0, 0.01);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        let err = mse(&y, &pred);
        assert!(err < 0.05, "mse {err}");
    }

    #[test]
    fn robust_to_outliers_compared_to_squared_loss() {
        // SVR's absolute-style loss should resist a few wild targets.
        let (x, mut y) = data(200);
        y[0] = 100.0;
        y[1] = -100.0;
        let mut m = LinearSvr::new(5.0, 0.01);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        // Check the inliers are still fit decently.
        let err = mse(&y[2..], &pred[2..]);
        assert!(err < 1.0, "inlier mse {err}");
    }

    #[test]
    fn wide_epsilon_tube_underfits() {
        let (x, y) = data(200);
        let mut tight = LinearSvr::new(5.0, 0.01);
        let mut wide = LinearSvr::new(5.0, 3.0); // wider than the signal
        tight.fit(&x, &y).unwrap();
        wide.fit(&x, &y).unwrap();
        let e_tight = mse(&y, &tight.predict(&x).unwrap());
        let e_wide = mse(&y, &wide.predict(&x).unwrap());
        assert!(e_tight < e_wide, "tight {e_tight} wide {e_wide}");
    }

    #[test]
    fn not_fitted_errors() {
        let m = LinearSvr::new(1.0, 0.1);
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = data(100);
        let mut a = LinearSvr::new(2.0, 0.05);
        let mut b = LinearSvr::new(2.0, 0.05);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
