//! Huber regressor (Table 2: `epsilon ∈ {1.0, 1.35, 1.5}`, `alpha` on a log
//! grid), fitted by iteratively reweighted least squares.
//!
//! The Huber loss is quadratic for residuals below `epsilon·σ` and linear
//! beyond, giving robustness to outliers. IRLS alternates a weighted ridge
//! solve with a robust scale (MAD) update, the classical scheme.

use crate::data::{Standardizer, TargetScaler};
use crate::{validate_xy, LinearParams, ModelError, Regressor, Result};
use ff_linalg::{cholesky::CholeskyFactor, Matrix};

/// Huber-loss linear regression.
#[derive(Debug, Clone)]
pub struct HuberRegressor {
    /// Outlier threshold in robust-σ units.
    pub epsilon: f64,
    /// L2 regularization strength.
    pub alpha: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    target: TargetScaler,
    coef: Vec<f64>,
    intercept: f64,
}

impl HuberRegressor {
    /// Creates a Huber regressor.
    pub fn new(epsilon: f64, alpha: f64) -> HuberRegressor {
        HuberRegressor {
            epsilon: epsilon.max(1.0),
            alpha: alpha.max(0.0),
            max_iter: 40,
            state: None,
        }
    }
}

impl Regressor for HuberRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let target = TargetScaler::fit(y);
        let xs = scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| target.scale(v)).collect();
        let n = xs.rows();
        let p = xs.cols();

        let mut coef = vec![0.0; p];
        let mut intercept = 0.0;
        let mut weights = vec![1.0; n];
        for _ in 0..self.max_iter {
            // Weighted ridge solve: (Xᵀ W X + αI) β = Xᵀ W y, with an
            // unpenalized intercept handled by augmenting a constant column.
            let mut gram = Matrix::zeros(p + 1, p + 1);
            let mut rhs = vec![0.0; p + 1];
            for i in 0..n {
                let w = weights[i];
                let row = xs.row(i);
                for a in 0..p {
                    let ra = row[a] * w;
                    for b in a..p {
                        let cur = gram.get(a, b);
                        gram.set(a, b, cur + ra * row[b]);
                    }
                    let cur = gram.get(a, p);
                    gram.set(a, p, cur + ra);
                    rhs[a] += ra * ys[i];
                }
                let cur = gram.get(p, p);
                gram.set(p, p, cur + w);
                rhs[p] += w * ys[i];
            }
            for a in 0..p + 1 {
                for b in 0..a {
                    let v = gram.get(b, a);
                    gram.set(a, b, v);
                }
            }
            for a in 0..p {
                let cur = gram.get(a, a);
                gram.set(a, a, cur + self.alpha.max(1e-10));
            }
            let f = CholeskyFactor::new_with_jitter(&gram, 1e-8, 10)
                .map_err(|e| ModelError::Numerical(e.to_string()))?;
            let beta = f
                .solve(&rhs)
                .map_err(|e| ModelError::Numerical(e.to_string()))?;
            let new_coef = beta[..p].to_vec();
            let new_intercept = beta[p];
            let delta: f64 = new_coef
                .iter()
                .zip(&coef)
                .map(|(a, b)| (a - b).abs())
                .fold((new_intercept - intercept).abs(), f64::max);
            coef = new_coef;
            intercept = new_intercept;

            // Robust scale via MAD of residuals.
            let resid: Vec<f64> = (0..n)
                .map(|i| ys[i] - ff_linalg::vector::dot(xs.row(i), &coef) - intercept)
                .collect();
            let mut abs_r: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
            abs_r.sort_by(|a, b| a.total_cmp(b));
            let mad = abs_r[n / 2].max(1e-9) * 1.4826;
            let cutoff = self.epsilon * mad;
            for (w, r) in weights.iter_mut().zip(&resid) {
                *w = if r.abs() <= cutoff {
                    1.0
                } else {
                    cutoff / r.abs()
                };
            }
            if delta < 1e-8 {
                break;
            }
        }
        if coef.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::Numerical("non-finite coefficients".into()));
        }
        self.state = Some(FitState {
            scaler,
            target,
            coef,
            intercept,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                s.target
                    .unscale(ff_linalg::vector::dot(xs.row(i), &s.coef) + s.intercept)
            })
            .collect())
    }
}

impl LinearParams for HuberRegressor {
    fn coefficients(&self) -> Result<&[f64]> {
        self.state
            .as_ref()
            .map(|s| s.coef.as_slice())
            .ok_or(ModelError::NotFitted)
    }

    fn intercept(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.intercept)
            .ok_or(ModelError::NotFitted)
    }

    fn set_linear_params(&mut self, coef: &[f64], intercept: f64) {
        if let Some(s) = self.state.as_mut() {
            s.coef = coef.to_vec();
            s.intercept = intercept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn data_with_outliers(n: usize, n_outliers: usize) -> (Matrix, Vec<f64>) {
        let mut state = 8u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = rnd();
            rows.push(vec![a]);
            let mut target = 3.0 * a + 1.0 + 0.05 * rnd();
            if i < n_outliers {
                target += 50.0;
            }
            y.push(target);
        }
        (Matrix::from_fn(n, 1, |i, j| rows[i][j]), y)
    }

    #[test]
    fn fits_clean_linear_data() {
        let (x, y) = data_with_outliers(150, 0);
        let mut m = HuberRegressor::new(1.35, 1e-4);
        m.fit(&x, &y).unwrap();
        assert!(mse(&y, &m.predict(&x).unwrap()) < 0.02);
    }

    #[test]
    fn resists_outliers_better_than_ols() {
        let (x, y) = data_with_outliers(150, 8);
        let mut huber = HuberRegressor::new(1.35, 1e-4);
        huber.fit(&x, &y).unwrap();
        // OLS baseline via ridge with tiny penalty.
        let xs = x.clone();
        let ols_coef = ff_linalg::solve::ridge(
            &Matrix::from_fn(xs.rows(), 2, |i, j| if j == 0 { xs.get(i, 0) } else { 1.0 }),
            &y,
            1e-8,
        )
        .unwrap();
        let ols_pred: Vec<f64> = (0..x.rows())
            .map(|i| ols_coef[0] * x.get(i, 0) + ols_coef[1])
            .collect();
        let huber_pred = huber.predict(&x).unwrap();
        // Compare on inliers only.
        let e_huber = mse(&y[8..], &huber_pred[8..]);
        let e_ols = mse(&y[8..], &ols_pred[8..]);
        assert!(
            e_huber < e_ols * 0.5,
            "huber {e_huber} should beat ols {e_ols} on inliers"
        );
    }

    #[test]
    fn epsilon_floor_is_enforced() {
        let m = HuberRegressor::new(0.1, 0.0);
        assert_eq!(m.epsilon, 1.0);
    }

    #[test]
    fn not_fitted_errors() {
        let m = HuberRegressor::new(1.35, 1e-3);
        assert!(m.predict(&Matrix::zeros(1, 1)).is_err());
    }
}
