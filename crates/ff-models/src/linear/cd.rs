//! Coordinate-descent core for L1/L2-regularized linear regression.
//!
//! Minimizes `1/(2n) ‖y − Xβ − b‖² + α·ρ‖β‖₁ + α(1−ρ)/2 ‖β‖²`
//! (the scikit-learn elastic-net objective), with cyclic or random
//! coordinate selection — the `selection` hyperparameter of Table 2.

use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Coordinate selection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Sweep coordinates in order every pass.
    Cyclic,
    /// Pick a random coordinate each update.
    Random,
}

impl Selection {
    /// Parses the Table 2 categorical value.
    pub fn from_name(name: &str) -> Selection {
        match name {
            "random" => Selection::Random,
            _ => Selection::Cyclic,
        }
    }
}

/// Soft-thresholding operator `S(z, t) = sign(z)·max(|z| − t, 0)`.
#[inline]
pub fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

/// Result of a coordinate-descent solve.
#[derive(Debug, Clone)]
pub struct CdFit {
    /// Coefficients in the (standardized) feature space used by the caller.
    pub coef: Vec<f64>,
    /// Intercept in the same space.
    pub intercept: f64,
    /// Number of full passes performed.
    pub passes: usize,
}

/// Solves the elastic-net problem by coordinate descent.
///
/// `x` should be standardized by the caller for good conditioning. `alpha`
/// is the overall regularization strength, `l1_ratio ∈ [0, 1]` mixes L1 vs
/// L2. Converges when the largest coefficient update in a pass falls below
/// `tol`.
#[allow(clippy::too_many_arguments)] // solver knobs are clearest as a flat list
pub fn coordinate_descent(
    x: &Matrix,
    y: &[f64],
    alpha: f64,
    l1_ratio: f64,
    selection: Selection,
    max_passes: usize,
    tol: f64,
    seed: u64,
) -> CdFit {
    let n = x.rows();
    let p = x.cols();
    let nf = n as f64;
    let l1 = alpha * l1_ratio;
    let l2 = alpha * (1.0 - l1_ratio);

    // Precompute column squared norms / n.
    let mut col_sq = vec![0.0; p];
    for i in 0..n {
        for (c, &v) in col_sq.iter_mut().zip(x.row(i)) {
            *c += v * v;
        }
    }
    for c in col_sq.iter_mut() {
        *c /= nf;
    }

    let mut coef = vec![0.0; p];
    let y_mean = ff_linalg::vector::mean(y);
    let mut intercept = y_mean;
    // Residual r = y − Xβ − b.
    let mut resid: Vec<f64> = y.iter().map(|&v| v - intercept).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passes = 0;

    for pass in 0..max_passes {
        passes = pass + 1;
        let mut max_delta = 0.0f64;
        for step in 0..p {
            let j = match selection {
                Selection::Cyclic => step,
                Selection::Random => rng.gen_range(0..p),
            };
            if col_sq[j] <= 1e-300 {
                continue;
            }
            // rho_j = (1/n) x_jᵀ r + col_sq[j] * coef[j]
            let mut rho = 0.0;
            for i in 0..n {
                rho += x.get(i, j) * resid[i];
            }
            rho = rho / nf + col_sq[j] * coef[j];
            let new = soft_threshold(rho, l1) / (col_sq[j] + l2);
            let delta = new - coef[j];
            if delta != 0.0 {
                for i in 0..n {
                    resid[i] -= delta * x.get(i, j);
                }
                coef[j] = new;
                max_delta = max_delta.max(delta.abs());
            }
        }
        // Update intercept to the residual mean (unpenalized).
        let r_mean = ff_linalg::vector::mean(&resid);
        if r_mean.abs() > 0.0 {
            intercept += r_mean;
            for r in resid.iter_mut() {
                *r -= r_mean;
            }
            max_delta = max_delta.max(r_mean.abs());
        }
        if max_delta < tol {
            break;
        }
    }
    CdFit {
        coef,
        intercept,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> (Matrix, Vec<f64>) {
        // y = 2 x0 − 1 x1 + 3, x2 is pure noise-free junk (constant 0 signal).
        let n = 60;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            let c = rnd();
            rows.push(vec![a, b, c]);
            y.push(2.0 * a - b + 3.0);
        }
        (Matrix::from_fn(n, 3, |i, j| rows[i][j]), y)
    }

    #[test]
    fn unregularized_recovers_ols() {
        let (x, y) = design();
        let fit = coordinate_descent(&x, &y, 1e-9, 1.0, Selection::Cyclic, 500, 1e-10, 0);
        assert!((fit.coef[0] - 2.0).abs() < 1e-4, "{:?}", fit.coef);
        assert!((fit.coef[1] + 1.0).abs() < 1e-4);
        assert!(fit.coef[2].abs() < 1e-4);
        assert!((fit.intercept - 3.0).abs() < 1e-4);
    }

    #[test]
    fn strong_l1_zeroes_weak_feature() {
        let (x, y) = design();
        let fit = coordinate_descent(&x, &y, 0.3, 1.0, Selection::Cyclic, 500, 1e-10, 0);
        assert_eq!(fit.coef[2], 0.0, "junk feature should be exactly zero");
        assert!(fit.coef[0].abs() < 2.0, "L1 must shrink");
        assert!(fit.coef[0] > 0.5, "signal must survive");
    }

    #[test]
    fn random_selection_converges_to_same_solution() {
        let (x, y) = design();
        let a = coordinate_descent(&x, &y, 0.05, 1.0, Selection::Cyclic, 2000, 1e-12, 0);
        let b = coordinate_descent(&x, &y, 0.05, 1.0, Selection::Random, 4000, 1e-12, 9);
        for (ca, cb) in a.coef.iter().zip(&b.coef) {
            assert!((ca - cb).abs() < 1e-3, "{:?} vs {:?}", a.coef, b.coef);
        }
    }

    #[test]
    fn l2_component_shrinks_without_sparsity() {
        let (x, y) = design();
        let fit = coordinate_descent(&x, &y, 0.5, 0.0, Selection::Cyclic, 500, 1e-10, 0);
        // Pure ridge: coefficients shrink but normally stay nonzero.
        assert!(fit.coef[0] > 0.1 && fit.coef[0] < 2.0);
        assert!(fit.coef[1] < -0.1 && fit.coef[1] > -1.0);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
