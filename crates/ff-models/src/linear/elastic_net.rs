//! ElasticNetCV regressor (Table 2: `l1_ratio`, `selection`).
//!
//! Matches scikit-learn's `ElasticNetCV`: the `alpha` strength is selected
//! internally by cross-validation over a geometric grid, using *time-series*
//! forward-chaining folds (never training on the future).

use crate::data::{Standardizer, TargetScaler};
use crate::linear::cd::{coordinate_descent, Selection};
use crate::{validate_xy, LinearParams, ModelError, Regressor, Result};
use ff_linalg::Matrix;

/// Elastic-net with internal CV over alpha.
#[derive(Debug, Clone)]
pub struct ElasticNetCv {
    /// L1/L2 mixing ratio. Values are clamped into `[0, 1]`; Table 2 samples
    /// the raw hyperparameter from `[0.3, 10]`, which we map through
    /// `min(raw, 1.0)` (raw > 1 behaves as pure lasso), mirroring how an
    /// out-of-range value degenerates.
    pub l1_ratio: f64,
    /// Coordinate selection order.
    pub selection: Selection,
    /// Number of alphas on the geometric grid.
    pub n_alphas: usize,
    /// Number of forward-chaining CV folds.
    pub n_folds: usize,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    target: TargetScaler,
    coef: Vec<f64>,
    intercept: f64,
    best_alpha: f64,
}

impl ElasticNetCv {
    /// Creates an ElasticNetCV with the given (raw) l1_ratio.
    pub fn new(l1_ratio: f64, selection: Selection) -> ElasticNetCv {
        ElasticNetCv {
            l1_ratio: l1_ratio.clamp(0.0, 1.0),
            selection,
            n_alphas: 10,
            n_folds: 3,
            state: None,
        }
    }

    /// The alpha selected by cross-validation (after fitting).
    pub fn best_alpha(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.best_alpha)
            .ok_or(ModelError::NotFitted)
    }
}

impl Regressor for ElasticNetCv {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let target = TargetScaler::fit(y);
        let xs = scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| target.scale(v)).collect();
        let n = xs.rows();

        // Alpha grid: alpha_max kills all coefficients; go down 3 decades.
        let alpha_max = {
            let mut m = 0.0f64;
            for j in 0..xs.cols() {
                let mut dot = 0.0;
                for i in 0..n {
                    dot += xs.get(i, j) * ys[i];
                }
                m = m.max(dot.abs() / n as f64);
            }
            (m / self.l1_ratio.max(1e-3)).max(1e-6)
        };
        let alphas: Vec<f64> = (0..self.n_alphas)
            .map(|k| alpha_max * 10f64.powf(-3.0 * k as f64 / (self.n_alphas - 1).max(1) as f64))
            .collect();

        // Forward-chaining folds: train on [0, cut), validate on [cut, next).
        let folds = self.n_folds.min(n / 4).max(1);
        let mut best = (f64::INFINITY, alphas[0]);
        for &alpha in &alphas {
            let mut cv_err = 0.0;
            let mut used = 0;
            for f in 0..folds {
                let cut = n * (f + folds) / (2 * folds); // 50%..~100%
                let end = (cut + n / (2 * folds)).min(n);
                if cut < 8 || cut >= end {
                    continue;
                }
                let xtr = Matrix::from_fn(cut, xs.cols(), |i, j| xs.get(i, j));
                let fit = coordinate_descent(
                    &xtr,
                    &ys[..cut],
                    alpha,
                    self.l1_ratio,
                    self.selection,
                    150,
                    1e-6,
                    7,
                );
                for i in cut..end {
                    let p = ff_linalg::vector::dot(xs.row(i), &fit.coef) + fit.intercept;
                    cv_err += (p - ys[i]) * (p - ys[i]);
                    used += 1;
                }
            }
            if used > 0 {
                cv_err /= used as f64;
                if cv_err < best.0 {
                    best = (cv_err, alpha);
                }
            }
        }

        let fit = coordinate_descent(
            &xs,
            &ys,
            best.1,
            self.l1_ratio,
            self.selection,
            300,
            1e-7,
            7,
        );
        if fit.coef.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::Numerical("non-finite coefficients".into()));
        }
        self.state = Some(FitState {
            scaler,
            target,
            coef: fit.coef,
            intercept: fit.intercept,
            best_alpha: best.1,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                s.target
                    .unscale(ff_linalg::vector::dot(xs.row(i), &s.coef) + s.intercept)
            })
            .collect())
    }
}

impl LinearParams for ElasticNetCv {
    fn coefficients(&self) -> Result<&[f64]> {
        self.state
            .as_ref()
            .map(|s| s.coef.as_slice())
            .ok_or(ModelError::NotFitted)
    }

    fn intercept(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.intercept)
            .ok_or(ModelError::NotFitted)
    }

    fn set_linear_params(&mut self, coef: &[f64], intercept: f64) {
        if let Some(s) = self.state.as_mut() {
            s.coef = coef.to_vec();
            s.intercept = intercept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 4u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            let c = rnd();
            rows.push(vec![a, b, c]);
            y.push(3.0 * a - 2.0 * b + 5.0 + 0.05 * rnd());
        }
        (Matrix::from_fn(n, 3, |i, j| rows[i][j]), y)
    }

    #[test]
    fn cv_selects_small_alpha_for_clean_signal() {
        let (x, y) = data(120);
        let mut m = ElasticNetCv::new(0.5, Selection::Cyclic);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(mse(&y, &pred) < 0.05, "mse {}", mse(&y, &pred));
        assert!(m.best_alpha().unwrap() < 0.1);
    }

    #[test]
    fn l1_ratio_above_one_is_clamped() {
        let m = ElasticNetCv::new(7.0, Selection::Cyclic);
        assert_eq!(m.l1_ratio, 1.0);
    }

    #[test]
    fn not_fitted_errors() {
        let m = ElasticNetCv::new(0.5, Selection::Cyclic);
        assert!(m.predict(&Matrix::zeros(1, 3)).is_err());
        assert!(m.best_alpha().is_err());
    }

    #[test]
    fn generalizes_to_held_out_rows() {
        let (x, y) = data(150);
        let xtr = Matrix::from_fn(100, 3, |i, j| x.get(i, j));
        let xte = Matrix::from_fn(50, 3, |i, j| x.get(100 + i, j));
        let mut m = ElasticNetCv::new(0.9, Selection::Random);
        m.fit(&xtr, &y[..100]).unwrap();
        let pred = m.predict(&xte).unwrap();
        assert!(mse(&y[100..], &pred) < 0.1);
    }
}
