//! Lasso regressor (Table 2: `alpha`, `selection ∈ {cyclic, random}`).

use crate::data::{Standardizer, TargetScaler};
use crate::linear::cd::{coordinate_descent, Selection};
use crate::{validate_xy, LinearParams, ModelError, Regressor, Result};
use ff_linalg::Matrix;

/// L1-regularized linear regression fitted by coordinate descent on
/// standardized features.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// Regularization strength.
    pub alpha: f64,
    /// Coordinate selection order.
    pub selection: Selection,
    /// Maximum coordinate-descent passes.
    pub max_passes: usize,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    target: TargetScaler,
    /// Coefficients in standardized space.
    coef: Vec<f64>,
    intercept: f64,
}

impl Lasso {
    /// Creates a Lasso with the given regularization strength.
    pub fn new(alpha: f64, selection: Selection) -> Lasso {
        Lasso {
            alpha,
            selection,
            max_passes: 300,
            state: None,
        }
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let target = TargetScaler::fit(y);
        let xs = scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| target.scale(v)).collect();
        let fit = coordinate_descent(
            &xs,
            &ys,
            self.alpha,
            1.0,
            self.selection,
            self.max_passes,
            1e-7,
            42,
        );
        if fit.coef.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::Numerical("non-finite coefficients".into()));
        }
        self.state = Some(FitState {
            scaler,
            target,
            coef: fit.coef,
            intercept: fit.intercept,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                let z = ff_linalg::vector::dot(xs.row(i), &s.coef) + s.intercept;
                s.target.unscale(z)
            })
            .collect())
    }
}

impl LinearParams for Lasso {
    fn coefficients(&self) -> Result<&[f64]> {
        self.state
            .as_ref()
            .map(|s| s.coef.as_slice())
            .ok_or(ModelError::NotFitted)
    }

    fn intercept(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.intercept)
            .ok_or(ModelError::NotFitted)
    }

    fn set_linear_params(&mut self, coef: &[f64], intercept: f64) {
        if let Some(s) = self.state.as_mut() {
            s.coef = coef.to_vec();
            s.intercept = intercept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 77u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            rows.push(vec![a, b]);
            y.push(4.0 * a + 0.5 * b + 10.0 + 0.01 * rnd());
        }
        (Matrix::from_fn(n, 2, |i, j| rows[i][j]), y)
    }

    #[test]
    fn fits_linear_relationship() {
        let (x, y) = linear_data(100);
        let mut m = Lasso::new(1e-4, Selection::Cyclic);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(mse(&y, &pred) < 0.01, "mse {}", mse(&y, &pred));
    }

    #[test]
    fn heavy_alpha_predicts_mean() {
        let (x, y) = linear_data(100);
        let mut m = Lasso::new(100.0, Selection::Cyclic);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        let mean = ff_linalg::vector::mean(&y);
        for p in pred {
            assert!((p - mean).abs() < 0.5);
        }
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = Lasso::new(0.1, Selection::Cyclic);
        assert_eq!(
            m.predict(&Matrix::zeros(1, 2)).unwrap_err(),
            ModelError::NotFitted
        );
    }

    #[test]
    fn linear_params_roundtrip_changes_predictions() {
        let (x, y) = linear_data(50);
        let mut m = Lasso::new(1e-3, Selection::Random);
        m.fit(&x, &y).unwrap();
        let coef = m.coefficients().unwrap().to_vec();
        let zeroed = vec![0.0; coef.len()];
        m.set_linear_params(&zeroed, 0.0);
        let pred = m.predict(&x).unwrap();
        // All predictions collapse to unscale(0) = target mean.
        let mean = ff_linalg::vector::mean(&y);
        for p in pred {
            assert!((p - mean).abs() < 0.2);
        }
    }

    #[test]
    fn rejects_nan_target() {
        let x = Matrix::zeros(2, 1);
        let mut m = Lasso::new(0.1, Selection::Cyclic);
        assert!(m.fit(&x, &[1.0, f64::NAN]).is_err());
    }
}
