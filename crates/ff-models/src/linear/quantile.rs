//! Quantile regressor (Table 2: `alpha` on a log grid,
//! `quantile ∈ [0.1, 1]`).
//!
//! Minimizes the pinball loss `Σ ρ_q(yᵢ − w·xᵢ − b) + α‖w‖²` where
//! `ρ_q(r) = r·(q − 1{r<0})`. We optimize a lightly smoothed pinball loss
//! with full-batch Adam — simple, convex, and deterministic.

use crate::data::{Standardizer, TargetScaler};
use crate::{validate_xy, LinearParams, ModelError, Regressor, Result};
use ff_linalg::Matrix;

/// Linear quantile regression.
#[derive(Debug, Clone)]
pub struct QuantileRegressor {
    /// Target quantile in (0, 1); clamped from Table 2's `[0.1, 1]` range
    /// (1.0 would be the max — clamp to 0.99).
    pub quantile: f64,
    /// L2 regularization strength.
    pub alpha: f64,
    /// Optimization iterations.
    pub max_iter: usize,
    state: Option<FitState>,
}

#[derive(Debug, Clone)]
struct FitState {
    scaler: Standardizer,
    target: TargetScaler,
    coef: Vec<f64>,
    intercept: f64,
}

impl QuantileRegressor {
    /// Creates a quantile regressor.
    pub fn new(quantile: f64, alpha: f64) -> QuantileRegressor {
        QuantileRegressor {
            quantile: quantile.clamp(0.01, 0.99),
            alpha: alpha.max(0.0),
            max_iter: 500,
            state: None,
        }
    }
}

/// Smoothed pinball gradient: for |r| < h, interpolate between the two
/// subgradients to avoid oscillation near zero residual.
#[inline]
fn pinball_grad(r: f64, q: f64, h: f64) -> f64 {
    if r > h {
        -q
    } else if r < -h {
        1.0 - q
    } else {
        // Linear interpolation across the kink.
        let t = (r + h) / (2.0 * h); // 0 at r = −h, 1 at r = +h
        (1.0 - q) * (1.0 - t) + (-q) * t
    }
}

impl Regressor for QuantileRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let target = TargetScaler::fit(y);
        let xs = scaler.transform(x);
        let ys: Vec<f64> = y.iter().map(|&v| target.scale(v)).collect();
        let n = xs.rows();
        let p = xs.cols();
        let q = self.quantile;
        let h = 1e-3; // smoothing half-width in standardized units

        let mut coef = vec![0.0; p];
        // Start the intercept at the empirical quantile.
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut intercept = sorted[((n - 1) as f64 * q) as usize];

        // Adam over (coef, intercept).
        let (mut m, mut v) = (vec![0.0; p + 1], vec![0.0; p + 1]);
        let (b1, b2, eps, lr) = (0.9, 0.999, 1e-8, 0.05);
        for t in 1..=self.max_iter {
            let mut g = vec![0.0; p + 1];
            for i in 0..n {
                let r = ys[i] - ff_linalg::vector::dot(xs.row(i), &coef) - intercept;
                let gr = pinball_grad(r, q, h) / n as f64;
                for (gj, &xj) in g.iter_mut().zip(xs.row(i)) {
                    *gj += gr * xj;
                }
                g[p] += gr;
            }
            for (gj, c) in g.iter_mut().zip(&coef) {
                *gj += 2.0 * self.alpha * c / n as f64;
            }
            let bias1 = 1.0 - b1_pow(b1, t);
            let bias2 = 1.0 - b1_pow(b2, t);
            for j in 0..=p {
                m[j] = b1 * m[j] + (1.0 - b1) * g[j];
                v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
                let update = lr * (m[j] / bias1) / ((v[j] / bias2).sqrt() + eps);
                if j < p {
                    coef[j] -= update;
                } else {
                    intercept -= update;
                }
            }
        }
        if coef.iter().any(|c| !c.is_finite()) || !intercept.is_finite() {
            return Err(ModelError::Numerical("quantile fit diverged".into()));
        }
        self.state = Some(FitState {
            scaler,
            target,
            coef,
            intercept,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let s = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let xs = s.scaler.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                s.target
                    .unscale(ff_linalg::vector::dot(xs.row(i), &s.coef) + s.intercept)
            })
            .collect())
    }
}

fn b1_pow(b: f64, t: usize) -> f64 {
    b.powi(t as i32)
}

impl LinearParams for QuantileRegressor {
    fn coefficients(&self) -> Result<&[f64]> {
        self.state
            .as_ref()
            .map(|s| s.coef.as_slice())
            .ok_or(ModelError::NotFitted)
    }

    fn intercept(&self) -> Result<f64> {
        self.state
            .as_ref()
            .map(|s| s.intercept)
            .ok_or(ModelError::NotFitted)
    }

    fn set_linear_params(&mut self, coef: &[f64], intercept: f64) {
        if let Some(s) = self.state.as_mut() {
            s.coef = coef.to_vec();
            s.intercept = intercept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_regression_on_constant_features_finds_median() {
        // With a constant feature, the q-quantile model's prediction must be
        // the empirical q-quantile of y.
        let n = 201;
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = Matrix::from_fn(n, 1, |_, _| 1.0);
        let mut m = QuantileRegressor::new(0.5, 1e-6);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!((pred[0] - 100.0).abs() < 3.0, "median pred {}", pred[0]);
    }

    #[test]
    fn upper_quantile_sits_above_median() {
        let n = 300;
        let mut state = 3u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let x = Matrix::from_fn(n, 1, |_, _| 1.0);
        let y: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut q50 = QuantileRegressor::new(0.5, 1e-6);
        let mut q90 = QuantileRegressor::new(0.9, 1e-6);
        q50.fit(&x, &y).unwrap();
        q90.fit(&x, &y).unwrap();
        let p50 = q50.predict(&x).unwrap()[0];
        let p90 = q90.predict(&x).unwrap()[0];
        assert!(p90 > p50 + 0.2, "q90 {p90} vs q50 {p50}");
        // Roughly 90% of targets below the q90 prediction.
        let frac_below = y.iter().filter(|&&v| v < p90).count() as f64 / n as f64;
        assert!((frac_below - 0.9).abs() < 0.08, "coverage {frac_below}");
    }

    #[test]
    fn tracks_linear_signal() {
        let n = 200;
        let mut state = 9u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut xs = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            xs.push(a);
            y.push(5.0 * a + 0.1 * rnd());
        }
        let x = Matrix::from_fn(n, 1, |i, _| xs[i]);
        let mut m = QuantileRegressor::new(0.5, 1e-6);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        let err = crate::metrics::mae(&y, &pred);
        assert!(err < 0.3, "mae {err}");
    }

    #[test]
    fn quantile_is_clamped() {
        let m = QuantileRegressor::new(1.0, 0.1);
        assert!((m.quantile - 0.99).abs() < 1e-12);
    }

    #[test]
    fn not_fitted_errors() {
        let m = QuantileRegressor::new(0.5, 0.1);
        assert!(m.predict(&Matrix::zeros(1, 1)).is_err());
    }
}
