//! XGBoost-style gradient-boosted regression trees (Table 2: `n_estimators`,
//! `max_depth`, `learning_rate`, `reg_lambda`, `subsample`).
//!
//! Squared-error boosting with second-order leaf weights
//! `w = −G/(H + λ)`, exact greedy splits, row subsampling per tree, and
//! shrinkage.

use crate::tree::{GhTree, GhTreeConfig};
use crate::{validate_xy, ModelError, Regressor, Result};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gradient-boosted tree regressor.
#[derive(Debug, Clone)]
pub struct XgbRegressor {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// L2 leaf regularization.
    pub reg_lambda: f64,
    /// Row subsample fraction per tree, in (0, 1].
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
    base: f64,
    trees: Vec<GhTree>,
}

impl XgbRegressor {
    /// Creates a booster with the given Table 2 hyperparameters.
    pub fn new(
        n_estimators: usize,
        max_depth: usize,
        learning_rate: f64,
        reg_lambda: f64,
        subsample: f64,
    ) -> XgbRegressor {
        XgbRegressor {
            n_estimators: n_estimators.max(1),
            max_depth,
            learning_rate: learning_rate.clamp(1e-3, 1.0),
            reg_lambda: reg_lambda.max(0.0),
            subsample: subsample.clamp(0.05, 1.0),
            seed: 17,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Serializes the fitted ensemble into an opaque byte blob (version,
    /// base score, shrinkage, trees). See [`crate::ser`].
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let mut w = crate::ser::Writer::new();
        w.u8(1); // format version
        w.f64(self.base);
        w.f64(self.learning_rate);
        w.u32(self.trees.len() as u32);
        for t in &self.trees {
            t.write_to(&mut w);
        }
        Ok(w.finish())
    }

    /// Reconstructs a fitted ensemble from [`XgbRegressor::to_bytes`]
    /// output. The training hyperparameters are restored to defaults — only
    /// the prediction function is preserved, which is all a federated
    /// aggregate needs.
    pub fn from_bytes(blob: &[u8]) -> Result<XgbRegressor> {
        let mut r = crate::ser::Reader::new(blob);
        let err = |e: crate::ser::SerError| ModelError::InvalidData(e.to_string());
        let version = r.u8().map_err(err)?;
        if version != 1 {
            return Err(ModelError::InvalidData(format!(
                "unsupported model version {version}"
            )));
        }
        let base = r.f64().map_err(err)?;
        let learning_rate = r.f64().map_err(err)?;
        let n = r.u32().map_err(err)? as usize;
        if n == 0 || n > 100_000 {
            return Err(ModelError::InvalidData(format!("bad tree count {n}")));
        }
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            trees.push(GhTree::read_from(&mut r).map_err(err)?);
        }
        let mut out = XgbRegressor::new(n, 0, learning_rate.max(1e-3), 0.0, 1.0);
        out.base = base;
        out.learning_rate = learning_rate;
        out.trees = trees;
        Ok(out)
    }

    /// Normalized split-gain feature importances.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let p = self.trees[0].feature_gains.len();
        let mut gains = vec![0.0; p];
        for t in &self.trees {
            for (g, &tg) in gains.iter_mut().zip(&t.feature_gains) {
                *g += tg;
            }
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in gains.iter_mut() {
                *g /= total;
            }
        }
        Ok(gains)
    }
}

impl Regressor for XgbRegressor {
    fn to_blob(&self) -> Option<Vec<u8>> {
        self.to_bytes().ok()
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        validate_xy(x, y)?;
        let n = x.rows();
        self.base = ff_linalg::vector::mean(y);
        let mut pred = vec![self.base; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cfg = GhTreeConfig {
            max_depth: self.max_depth,
            min_child_weight: 1.0,
            lambda: self.reg_lambda,
            feature_subsample: 1.0,
            random_thresholds: false,
        };
        self.trees.clear();
        let hess = vec![1.0; n];
        for _ in 0..self.n_estimators {
            let grad: Vec<f64> = pred.iter().zip(y).map(|(&p, &t)| p - t).collect();
            let rows: Vec<usize> = if self.subsample < 1.0 {
                (0..n)
                    .filter(|_| rng.gen::<f64>() < self.subsample)
                    .collect()
            } else {
                (0..n).collect()
            };
            let rows = if rows.len() < 2 {
                (0..n).collect()
            } else {
                rows
            };
            let tree = GhTree::fit(x, &grad, &hess, &rows, &cfg, &mut rng);
            for (p, i) in pred.iter_mut().zip(0..n) {
                *p += self.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                self.base
                    + self.learning_rate
                        * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn friedman_like(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 12u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            let c = rnd();
            rows.push(vec![a, b, c]);
            y.push(10.0 * (a * b).sin() + 5.0 * c * c + 0.05 * (rnd() - 0.5));
        }
        (Matrix::from_fn(n, 3, |i, j| rows[i][j]), y)
    }

    #[test]
    fn boosting_reduces_error_with_more_rounds() {
        let (x, y) = friedman_like(300);
        let mut weak = XgbRegressor::new(2, 3, 0.3, 1.0, 1.0);
        let mut strong = XgbRegressor::new(40, 3, 0.3, 1.0, 1.0);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let e_weak = mse(&y, &weak.predict(&x).unwrap());
        let e_strong = mse(&y, &strong.predict(&x).unwrap());
        assert!(e_strong < e_weak * 0.5, "weak {e_weak} strong {e_strong}");
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let (x, y) = friedman_like(400);
        let mut m = XgbRegressor::new(60, 4, 0.2, 1.0, 1.0);
        m.fit(&x, &y).unwrap();
        let err = mse(&y, &m.predict(&x).unwrap());
        let var = ff_linalg::vector::variance(&y);
        assert!(err < 0.1 * var, "mse {err} vs var {var}");
    }

    #[test]
    fn subsample_still_learns() {
        let (x, y) = friedman_like(400);
        let mut m = XgbRegressor::new(60, 4, 0.2, 1.0, 0.5);
        m.fit(&x, &y).unwrap();
        let err = mse(&y, &m.predict(&x).unwrap());
        let var = ff_linalg::vector::variance(&y);
        assert!(err < 0.3 * var, "mse {err} vs var {var}");
    }

    #[test]
    fn single_round_predicts_near_mean_plus_one_tree() {
        let (x, y) = friedman_like(100);
        let mut m = XgbRegressor::new(1, 2, 1.0, 1.0, 1.0);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn importances_are_normalized() {
        let (x, y) = friedman_like(200);
        let mut m = XgbRegressor::new(20, 3, 0.3, 1.0, 1.0);
        m.fit(&x, &y).unwrap();
        let imp = m.feature_importances().unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn not_fitted_errors() {
        let m = XgbRegressor::new(5, 3, 0.1, 1.0, 1.0);
        assert!(m.predict(&Matrix::zeros(1, 3)).is_err());
        assert!(m.to_bytes().is_err());
    }

    #[test]
    fn serialization_roundtrip_preserves_predictions() {
        let (x, y) = friedman_like(200);
        let mut m = XgbRegressor::new(15, 4, 0.3, 1.0, 0.8);
        m.fit(&x, &y).unwrap();
        let blob = m.to_bytes().unwrap();
        let restored = XgbRegressor::from_bytes(&blob).unwrap();
        assert_eq!(m.predict(&x).unwrap(), restored.predict(&x).unwrap());
    }

    #[test]
    fn corrupt_blobs_are_rejected_gracefully() {
        let (x, y) = friedman_like(60);
        let mut m = XgbRegressor::new(5, 3, 0.3, 1.0, 1.0);
        m.fit(&x, &y).unwrap();
        let blob = m.to_bytes().unwrap();
        // Truncations at every prefix must error, never panic.
        for cut in 0..blob.len().min(200) {
            assert!(XgbRegressor::from_bytes(&blob[..cut]).is_err(), "cut {cut}");
        }
        // A wrong version byte is rejected.
        let mut bad = blob.clone();
        bad[0] = 99;
        assert!(XgbRegressor::from_bytes(&bad).is_err());
    }
}
