//! Histogram-binned, leaf-wise gradient trees — the LightGBM-characteristic
//! weak learner of the Table 4 classifier zoo.
//!
//! Features are quantized into at most 32 quantile bins; split search scans
//! bin histograms of (G, H); growth is *leaf-wise*: the leaf with the
//! globally best gain is split next, up to `max_leaves`.

use ff_linalg::Matrix;

/// Number of histogram bins per feature.
pub const N_BINS: usize = 32;

/// Quantile bin edges per feature, learned from training data.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// `edges[f]` are the upper edges of feature `f`'s bins (ascending).
    edges: Vec<Vec<f64>>,
}

impl BinMapper {
    /// Learns per-feature quantile edges.
    pub fn fit(x: &Matrix) -> BinMapper {
        let (n, p) = (x.rows(), x.cols());
        let mut edges = Vec::with_capacity(p);
        for f in 0..p {
            let mut vals: Vec<f64> = (0..n).map(|i| x.get(i, f)).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            let b = N_BINS.min(vals.len().max(1));
            let mut e = Vec::with_capacity(b);
            for k in 1..=b {
                let idx = (k * vals.len() / b).saturating_sub(1);
                e.push(vals[idx]);
            }
            e.dedup_by(|a, b| a == b);
            edges.push(e);
        }
        BinMapper { edges }
    }

    /// Bin index of value `v` for feature `f`.
    #[inline]
    pub fn bin(&self, f: usize, v: f64) -> usize {
        let e = &self.edges[f];
        match e.binary_search_by(|x| x.total_cmp(&v)) {
            Ok(i) => i,
            Err(i) => i.min(e.len().saturating_sub(1)),
        }
    }

    /// The value threshold corresponding to splitting after bin `b` of
    /// feature `f`.
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b.min(self.edges[f].len() - 1)]
    }

    /// Number of bins actually used for feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// Quantizes a full matrix into bin indices.
    pub fn quantize(&self, x: &Matrix) -> Vec<Vec<u8>> {
        (0..x.rows())
            .map(|i| {
                (0..x.cols())
                    .map(|f| self.bin(f, x.get(i, f)) as u8)
                    .collect()
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum HNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Value-space threshold (rows with `value <= threshold` go left;
        /// equals the upper edge of the split bin, so binned and raw
        /// routing agree).
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A leaf-wise-grown histogram tree.
#[derive(Debug, Clone)]
pub struct HistogramTree {
    nodes: Vec<HNode>,
}

struct LeafCandidate {
    node: usize,
    rows: Vec<usize>,
    gain: f64,
    feature: usize,
    bin_threshold: u8,
    g_sum: f64,
    h_sum: f64,
}

impl HistogramTree {
    /// Fits a tree to gradients/hessians using pre-quantized rows.
    #[allow(clippy::too_many_arguments)] // mirrors the GhTree::fit surface
    pub fn fit(
        binned: &[Vec<u8>],
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        max_leaves: usize,
        lambda: f64,
        min_child_weight: f64,
    ) -> HistogramTree {
        let mut tree = HistogramTree { nodes: Vec::new() };
        let (g0, h0) = rows
            .iter()
            .fold((0.0, 0.0), |(g, h), &i| (g + grad[i], h + hess[i]));
        tree.nodes.push(HNode::Leaf {
            value: -g0 / (h0 + lambda),
        });
        let mut frontier: Vec<LeafCandidate> = Vec::new();
        if let Some(c) = Self::best_split(
            binned,
            mapper,
            grad,
            hess,
            rows,
            0,
            g0,
            h0,
            lambda,
            min_child_weight,
        ) {
            frontier.push(c);
        }
        let mut n_leaves = 1;
        while n_leaves < max_leaves && !frontier.is_empty() {
            // Pop the candidate with the largest gain.
            let best_idx = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.gain.total_cmp(&b.1.gain))
                .map(|(i, _)| i)
                .unwrap();
            let cand = frontier.swap_remove(best_idx);
            // Execute the split.
            let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
            for &i in &cand.rows {
                if binned[i][cand.feature] <= cand.bin_threshold {
                    left_rows.push(i);
                } else {
                    right_rows.push(i);
                }
            }
            if left_rows.is_empty() || right_rows.is_empty() {
                continue;
            }
            let (gl, hl) = left_rows
                .iter()
                .fold((0.0, 0.0), |(g, h), &i| (g + grad[i], h + hess[i]));
            let (gr, hr) = (cand.g_sum - gl, cand.h_sum - hl);
            let li = tree.nodes.len();
            tree.nodes.push(HNode::Leaf {
                value: -gl / (hl + lambda),
            });
            let ri = tree.nodes.len();
            tree.nodes.push(HNode::Leaf {
                value: -gr / (hr + lambda),
            });
            tree.nodes[cand.node] = HNode::Split {
                feature: cand.feature,
                threshold: mapper.threshold(cand.feature, cand.bin_threshold as usize),
                left: li,
                right: ri,
            };
            n_leaves += 1;
            for (node, rows, g, h) in [(li, left_rows, gl, hl), (ri, right_rows, gr, hr)] {
                if let Some(c) = Self::best_split(
                    binned,
                    mapper,
                    grad,
                    hess,
                    &rows,
                    node,
                    g,
                    h,
                    lambda,
                    min_child_weight,
                ) {
                    frontier.push(c);
                }
            }
        }
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn best_split(
        binned: &[Vec<u8>],
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        node: usize,
        g_sum: f64,
        h_sum: f64,
        lambda: f64,
        min_child_weight: f64,
    ) -> Option<LeafCandidate> {
        if rows.len() < 2 {
            return None;
        }
        let p = binned[0].len();
        let parent = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<(f64, usize, u8)> = None;
        let mut hist_g = [0.0f64; N_BINS];
        let mut hist_h = [0.0f64; N_BINS];
        for f in 0..p {
            let nb = mapper.n_bins(f);
            if nb < 2 {
                continue;
            }
            hist_g[..nb].fill(0.0);
            hist_h[..nb].fill(0.0);
            for &i in rows {
                let b = binned[i][f] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += hess[i];
            }
            let (mut gl, mut hl) = (0.0, 0.0);
            for b in 0..nb - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let (gr, hr) = (g_sum - gl, h_sum - hl);
                if hl < min_child_weight || hr < min_child_weight {
                    continue;
                }
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent);
                if gain > best.map_or(1e-12, |b| b.0) {
                    best = Some((gain, f, b as u8));
                }
            }
        }
        best.map(|(gain, feature, bin_threshold)| LeafCandidate {
            node,
            rows: rows.to_vec(),
            gain,
            feature,
            bin_threshold,
            g_sum,
            h_sum,
        })
    }

    /// Predicts from a raw (unquantized) feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                HNode::Leaf { value } => return *value,
                HNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, HNode::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> (Matrix, Vec<f64>, Vec<f64>) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if (i as f64 / n as f64) < 0.3 {
                    -2.0
                } else {
                    4.0
                }
            })
            .collect();
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        (x, y, grad)
    }

    #[test]
    fn bin_mapper_quantizes_monotonically() {
        let x = Matrix::from_fn(100, 1, |i, _| i as f64);
        let m = BinMapper::fit(&x);
        let b10 = m.bin(0, 10.0);
        let b90 = m.bin(0, 90.0);
        assert!(b90 > b10);
        assert!(m.n_bins(0) <= N_BINS);
    }

    #[test]
    fn histogram_tree_fits_step() {
        let (x, _y, grad) = step_data(200);
        let hess = vec![1.0; 200];
        let mapper = BinMapper::fit(&x);
        let binned = mapper.quantize(&x);
        let rows: Vec<usize> = (0..200).collect();
        let tree = HistogramTree::fit(&binned, &mapper, &grad, &hess, &rows, 4, 0.0, 1.0);
        assert!((tree.predict_row(&[0.1]) + 2.0).abs() < 0.3);
        assert!((tree.predict_row(&[0.9]) - 4.0).abs() < 0.3);
    }

    #[test]
    fn max_leaves_bounds_tree_size() {
        let (x, _y, grad) = step_data(300);
        let hess = vec![1.0; 300];
        let mapper = BinMapper::fit(&x);
        let binned = mapper.quantize(&x);
        let rows: Vec<usize> = (0..300).collect();
        let tree = HistogramTree::fit(&binned, &mapper, &grad, &hess, &rows, 3, 0.0, 1.0);
        assert!(tree.leaf_count() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = Matrix::from_fn(50, 2, |i, j| (i + j) as f64);
        let grad = vec![-3.0; 50];
        let hess = vec![1.0; 50];
        let mapper = BinMapper::fit(&x);
        let binned = mapper.quantize(&x);
        let rows: Vec<usize> = (0..50).collect();
        let tree = HistogramTree::fit(&binned, &mapper, &grad, &hess, &rows, 8, 0.0, 1.0);
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict_row(&[0.0, 0.0]) - 3.0).abs() < 1e-9);
    }
}
