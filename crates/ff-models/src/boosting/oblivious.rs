//! Oblivious (symmetric) decision trees — the CatBoost-characteristic weak
//! learner of the Table 4 classifier zoo.
//!
//! An oblivious tree applies the *same* (feature, threshold) test at every
//! node of a level, so a depth-d tree is a lookup table with 2^d cells
//! indexed by the d test outcomes. Split selection maximizes the summed
//! XGBoost-style gain across all current cells.

use ff_linalg::Matrix;

/// A fitted oblivious tree.
#[derive(Debug, Clone)]
pub struct ObliviousTree {
    /// One (feature, threshold) test per level.
    tests: Vec<(usize, f64)>,
    /// Leaf values, indexed by the bitmask of test outcomes
    /// (bit k set ⇔ row passes test k, i.e. `x[f_k] >= t_k`).
    leaves: Vec<f64>,
}

impl ObliviousTree {
    /// Fits a depth-`depth` oblivious tree to gradients/hessians.
    ///
    /// `n_thresholds` quantile candidates are evaluated per feature.
    pub fn fit(
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        depth: usize,
        lambda: f64,
        n_thresholds: usize,
    ) -> ObliviousTree {
        let p = x.cols();
        // Per-feature candidate thresholds (quantiles over the subset).
        let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(p);
        for f in 0..p {
            let mut vals: Vec<f64> = rows.iter().map(|&i| x.get(i, f)).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            let mut c = Vec::new();
            if vals.len() > 1 {
                for k in 1..=n_thresholds.min(vals.len() - 1) {
                    let idx = k * (vals.len() - 1) / (n_thresholds.min(vals.len() - 1) + 1) + 1;
                    c.push(0.5 * (vals[idx - 1] + vals[idx.min(vals.len() - 1)]));
                }
                c.dedup_by(|a, b| a == b);
            }
            candidates.push(c);
        }

        let mut tests: Vec<(usize, f64)> = Vec::with_capacity(depth);
        // Cell assignment of each row (bitmask of passed tests so far).
        let mut cell: Vec<usize> = vec![0; rows.len()];
        for level in 0..depth {
            let n_cells = 1usize << level;
            // Score of the current partition.
            let mut best: Option<(f64, usize, f64)> = None;
            for (f, cands) in candidates.iter().enumerate() {
                for &thr in cands {
                    // Accumulate (G, H) per (cell, side).
                    let mut g = vec![0.0; n_cells * 2];
                    let mut h = vec![0.0; n_cells * 2];
                    for (k, &i) in rows.iter().enumerate() {
                        let side = usize::from(x.get(i, f) >= thr);
                        let idx = cell[k] * 2 + side;
                        g[idx] += grad[i];
                        h[idx] += hess[i];
                    }
                    let mut score = 0.0;
                    let mut valid = false;
                    for c in 0..n_cells {
                        let (gl, hl) = (g[c * 2], h[c * 2]);
                        let (gr, hr) = (g[c * 2 + 1], h[c * 2 + 1]);
                        let parent = (gl + gr) * (gl + gr) / (hl + hr + lambda);
                        score += gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent;
                        if hl >= 1.0 && hr >= 1.0 {
                            valid = true;
                        }
                    }
                    if valid && score > best.map_or(1e-12, |b| b.0) {
                        best = Some((score, f, thr));
                    }
                }
            }
            let Some((_, f, thr)) = best else { break };
            tests.push((f, thr));
            for (k, &i) in rows.iter().enumerate() {
                if x.get(i, f) >= thr {
                    cell[k] |= 1 << level;
                }
            }
        }

        // Leaf values.
        let n_leaves = 1usize << tests.len();
        let mut g = vec![0.0; n_leaves];
        let mut h = vec![0.0; n_leaves];
        for (k, &i) in rows.iter().enumerate() {
            let c = cell[k] & (n_leaves - 1);
            g[c] += grad[i];
            h[c] += hess[i];
        }
        let leaves: Vec<f64> = g
            .iter()
            .zip(&h)
            .map(|(&gi, &hi)| -gi / (hi + lambda))
            .collect();
        ObliviousTree { tests, leaves }
    }

    /// Predicts the leaf value for a raw feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        for (level, &(f, thr)) in self.tests.iter().enumerate() {
            if row[f] >= thr {
                idx |= 1 << level;
            }
        }
        self.leaves[idx]
    }

    /// Depth actually achieved (may be less than requested if no valid
    /// split existed).
    pub fn depth(&self) -> usize {
        self.tests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oblivious_tree_fits_additive_two_feature_target() {
        // y = 3·1{x0 ≥ 1} + 2·1{x1 ≥ 1} — needs one level per feature.
        let n = 200;
        let x = Matrix::from_fn(n, 2, |i, j| {
            if j == 0 {
                (i % 2) as f64
            } else {
                ((i / 2) % 2) as f64
            }
        });
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 * (i % 2) as f64 + 2.0 * ((i / 2) % 2) as f64)
            .collect();
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; n];
        let rows: Vec<usize> = (0..n).collect();
        let tree = ObliviousTree::fit(&x, &grad, &hess, &rows, 2, 0.0, 4);
        assert_eq!(tree.depth(), 2);
        assert!((tree.predict_row(&[1.0, 0.0]) - 3.0).abs() < 0.1);
        assert!((tree.predict_row(&[0.0, 0.0])).abs() < 0.1);
        assert!((tree.predict_row(&[1.0, 1.0]) - 5.0).abs() < 0.1);
    }

    #[test]
    fn symmetric_structure_uses_one_test_per_level() {
        let n = 100;
        let x = Matrix::from_fn(n, 3, |i, j| ((i * (j + 3)) % 17) as f64);
        let y: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; n];
        let rows: Vec<usize> = (0..n).collect();
        let tree = ObliviousTree::fit(&x, &grad, &hess, &rows, 4, 1.0, 8);
        assert!(tree.depth() <= 4);
        assert_eq!(tree.leaves.len(), 1 << tree.depth());
    }

    #[test]
    fn constant_target_single_leaf() {
        let x = Matrix::from_fn(20, 1, |i, _| i as f64);
        let grad = vec![-5.0; 20];
        let hess = vec![1.0; 20];
        let rows: Vec<usize> = (0..20).collect();
        let tree = ObliviousTree::fit(&x, &grad, &hess, &rows, 3, 0.0, 4);
        // No gain anywhere ⇒ depth 0, a single leaf with the mean.
        assert_eq!(tree.depth(), 0);
        assert!((tree.predict_row(&[3.0]) - 5.0).abs() < 1e-9);
    }
}
