//! Boosted multi-class classifiers for the Table 4 meta-model zoo.
//!
//! All four share one softmax gradient-boosting loop (one tree per class
//! per round on the softmax gradients `p − y`, hessians `p(1 − p)`); they
//! differ in the weak learner, which is what gives each library family its
//! characteristic inductive bias:
//!
//! - [`XgbClassifier`] — exact-greedy depth-wise trees, second-order.
//! - [`GradientBoostingClassifier`] — exact-greedy trees, first-order
//!   (classic sklearn-style residual fitting).
//! - [`LightGbmClassifier`] — histogram bins + leaf-wise growth.
//! - [`CatBoostClassifier`] — oblivious (symmetric) trees.

use crate::boosting::histogram::{BinMapper, HistogramTree};
use crate::boosting::oblivious::ObliviousTree;
use crate::tree::{GhTree, GhTreeConfig};
use crate::{Classifier, ModelError, Result};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weak-learner family used by [`BoostedClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakLearner {
    /// Exact greedy CART (XGBoost / sklearn style).
    Exact,
    /// Histogram bins with leaf-wise growth (LightGBM style).
    Histogram,
    /// Oblivious symmetric trees (CatBoost style).
    Oblivious,
}

enum FittedTree {
    Exact(GhTree),
    Histogram(HistogramTree),
    Oblivious(ObliviousTree),
}

impl FittedTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            FittedTree::Exact(t) => t.predict_row(row),
            FittedTree::Histogram(t) => t.predict_row(row),
            FittedTree::Oblivious(t) => t.predict_row(row),
        }
    }
}

/// Generic softmax gradient-boosted classifier.
pub struct BoostedClassifier {
    /// Weak learner family.
    pub learner: WeakLearner,
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Tree depth (or `max_leaves = 2^depth` for the leaf-wise learner).
    pub depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// L2 leaf regularization.
    pub lambda: f64,
    /// Use second-order hessians (false = classic first-order boosting).
    pub second_order: bool,
    /// RNG seed.
    pub seed: u64,
    n_classes: usize,
    base_scores: Vec<f64>,
    /// `trees[round][class]`.
    trees: Vec<Vec<FittedTree>>,
}

impl std::fmt::Debug for BoostedClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoostedClassifier")
            .field("learner", &self.learner)
            .field("n_rounds", &self.n_rounds)
            .field("depth", &self.depth)
            .field("fitted_rounds", &self.trees.len())
            .finish()
    }
}

impl BoostedClassifier {
    /// Creates a boosted classifier.
    pub fn new(learner: WeakLearner, n_rounds: usize, depth: usize, learning_rate: f64) -> Self {
        BoostedClassifier {
            learner,
            n_rounds: n_rounds.max(1),
            depth: depth.max(1),
            learning_rate: learning_rate.clamp(1e-3, 1.0),
            lambda: 1.0,
            second_order: true,
            seed: 23,
            n_classes: 0,
            base_scores: Vec::new(),
            trees: Vec::new(),
        }
    }

    fn scores(&self, x: &Matrix) -> Matrix {
        let mut s = Matrix::from_fn(x.rows(), self.n_classes, |_, c| self.base_scores[c]);
        for round in &self.trees {
            for i in 0..x.rows() {
                let row = x.row(i);
                for (c, tree) in round.iter().enumerate() {
                    let v = s.get(i, c) + self.learning_rate * tree.predict_row(row);
                    s.set(i, c, v);
                }
            }
        }
        s
    }
}

impl Classifier for BoostedClassifier {
    fn fit(&mut self, x: &Matrix, labels: &[usize], n_classes: usize) -> Result<()> {
        if x.rows() == 0 || x.rows() != labels.len() {
            return Err(ModelError::InvalidData("bad shapes".into()));
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(ModelError::InvalidData("label out of range".into()));
        }
        let n = x.rows();
        self.n_classes = n_classes;
        // Base scores: log class priors.
        let mut counts = vec![1.0; n_classes]; // +1 smoothing
        for &l in labels {
            counts[l] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.base_scores = counts.iter().map(|c| (c / total).ln()).collect();
        self.trees.clear();

        let mapper = if self.learner == WeakLearner::Histogram {
            Some(BinMapper::fit(x))
        } else {
            None
        };
        let binned = mapper.as_ref().map(|m| m.quantize(x));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rows: Vec<usize> = (0..n).collect();
        let cfg = GhTreeConfig {
            max_depth: self.depth,
            min_child_weight: 1.0,
            lambda: self.lambda,
            feature_subsample: 1.0,
            random_thresholds: false,
        };

        // Current scores.
        let mut scores = Matrix::from_fn(n, n_classes, |_, c| self.base_scores[c]);
        for _ in 0..self.n_rounds {
            let probs = crate::classifiers::logistic::softmax(&scores);
            let mut round_trees = Vec::with_capacity(n_classes);
            for c in 0..n_classes {
                let grad: Vec<f64> = (0..n)
                    .map(|i| probs.get(i, c) - f64::from(u8::from(labels[i] == c)))
                    .collect();
                let hess: Vec<f64> = if self.second_order {
                    (0..n)
                        .map(|i| (probs.get(i, c) * (1.0 - probs.get(i, c))).max(1e-6))
                        .collect()
                } else {
                    vec![1.0; n]
                };
                let tree = match self.learner {
                    WeakLearner::Exact => {
                        FittedTree::Exact(GhTree::fit(x, &grad, &hess, &rows, &cfg, &mut rng))
                    }
                    WeakLearner::Histogram => FittedTree::Histogram(HistogramTree::fit(
                        binned.as_ref().unwrap(),
                        mapper.as_ref().unwrap(),
                        &grad,
                        &hess,
                        &rows,
                        1 << self.depth.min(6),
                        self.lambda,
                        1.0,
                    )),
                    WeakLearner::Oblivious => FittedTree::Oblivious(ObliviousTree::fit(
                        x,
                        &grad,
                        &hess,
                        &rows,
                        self.depth.min(8),
                        self.lambda,
                        8,
                    )),
                };
                for i in 0..n {
                    let v = scores.get(i, c) + self.learning_rate * tree.predict_row(x.row(i));
                    scores.set(i, c, v);
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(crate::classifiers::logistic::softmax(&self.scores(x)))
    }
}

/// XGBoost-style classifier: exact greedy trees, second-order.
pub fn xgb_classifier(n_rounds: usize, depth: usize, learning_rate: f64) -> BoostedClassifier {
    BoostedClassifier::new(WeakLearner::Exact, n_rounds, depth, learning_rate)
}

/// Classic gradient boosting: exact greedy trees, first-order, no leaf L2.
pub fn gradient_boosting_classifier(
    n_rounds: usize,
    depth: usize,
    learning_rate: f64,
) -> BoostedClassifier {
    let mut c = BoostedClassifier::new(WeakLearner::Exact, n_rounds, depth, learning_rate);
    c.second_order = false;
    c.lambda = 0.0;
    c
}

/// LightGBM-style classifier: histogram bins, leaf-wise growth.
pub fn lightgbm_classifier(n_rounds: usize, depth: usize, learning_rate: f64) -> BoostedClassifier {
    BoostedClassifier::new(WeakLearner::Histogram, n_rounds, depth, learning_rate)
}

/// CatBoost-style classifier: oblivious trees.
pub fn catboost_classifier(n_rounds: usize, depth: usize, learning_rate: f64) -> BoostedClassifier {
    BoostedClassifier::new(WeakLearner::Oblivious, n_rounds, depth, learning_rate)
}

/// Convenience aliases matching the Table 4 row names.
pub type XgbClassifier = BoostedClassifier;
/// See [`gradient_boosting_classifier`].
pub type GradientBoostingClassifier = BoostedClassifier;
/// See [`lightgbm_classifier`].
pub type LightGbmClassifier = BoostedClassifier;
/// See [`catboost_classifier`].
pub type CatBoostClassifier = BoostedClassifier;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn clusters() -> (Matrix, Vec<usize>) {
        let n_per = 40;
        let centers = [(-4.0, 0.0), (4.0, 0.0), (0.0, 5.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 6u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![cx + rnd(), cy + rnd()]);
                labels.push(c);
            }
        }
        (Matrix::from_fn(rows.len(), 2, |i, j| rows[i][j]), labels)
    }

    fn check_learner(mut clf: BoostedClassifier, min_acc: f64) {
        let (x, labels) = clusters();
        clf.fit(&x, &labels, 3).unwrap();
        let pred = clf.predict(&x).unwrap();
        let acc = accuracy(&labels, &pred);
        assert!(acc >= min_acc, "{:?} accuracy {acc}", clf);
        let proba = clf.predict_proba(&x).unwrap();
        for i in 0..proba.rows() {
            let s: f64 = proba.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn xgb_classifier_separates_clusters() {
        check_learner(xgb_classifier(20, 3, 0.3), 0.97);
    }

    #[test]
    fn gradient_boosting_separates_clusters() {
        check_learner(gradient_boosting_classifier(20, 3, 0.3), 0.97);
    }

    #[test]
    fn lightgbm_separates_clusters() {
        check_learner(lightgbm_classifier(20, 3, 0.3), 0.95);
    }

    #[test]
    fn catboost_separates_clusters() {
        check_learner(catboost_classifier(20, 3, 0.3), 0.95);
    }

    #[test]
    fn more_rounds_increase_confidence() {
        let (x, labels) = clusters();
        let mut few = xgb_classifier(2, 3, 0.3);
        let mut many = xgb_classifier(30, 3, 0.3);
        few.fit(&x, &labels, 3).unwrap();
        many.fit(&x, &labels, 3).unwrap();
        let conf = |p: &Matrix| -> f64 {
            (0..p.rows())
                .map(|i| p.row(i).iter().cloned().fold(0.0, f64::max))
                .sum::<f64>()
                / p.rows() as f64
        };
        let c_few = conf(&few.predict_proba(&x).unwrap());
        let c_many = conf(&many.predict_proba(&x).unwrap());
        assert!(c_many > c_few, "few {c_few} many {c_many}");
    }

    #[test]
    fn not_fitted_errors() {
        let clf = xgb_classifier(5, 3, 0.3);
        assert!(clf.predict_proba(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn label_out_of_range_rejected() {
        let x = Matrix::zeros(2, 1);
        let mut clf = xgb_classifier(2, 2, 0.3);
        assert!(clf.fit(&x, &[0, 3], 2).is_err());
    }
}
