//! The forecasting-algorithm registry (the six algorithms of Table 2).
//!
//! Shared by the knowledge-base labeller (`ff-metalearn`), which grid
//! searches over these algorithms, and by the FedForecaster engine, which
//! maps meta-model recommendations and Bayesian-optimization configurations
//! onto concrete model instances.

use crate::boosting::gbdt::XgbRegressor;
use crate::linear::cd::Selection;
use crate::linear::elastic_net::ElasticNetCv;
use crate::linear::huber::HuberRegressor;
use crate::linear::lasso::Lasso;
use crate::linear::quantile::QuantileRegressor;
use crate::linear::svr::LinearSvr;
use crate::Regressor;

/// The six Table 2 forecasting algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// L1-regularized linear regression.
    Lasso,
    /// ε-insensitive linear SVR.
    LinearSvr,
    /// Elastic net with internal CV over alpha.
    ElasticNetCv,
    /// Gradient-boosted trees.
    XgbRegressor,
    /// Huber-loss robust regression.
    HuberRegressor,
    /// Pinball-loss quantile regression.
    QuantileRegressor,
}

impl AlgorithmKind {
    /// All algorithms, in the fixed registry order used as class labels by
    /// the meta-model.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::Lasso,
        AlgorithmKind::LinearSvr,
        AlgorithmKind::ElasticNetCv,
        AlgorithmKind::XgbRegressor,
        AlgorithmKind::HuberRegressor,
        AlgorithmKind::QuantileRegressor,
    ];

    /// The paper's display name (matches the "Best Model" column of
    /// Table 3).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Lasso => "Lasso",
            AlgorithmKind::LinearSvr => "LinearSVR",
            AlgorithmKind::ElasticNetCv => "ElasticNetCV",
            AlgorithmKind::XgbRegressor => "XGBRegressor",
            AlgorithmKind::HuberRegressor => "HuberRegressor",
            AlgorithmKind::QuantileRegressor => "QuantileRegressor",
        }
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<AlgorithmKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Registry index (the class label used by the meta-model).
    pub fn index(&self) -> usize {
        Self::ALL
            .iter()
            .position(|k| k == self)
            .expect("in registry")
    }

    /// Inverse of [`AlgorithmKind::index`].
    pub fn from_index(idx: usize) -> Option<AlgorithmKind> {
        Self::ALL.get(idx).copied()
    }

    /// True for the linear family whose final federated model is built by
    /// coefficient averaging (vs ensemble union for trees).
    pub fn is_linear(&self) -> bool {
        !matches!(self, AlgorithmKind::XgbRegressor)
    }
}

/// Plain hyperparameter bundle for instantiating any Table 2 algorithm —
/// the union of all per-algorithm hyperparameters with sensible defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParams {
    /// Regularization strength (`Lasso`, `Huber`, `Quantile`).
    pub alpha: f64,
    /// Coordinate selection (`Lasso`, `ElasticNetCV`).
    pub selection: Selection,
    /// SVR penalty.
    pub c: f64,
    /// SVR tube / Huber threshold.
    pub epsilon: f64,
    /// Elastic-net mixing ratio.
    pub l1_ratio: f64,
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Boosting shrinkage.
    pub learning_rate: f64,
    /// Leaf L2.
    pub reg_lambda: f64,
    /// Row subsample.
    pub subsample: f64,
    /// Target quantile.
    pub quantile: f64,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            alpha: 0.01,
            selection: Selection::Cyclic,
            c: 5.0,
            epsilon: 0.05,
            l1_ratio: 0.5,
            n_estimators: 10,
            max_depth: 4,
            learning_rate: 0.3,
            reg_lambda: 1.0,
            subsample: 1.0,
            quantile: 0.5,
        }
    }
}

/// Instantiates a regressor of the given kind with the given
/// hyperparameters.
///
/// # Examples
///
/// ```
/// use ff_linalg::Matrix;
/// use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};
///
/// let x = Matrix::from_fn(50, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
/// let mut model = build_regressor(AlgorithmKind::Lasso, &HyperParams::default());
/// model.fit(&x, &y).unwrap();
/// let pred = model.predict(&x).unwrap();
/// assert!((pred[10] - 21.0).abs() < 1.0);
/// ```
pub fn build_regressor(kind: AlgorithmKind, hp: &HyperParams) -> Box<dyn Regressor + Send> {
    match kind {
        AlgorithmKind::Lasso => Box::new(Lasso::new(hp.alpha, hp.selection)),
        AlgorithmKind::LinearSvr => Box::new(LinearSvr::new(hp.c, hp.epsilon)),
        AlgorithmKind::ElasticNetCv => Box::new(ElasticNetCv::new(hp.l1_ratio, hp.selection)),
        AlgorithmKind::XgbRegressor => Box::new(XgbRegressor::new(
            hp.n_estimators,
            hp.max_depth,
            hp.learning_rate,
            hp.reg_lambda,
            hp.subsample,
        )),
        AlgorithmKind::HuberRegressor => {
            Box::new(HuberRegressor::new(hp.epsilon.max(1.0), hp.alpha))
        }
        AlgorithmKind::QuantileRegressor => Box::new(QuantileRegressor::new(hp.quantile, hp.alpha)),
    }
}

/// A small per-algorithm hyperparameter grid for the offline knowledge-base
/// labelling (§4.1.1 "comprehensive grid search" — scaled to a handful of
/// representative points per algorithm so the 500+-dataset KB build stays
/// tractable).
pub fn grid_for(kind: AlgorithmKind) -> Vec<HyperParams> {
    let base = HyperParams::default;
    match kind {
        AlgorithmKind::Lasso => [1e-4, 1e-2, 0.5]
            .iter()
            .map(|&alpha| HyperParams { alpha, ..base() })
            .collect(),
        AlgorithmKind::LinearSvr => [(1.0, 0.01), (5.0, 0.05), (10.0, 0.1)]
            .iter()
            .map(|&(c, epsilon)| HyperParams {
                c,
                epsilon,
                ..base()
            })
            .collect(),
        AlgorithmKind::ElasticNetCv => [0.3, 0.7, 1.0]
            .iter()
            .map(|&l1_ratio| HyperParams { l1_ratio, ..base() })
            .collect(),
        AlgorithmKind::XgbRegressor => [(5, 2, 0.3), (10, 4, 0.3), (20, 6, 0.1)]
            .iter()
            .map(|&(n, d, lr)| HyperParams {
                n_estimators: n,
                max_depth: d,
                learning_rate: lr,
                ..base()
            })
            .collect(),
        AlgorithmKind::HuberRegressor => [(1.0, 1e-3), (1.35, 1e-2), (1.5, 1e-1)]
            .iter()
            .map(|&(epsilon, alpha)| HyperParams {
                epsilon,
                alpha,
                ..base()
            })
            .collect(),
        AlgorithmKind::QuantileRegressor => [(0.5, 1e-3), (0.5, 1e-1), (0.7, 1e-2)]
            .iter()
            .map(|&(quantile, alpha)| HyperParams {
                quantile,
                alpha,
                ..base()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_linalg::Matrix;

    #[test]
    fn registry_roundtrips() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
            assert_eq!(AlgorithmKind::from_index(kind.index()), Some(kind));
        }
        assert!(AlgorithmKind::from_name("NBeats").is_none());
        assert!(AlgorithmKind::from_index(6).is_none());
    }

    #[test]
    fn every_algorithm_fits_and_predicts() {
        let n = 80;
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 1)) % 13) as f64 * 0.1);
        let y: Vec<f64> = (0..n).map(|i| x.get(i, 0) * 2.0 + 1.0).collect();
        for kind in AlgorithmKind::ALL {
            let mut model = build_regressor(kind, &HyperParams::default());
            model
                .fit(&x, &y)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let pred = model.predict(&x).unwrap();
            assert_eq!(pred.len(), n);
            assert!(pred.iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn grids_are_nonempty_and_distinct() {
        for kind in AlgorithmKind::ALL {
            let grid = grid_for(kind);
            assert!(grid.len() >= 3, "{kind:?}");
            assert_ne!(grid[0], grid[1]);
        }
    }

    #[test]
    fn linear_family_flag() {
        assert!(AlgorithmKind::Lasso.is_linear());
        assert!(!AlgorithmKind::XgbRegressor.is_linear());
    }
}
