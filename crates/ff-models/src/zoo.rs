//! The forecasting-algorithm zoo: the shared [`HyperParams`] bundle and
//! registry-backed helpers for instantiating any registered algorithm.
//!
//! The portfolio itself lives in [`crate::spec`] — the six Table 2
//! algorithms are pre-registered, and extensions join via
//! [`crate::spec::register`]. This module is shared by the knowledge-base
//! labeller (`ff-metalearn`), which grid searches over the registry, and by
//! the FedForecaster engine, which maps meta-model recommendations and
//! Bayesian-optimization configurations onto concrete model instances.

use crate::linear::cd::Selection;
use crate::Regressor;
use std::collections::BTreeMap;

pub use crate::spec::{AlgorithmKind, FinalizeStrategy};

/// Plain hyperparameter bundle for instantiating any registered algorithm —
/// the union of all builtin per-algorithm hyperparameters with sensible
/// defaults, plus an open-ended `extras` map for extension algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParams {
    /// Regularization strength (`Lasso`, `Huber`, `Quantile`).
    pub alpha: f64,
    /// Coordinate selection (`Lasso`, `ElasticNetCV`).
    pub selection: Selection,
    /// SVR penalty.
    pub c: f64,
    /// SVR tube / Huber threshold.
    pub epsilon: f64,
    /// Elastic-net mixing ratio.
    pub l1_ratio: f64,
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Boosting shrinkage.
    pub learning_rate: f64,
    /// Leaf L2.
    pub reg_lambda: f64,
    /// Row subsample.
    pub subsample: f64,
    /// Target quantile.
    pub quantile: f64,
    /// Numeric hyperparameters of extension algorithms, keyed by their
    /// namespaced param key (see `ParamDef::extra` in [`crate::spec`]).
    pub extras: BTreeMap<String, f64>,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            alpha: 0.01,
            selection: Selection::Cyclic,
            c: 5.0,
            epsilon: 0.05,
            l1_ratio: 0.5,
            n_estimators: 10,
            max_depth: 4,
            learning_rate: 0.3,
            reg_lambda: 1.0,
            subsample: 1.0,
            quantile: 0.5,
            extras: BTreeMap::new(),
        }
    }
}

/// Instantiates a regressor of the given kind with the given
/// hyperparameters (delegates to the algorithm's registered builder).
///
/// # Examples
///
/// ```
/// use ff_linalg::Matrix;
/// use ff_models::zoo::{build_regressor, AlgorithmKind, HyperParams};
///
/// let x = Matrix::from_fn(50, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
/// let mut model = build_regressor(AlgorithmKind::LASSO, &HyperParams::default());
/// model.fit(&x, &y).unwrap();
/// let pred = model.predict(&x).unwrap();
/// assert!((pred[10] - 21.0).abs() < 1.0);
/// ```
pub fn build_regressor(kind: AlgorithmKind, hp: &HyperParams) -> Box<dyn Regressor + Send + Sync> {
    kind.spec().build(hp)
}

/// The algorithm's per-algorithm hyperparameter grid for the offline
/// knowledge-base labelling (§4.1.1 "comprehensive grid search" — scaled to
/// a handful of representative points per algorithm so the 500+-dataset KB
/// build stays tractable).
pub fn grid_for(kind: AlgorithmKind) -> Vec<HyperParams> {
    kind.spec().grid().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_linalg::Matrix;

    #[test]
    fn registry_roundtrips() {
        for kind in AlgorithmKind::all() {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
            assert_eq!(AlgorithmKind::from_index(kind.index()), Some(kind));
        }
        assert!(AlgorithmKind::from_name("NBeats").is_none());
        assert!(AlgorithmKind::from_index(AlgorithmKind::all().len()).is_none());
    }

    #[test]
    fn every_algorithm_fits_and_predicts() {
        let n = 80;
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 1)) % 13) as f64 * 0.1);
        let y: Vec<f64> = (0..n).map(|i| x.get(i, 0) * 2.0 + 1.0).collect();
        for kind in AlgorithmKind::all() {
            let mut model = build_regressor(kind, &HyperParams::default());
            model
                .fit(&x, &y)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let pred = model.predict(&x).unwrap();
            assert_eq!(pred.len(), n);
            assert!(pred.iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn grids_are_nonempty_and_distinct() {
        for kind in AlgorithmKind::builtin() {
            let grid = grid_for(kind);
            assert!(grid.len() >= 3, "{kind:?}");
            assert_ne!(grid[0], grid[1]);
        }
    }

    #[test]
    fn linear_family_flag() {
        assert!(AlgorithmKind::LASSO.is_linear());
        assert!(!AlgorithmKind::XGB_REGRESSOR.is_linear());
    }
}
