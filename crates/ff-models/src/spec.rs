//! Self-describing algorithm specifications and the global registry.
//!
//! An [`AlgorithmSpec`] carries everything the rest of the system needs to
//! know about one forecasting algorithm: its display name, its namespaced
//! hyperparameter definitions (Table 2 ranges), how to map values in and
//! out of the [`HyperParams`] bundle, its grid-search sweet spot (used both
//! as the Bayesian-optimization warm start and the decode default), its
//! builder, and its federated finalize strategy. The search-space builder,
//! the engine's finalize stage, the client's final-fit op, and the
//! knowledge-base labeller all iterate the registry — adding an algorithm
//! is one [`register`] call, with no edits to any of those layers.
//!
//! The registry is seeded with the six Table 2 algorithms in the fixed
//! order used as meta-model class labels; [`register`] appends new entries
//! behind them so existing labels never shift.

use crate::boosting::gbdt::XgbRegressor;
use crate::linear::cd::Selection;
use crate::linear::elastic_net::ElasticNetCv;
use crate::linear::huber::HuberRegressor;
use crate::linear::lasso::Lasso;
use crate::linear::quantile::QuantileRegressor;
use crate::linear::svr::LinearSvr;
use crate::zoo::HyperParams;
use crate::Regressor;
use std::sync::{OnceLock, RwLock};

/// How a federation turns per-client final fits into one global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeStrategy {
    /// FedAvg over standardized linear coefficients — requires the fitted
    /// model to be an affine predictor (probed parameters are exact).
    CoefficientAverage,
    /// Serialize every client's fitted model and deploy the weighted union
    /// `ŷ(x) = Σ αⱼ fⱼ(x)` — requires a model codec (see
    /// [`AlgorithmSpec::with_model_codec`]).
    EnsembleUnion,
}

/// A hyperparameter value exchanged with an [`AlgorithmSpec`].
///
/// This is `ff-models`' own neutral value type: the crate must not depend
/// on the optimizer, so the search-space layer translates these to its
/// `ParamValue` generically.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// Continuous value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Categorical option.
    Cat(String),
}

impl SpecValue {
    /// Numeric view (categorical options parse; unparsable → NaN).
    pub fn as_f64(&self) -> f64 {
        match self {
            SpecValue::Float(v) => *v,
            SpecValue::Int(v) => *v as f64,
            SpecValue::Cat(s) => s.parse().unwrap_or(f64::NAN),
        }
    }

    /// Integer view (floats round).
    pub fn as_i64(&self) -> i64 {
        match self {
            SpecValue::Float(v) => v.round() as i64,
            SpecValue::Int(v) => *v,
            SpecValue::Cat(s) => s.parse().unwrap_or(0),
        }
    }

    /// Categorical view (empty for numeric values).
    pub fn as_str(&self) -> &str {
        match self {
            SpecValue::Cat(s) => s,
            _ => "",
        }
    }
}

/// The sampling domain of one hyperparameter (mirrors the optimizer's
/// `ParamSpec` without depending on it).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Uniform over `[lo, hi]`.
    Continuous {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform over `[lo, hi]`.
    LogContinuous {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Uniform integer over `[lo, hi]`.
    Integer {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// One of a fixed set of options.
    Categorical {
        /// The options.
        options: Vec<String>,
    },
}

enum ParamBinding {
    /// Reads/writes a named [`HyperParams`] field through accessors.
    Field {
        set: fn(&mut HyperParams, &SpecValue),
        get: fn(&HyperParams) -> SpecValue,
    },
    /// Reads/writes `HyperParams::extras[key]` as an `f64` — lets extension
    /// algorithms carry novel hyperparameters without touching the struct.
    Extra { default: f64 },
}

/// One namespaced hyperparameter of an algorithm: its key, domain, warm
/// value, and binding into [`HyperParams`].
pub struct ParamDef {
    key: String,
    kind: ParamKind,
    binding: ParamBinding,
    /// Grid sweet-spot value, filled by [`AlgorithmSpec::new`] from the
    /// middle grid entry.
    warm: SpecValue,
}

impl std::fmt::Debug for ParamDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamDef")
            .field("key", &self.key)
            .field("kind", &self.kind)
            .field("warm", &self.warm)
            .finish()
    }
}

impl ParamDef {
    /// A hyperparameter bound to a [`HyperParams`] field through accessor
    /// functions.
    pub fn field(
        key: impl Into<String>,
        kind: ParamKind,
        set: fn(&mut HyperParams, &SpecValue),
        get: fn(&HyperParams) -> SpecValue,
    ) -> ParamDef {
        ParamDef {
            key: key.into(),
            kind,
            binding: ParamBinding::Field { set, get },
            warm: SpecValue::Float(f64::NAN),
        }
    }

    /// A hyperparameter stored in `HyperParams::extras` under its own key
    /// (numeric only), with a default for grid entries that omit it.
    pub fn extra(key: impl Into<String>, kind: ParamKind, default: f64) -> ParamDef {
        ParamDef {
            key: key.into(),
            kind,
            binding: ParamBinding::Extra { default },
            warm: SpecValue::Float(f64::NAN),
        }
    }

    /// Sets the warm (decode-fallback) value explicitly, canonicalized for
    /// the domain. [`AlgorithmSpec::new`] derives warm values from the grid
    /// sweet spot; pipeline nodes (see [`crate::pipeline`]) have no grid, so
    /// their defs declare the warm value directly.
    pub fn with_warm(mut self, value: SpecValue) -> ParamDef {
        self.warm = self.canonical(&value);
        self
    }

    /// Fully namespaced key (e.g. `lasso_alpha`).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Sampling domain.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Grid sweet-spot value (canonicalized for the domain).
    pub fn warm(&self) -> &SpecValue {
        &self.warm
    }

    /// Writes a value into the bundle.
    pub fn apply(&self, hp: &mut HyperParams, value: &SpecValue) {
        match &self.binding {
            ParamBinding::Field { set, .. } => set(hp, value),
            ParamBinding::Extra { .. } => {
                hp.extras.insert(self.key.clone(), value.as_f64());
            }
        }
    }

    /// Reads the bundle's current value, canonicalized for the domain
    /// (integers round, categorical values snap to the nearest option).
    pub fn read(&self, hp: &HyperParams) -> SpecValue {
        let raw = match &self.binding {
            ParamBinding::Field { get, .. } => get(hp),
            ParamBinding::Extra { default } => {
                SpecValue::Float(hp.extras.get(&self.key).copied().unwrap_or(*default))
            }
        };
        self.canonical(&raw)
    }

    /// Snaps a raw value onto the domain: `Continuous`/`LogContinuous` →
    /// `Float`, `Integer` → `Int`, `Categorical` → the matching option (or
    /// the option whose numeric parse is nearest, for numeric inputs).
    pub fn canonical(&self, raw: &SpecValue) -> SpecValue {
        match &self.kind {
            ParamKind::Continuous { .. } | ParamKind::LogContinuous { .. } => {
                SpecValue::Float(raw.as_f64())
            }
            ParamKind::Integer { .. } => SpecValue::Int(raw.as_i64()),
            ParamKind::Categorical { options } => {
                if let SpecValue::Cat(s) = raw {
                    if options.iter().any(|o| o == s) {
                        return raw.clone();
                    }
                }
                let target = raw.as_f64();
                let nearest = options
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.parse::<f64>().unwrap_or(f64::INFINITY) - target).abs();
                        let db = (b.parse::<f64>().unwrap_or(f64::INFINITY) - target).abs();
                        da.total_cmp(&db)
                    })
                    .cloned()
                    .unwrap_or_default();
                SpecValue::Cat(nearest)
            }
        }
    }
}

/// Builder closure type: instantiates a fresh regressor from a bundle.
pub type BuildFn = dyn Fn(&HyperParams) -> Box<dyn Regressor + Send + Sync> + Send + Sync;
/// Model codec: revives a serialized model for ensemble-union evaluation.
pub type DeserializeFn =
    dyn Fn(&[u8]) -> std::result::Result<Box<dyn Regressor + Send + Sync>, String> + Send + Sync;

/// Everything the system knows about one forecasting algorithm.
pub struct AlgorithmSpec {
    name: String,
    prefix: String,
    finalize: FinalizeStrategy,
    build: Box<BuildFn>,
    grid: Vec<HyperParams>,
    params: Vec<ParamDef>,
    deserialize: Option<Box<DeserializeFn>>,
}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("name", &self.name)
            .field("prefix", &self.prefix)
            .field("finalize", &self.finalize)
            .field("params", &self.params)
            .finish()
    }
}

impl AlgorithmSpec {
    /// Creates a spec. Each [`ParamDef`]'s warm value is derived from the
    /// middle grid entry, so "grid sweet spot" is true by construction.
    pub fn new(
        name: impl Into<String>,
        prefix: impl Into<String>,
        finalize: FinalizeStrategy,
        build: impl Fn(&HyperParams) -> Box<dyn Regressor + Send + Sync> + Send + Sync + 'static,
        grid: Vec<HyperParams>,
        mut params: Vec<ParamDef>,
    ) -> AlgorithmSpec {
        if let Some(center) = grid.get(grid.len() / 2) {
            for pd in &mut params {
                pd.warm = pd.read(center);
            }
        }
        AlgorithmSpec {
            name: name.into(),
            prefix: prefix.into(),
            finalize,
            build: Box::new(build),
            grid,
            params,
            deserialize: None,
        }
    }

    /// Attaches the model codec required by
    /// [`FinalizeStrategy::EnsembleUnion`]. The model side of the codec is
    /// [`Regressor::to_blob`].
    pub fn with_model_codec(
        mut self,
        deserialize: impl Fn(&[u8]) -> std::result::Result<Box<dyn Regressor + Send + Sync>, String>
            + Send
            + Sync
            + 'static,
    ) -> AlgorithmSpec {
        self.deserialize = Some(Box::new(deserialize));
        self
    }

    /// Display name (the "Best Model" column of Table 3).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Namespace prefix every param key starts with (e.g. `lasso_`).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Federated finalize strategy.
    pub fn finalize(&self) -> FinalizeStrategy {
        self.finalize
    }

    /// Namespaced hyperparameter definitions.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// The offline grid-search hyperparameter grid.
    pub fn grid(&self) -> &[HyperParams] {
        &self.grid
    }

    /// Instantiates a fresh regressor.
    pub fn build(&self, hp: &HyperParams) -> Box<dyn Regressor + Send + Sync> {
        (self.build)(hp)
    }

    /// Revives a model serialized by [`Regressor::to_blob`]. Errors when
    /// the spec has no codec (only possible for coefficient-average specs —
    /// [`register`] requires a codec for ensemble-union specs).
    pub fn deserialize_model(
        &self,
        bytes: &[u8],
    ) -> std::result::Result<Box<dyn Regressor + Send + Sync>, String> {
        match &self.deserialize {
            Some(f) => f(bytes),
            None => Err(format!("algorithm {} has no model codec", self.name)),
        }
    }

    /// Decodes the params present in `lookup` into a bundle; missing keys
    /// fall back to the warm (grid sweet-spot) value. Keys of other
    /// algorithms are never consulted — namespacing makes cross-algorithm
    /// leaks impossible by construction.
    pub fn decode(&self, lookup: impl Fn(&str) -> Option<SpecValue>) -> HyperParams {
        let mut hp = HyperParams::default();
        for pd in &self.params {
            let value = lookup(&pd.key).map(|v| pd.canonical(&v));
            pd.apply(&mut hp, value.as_ref().unwrap_or(&pd.warm));
        }
        hp
    }

    /// Encodes a bundle into `(key, value)` pairs, one per param,
    /// canonicalized for each domain. Inverse of [`AlgorithmSpec::decode`].
    pub fn encode(&self, hp: &HyperParams) -> Vec<(String, SpecValue)> {
        self.params
            .iter()
            .map(|pd| (pd.key.clone(), pd.read(hp)))
            .collect()
    }

    /// The warm-start `(key, value)` pairs (grid sweet spot).
    pub fn warm_values(&self) -> Vec<(String, SpecValue)> {
        self.params
            .iter()
            .map(|pd| (pd.key.clone(), pd.warm.clone()))
            .collect()
    }
}

/// A handle into the algorithm registry. The first six indices are the
/// Table 2 algorithms (associated consts below); [`register`] returns
/// handles for extensions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlgorithmKind(u16);

impl std::fmt::Debug for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = registry().read().expect("registry lock");
        match reg.get(self.0 as usize) {
            Some(spec) => write!(f, "{}", spec.name()),
            None => write!(f, "AlgorithmKind({})", self.0),
        }
    }
}

impl AlgorithmKind {
    /// L1-regularized linear regression.
    pub const LASSO: AlgorithmKind = AlgorithmKind(0);
    /// ε-insensitive linear SVR.
    pub const LINEAR_SVR: AlgorithmKind = AlgorithmKind(1);
    /// Elastic net with internal CV over alpha.
    pub const ELASTIC_NET_CV: AlgorithmKind = AlgorithmKind(2);
    /// Gradient-boosted trees.
    pub const XGB_REGRESSOR: AlgorithmKind = AlgorithmKind(3);
    /// Huber-loss robust regression.
    pub const HUBER_REGRESSOR: AlgorithmKind = AlgorithmKind(4);
    /// Pinball-loss quantile regression.
    pub const QUANTILE_REGRESSOR: AlgorithmKind = AlgorithmKind(5);

    /// The six Table 2 algorithms, in meta-model class-label order.
    pub fn builtin() -> [AlgorithmKind; 6] {
        [
            AlgorithmKind::LASSO,
            AlgorithmKind::LINEAR_SVR,
            AlgorithmKind::ELASTIC_NET_CV,
            AlgorithmKind::XGB_REGRESSOR,
            AlgorithmKind::HUBER_REGRESSOR,
            AlgorithmKind::QUANTILE_REGRESSOR,
        ]
    }

    /// Every registered algorithm (builtins first, then extensions in
    /// registration order).
    pub fn all() -> Vec<AlgorithmKind> {
        let n = registry().read().expect("registry lock").len();
        (0..n as u16).map(AlgorithmKind).collect()
    }

    /// This algorithm's spec.
    pub fn spec(&self) -> &'static AlgorithmSpec {
        registry().read().expect("registry lock")[self.0 as usize]
    }

    /// The display name (matches the "Best Model" column of Table 3).
    pub fn name(&self) -> &'static str {
        self.spec().name.as_str()
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<AlgorithmKind> {
        let reg = registry().read().expect("registry lock");
        reg.iter()
            .position(|s| s.name() == name)
            .map(|i| AlgorithmKind(i as u16))
    }

    /// Registry index (the class label used by the meta-model).
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`AlgorithmKind::index`].
    pub fn from_index(idx: usize) -> Option<AlgorithmKind> {
        let n = registry().read().expect("registry lock").len();
        (idx < n).then_some(AlgorithmKind(idx as u16))
    }

    /// True for algorithms whose final federated model is built by
    /// coefficient averaging (vs ensemble union).
    pub fn is_linear(&self) -> bool {
        matches!(self.spec().finalize, FinalizeStrategy::CoefficientAverage)
    }
}

fn registry() -> &'static RwLock<Vec<&'static AlgorithmSpec>> {
    static REGISTRY: OnceLock<RwLock<Vec<&'static AlgorithmSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(
            builtin_specs()
                .into_iter()
                .map(|s| &*Box::leak(Box::new(s)))
                .collect(),
        )
    })
}

/// Registers an extension algorithm and returns its handle. Specs live for
/// the process lifetime (they are leaked into the registry).
///
/// Validation enforces the registry contract:
/// - non-empty display name, unique across the registry;
/// - a namespace prefix ending in `_`, disjoint from every registered
///   prefix (neither may be a prefix of the other), and carried by every
///   param key;
/// - a non-empty grid (warm starts come from its middle entry);
/// - a model codec when the finalize strategy is
///   [`FinalizeStrategy::EnsembleUnion`].
pub fn register(spec: AlgorithmSpec) -> std::result::Result<AlgorithmKind, String> {
    if spec.name.is_empty() {
        return Err("algorithm name must be non-empty".into());
    }
    if spec.prefix.is_empty() || !spec.prefix.ends_with('_') {
        return Err(format!(
            "prefix {:?} must be non-empty and end in '_'",
            spec.prefix
        ));
    }
    if spec.grid.is_empty() {
        return Err(format!("algorithm {} has an empty grid", spec.name));
    }
    if spec.finalize == FinalizeStrategy::EnsembleUnion && spec.deserialize.is_none() {
        return Err(format!(
            "ensemble-union algorithm {} needs a model codec (with_model_codec)",
            spec.name
        ));
    }
    for pd in &spec.params {
        if !pd.key.starts_with(spec.prefix.as_str()) {
            return Err(format!(
                "param {} must carry the {} namespace prefix",
                pd.key, spec.prefix
            ));
        }
    }
    let mut keys: Vec<&str> = spec.params.iter().map(|p| p.key.as_str()).collect();
    keys.sort_unstable();
    if keys.windows(2).any(|w| w[0] == w[1]) {
        return Err(format!("algorithm {} has duplicate param keys", spec.name));
    }
    let mut reg = registry().write().expect("registry lock");
    if reg.len() >= u16::MAX as usize {
        return Err("registry full".into());
    }
    for existing in reg.iter() {
        if existing.name() == spec.name {
            return Err(format!("algorithm {} is already registered", spec.name));
        }
        if existing.prefix.starts_with(spec.prefix.as_str())
            || spec.prefix.starts_with(existing.prefix.as_str())
        {
            return Err(format!(
                "prefix {} collides with registered prefix {}",
                spec.prefix, existing.prefix
            ));
        }
    }
    let idx = reg.len() as u16;
    reg.push(Box::leak(Box::new(spec)));
    Ok(AlgorithmKind(idx))
}

// --- Field accessors shared by the builtin specs --------------------------

fn set_alpha(hp: &mut HyperParams, v: &SpecValue) {
    hp.alpha = v.as_f64();
}
fn get_alpha(hp: &HyperParams) -> SpecValue {
    SpecValue::Float(hp.alpha)
}
fn set_selection(hp: &mut HyperParams, v: &SpecValue) {
    hp.selection = Selection::from_name(v.as_str());
}
fn get_selection(hp: &HyperParams) -> SpecValue {
    SpecValue::Cat(
        match hp.selection {
            Selection::Cyclic => "cyclic",
            Selection::Random => "random",
        }
        .into(),
    )
}
fn set_epsilon(hp: &mut HyperParams, v: &SpecValue) {
    hp.epsilon = v.as_f64();
}
fn get_epsilon(hp: &HyperParams) -> SpecValue {
    SpecValue::Float(hp.epsilon)
}

fn selection_param(key: &str) -> ParamDef {
    ParamDef::field(
        key,
        ParamKind::Categorical {
            options: vec!["cyclic".into(), "random".into()],
        },
        set_selection,
        get_selection,
    )
}

fn alpha_param(key: &str) -> ParamDef {
    ParamDef::field(
        key,
        ParamKind::LogContinuous { lo: 1e-5, hi: 10.0 },
        set_alpha,
        get_alpha,
    )
}

fn builtin_specs() -> Vec<AlgorithmSpec> {
    let base = HyperParams::default;
    vec![
        AlgorithmSpec::new(
            "Lasso",
            "lasso_",
            FinalizeStrategy::CoefficientAverage,
            |hp| Box::new(Lasso::new(hp.alpha, hp.selection)),
            [1e-4, 1e-2, 0.5]
                .iter()
                .map(|&alpha| HyperParams { alpha, ..base() })
                .collect(),
            vec![
                alpha_param("lasso_alpha"),
                selection_param("lasso_selection"),
            ],
        ),
        AlgorithmSpec::new(
            "LinearSVR",
            "svr_",
            FinalizeStrategy::CoefficientAverage,
            |hp| Box::new(LinearSvr::new(hp.c, hp.epsilon)),
            [(1.0, 0.01), (5.0, 0.05), (10.0, 0.1)]
                .iter()
                .map(|&(c, epsilon)| HyperParams {
                    c,
                    epsilon,
                    ..base()
                })
                .collect(),
            vec![
                ParamDef::field(
                    "svr_c",
                    ParamKind::Continuous { lo: 1.0, hi: 10.0 },
                    |hp, v| hp.c = v.as_f64(),
                    |hp| SpecValue::Float(hp.c),
                ),
                ParamDef::field(
                    "svr_epsilon",
                    ParamKind::Continuous { lo: 0.01, hi: 0.1 },
                    set_epsilon,
                    get_epsilon,
                ),
            ],
        ),
        AlgorithmSpec::new(
            "ElasticNetCV",
            "enet_",
            FinalizeStrategy::CoefficientAverage,
            |hp| Box::new(ElasticNetCv::new(hp.l1_ratio, hp.selection)),
            [0.3, 0.7, 1.0]
                .iter()
                .map(|&l1_ratio| HyperParams { l1_ratio, ..base() })
                .collect(),
            vec![
                // Table 2 prints l1_ratio ∈ [0.3, 10], but the mixing ratio
                // is only defined on [0, 1]; the space samples the valid
                // range directly (DESIGN.md §4).
                ParamDef::field(
                    "enet_l1_ratio",
                    ParamKind::Continuous { lo: 0.3, hi: 1.0 },
                    |hp, v| hp.l1_ratio = v.as_f64(),
                    |hp| SpecValue::Float(hp.l1_ratio),
                ),
                selection_param("enet_selection"),
            ],
        ),
        AlgorithmSpec::new(
            "XGBRegressor",
            "xgb_",
            FinalizeStrategy::EnsembleUnion,
            |hp| {
                Box::new(XgbRegressor::new(
                    hp.n_estimators,
                    hp.max_depth,
                    hp.learning_rate,
                    hp.reg_lambda,
                    hp.subsample,
                ))
            },
            [(5, 2, 0.3), (10, 4, 0.3), (20, 6, 0.1)]
                .iter()
                .map(|&(n, d, lr)| HyperParams {
                    n_estimators: n,
                    max_depth: d,
                    learning_rate: lr,
                    ..base()
                })
                .collect(),
            vec![
                ParamDef::field(
                    "xgb_n_estimators",
                    ParamKind::Integer { lo: 5, hi: 20 },
                    |hp, v| hp.n_estimators = v.as_i64().max(1) as usize,
                    |hp| SpecValue::Int(hp.n_estimators as i64),
                ),
                ParamDef::field(
                    "xgb_max_depth",
                    ParamKind::Integer { lo: 2, hi: 10 },
                    |hp, v| hp.max_depth = v.as_i64().max(1) as usize,
                    |hp| SpecValue::Int(hp.max_depth as i64),
                ),
                ParamDef::field(
                    "xgb_learning_rate",
                    ParamKind::Continuous { lo: 0.01, hi: 1.0 },
                    |hp, v| hp.learning_rate = v.as_f64(),
                    |hp| SpecValue::Float(hp.learning_rate),
                ),
                ParamDef::field(
                    "xgb_reg_lambda",
                    ParamKind::Continuous { lo: 0.8, hi: 10.0 },
                    |hp, v| hp.reg_lambda = v.as_f64(),
                    |hp| SpecValue::Float(hp.reg_lambda),
                ),
                ParamDef::field(
                    "xgb_subsample",
                    ParamKind::Continuous { lo: 0.1, hi: 1.0 },
                    |hp, v| hp.subsample = v.as_f64(),
                    |hp| SpecValue::Float(hp.subsample),
                ),
            ],
        )
        .with_model_codec(|bytes| {
            XgbRegressor::from_bytes(bytes)
                .map(|m| Box::new(m) as Box<dyn Regressor + Send + Sync>)
                .map_err(|e| e.to_string())
        }),
        AlgorithmSpec::new(
            "HuberRegressor",
            "huber_",
            FinalizeStrategy::CoefficientAverage,
            |hp| Box::new(HuberRegressor::new(hp.epsilon.max(1.0), hp.alpha)),
            [(1.0, 1e-3), (1.35, 1e-2), (1.5, 1e-1)]
                .iter()
                .map(|&(epsilon, alpha)| HyperParams {
                    epsilon,
                    alpha,
                    ..base()
                })
                .collect(),
            vec![
                ParamDef::field(
                    "huber_epsilon",
                    ParamKind::Categorical {
                        options: vec!["1.0".into(), "1.35".into(), "1.5".into()],
                    },
                    set_epsilon,
                    get_epsilon,
                ),
                alpha_param("huber_alpha"),
            ],
        ),
        AlgorithmSpec::new(
            "QuantileRegressor",
            "quantile_",
            FinalizeStrategy::CoefficientAverage,
            |hp| Box::new(QuantileRegressor::new(hp.quantile, hp.alpha)),
            [(0.5, 1e-3), (0.5, 1e-1), (0.7, 1e-2)]
                .iter()
                .map(|&(quantile, alpha)| HyperParams {
                    quantile,
                    alpha,
                    ..base()
                })
                .collect(),
            vec![
                alpha_param("quantile_alpha"),
                ParamDef::field(
                    "quantile_q",
                    ParamKind::Continuous { lo: 0.1, hi: 1.0 },
                    |hp, v| hp.quantile = v.as_f64(),
                    |hp| SpecValue::Float(hp.quantile),
                ),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_table2_order() {
        let names: Vec<&str> = AlgorithmKind::builtin().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "Lasso",
                "LinearSVR",
                "ElasticNetCV",
                "XGBRegressor",
                "HuberRegressor",
                "QuantileRegressor"
            ]
        );
        for (i, k) in AlgorithmKind::builtin().into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(AlgorithmKind::from_index(i), Some(k));
            assert_eq!(AlgorithmKind::from_name(k.name()), Some(k));
        }
    }

    #[test]
    fn warm_values_are_grid_middles() {
        let lasso = AlgorithmKind::LASSO.spec();
        assert_eq!(lasso.params()[0].warm(), &SpecValue::Float(1e-2));
        assert_eq!(lasso.params()[1].warm(), &SpecValue::Cat("cyclic".into()));
        let huber = AlgorithmKind::HUBER_REGRESSOR.spec();
        assert_eq!(huber.params()[0].warm(), &SpecValue::Cat("1.35".into()));
        assert_eq!(huber.params()[1].warm(), &SpecValue::Float(1e-2));
        let xgb = AlgorithmKind::XGB_REGRESSOR.spec();
        assert_eq!(xgb.params()[0].warm(), &SpecValue::Int(10));
        assert_eq!(xgb.params()[1].warm(), &SpecValue::Int(4));
    }

    #[test]
    fn decode_ignores_foreign_namespaces() {
        let lasso = AlgorithmKind::LASSO.spec();
        // A lookup that "knows" an SVR key: Lasso must never consult it.
        let hp = lasso.decode(|key| match key {
            "lasso_alpha" => Some(SpecValue::Float(0.25)),
            "svr_c" => Some(SpecValue::Float(9.0)),
            _ => None,
        });
        assert_eq!(hp.alpha, 0.25);
        assert_eq!(hp.c, HyperParams::default().c);
    }

    #[test]
    fn encode_decode_roundtrip_for_every_builtin() {
        for kind in AlgorithmKind::builtin() {
            let spec = kind.spec();
            for hp in spec.grid() {
                let pairs = spec.encode(hp);
                let back =
                    spec.decode(|key| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()));
                assert_eq!(spec.encode(&back), pairs, "{kind:?}");
            }
        }
    }

    #[test]
    fn register_validates_contract() {
        let dummy = |_: &HyperParams| -> Box<dyn Regressor + Send + Sync> {
            Box::new(Lasso::new(0.1, Selection::Cyclic))
        };
        // Duplicate name.
        let dup = AlgorithmSpec::new(
            "Lasso",
            "zzz_",
            FinalizeStrategy::CoefficientAverage,
            dummy,
            vec![HyperParams::default()],
            vec![],
        );
        assert!(register(dup).is_err());
        // Prefix collision.
        let clash = AlgorithmSpec::new(
            "Other",
            "lasso_",
            FinalizeStrategy::CoefficientAverage,
            dummy,
            vec![HyperParams::default()],
            vec![],
        );
        assert!(register(clash).is_err());
        // Non-namespaced key.
        let loose = AlgorithmSpec::new(
            "Loose",
            "loose_",
            FinalizeStrategy::CoefficientAverage,
            dummy,
            vec![HyperParams::default()],
            vec![ParamDef::extra(
                "alpha",
                ParamKind::Continuous { lo: 0.0, hi: 1.0 },
                0.5,
            )],
        );
        assert!(register(loose).is_err());
        // Union without a codec.
        let uncodec = AlgorithmSpec::new(
            "Uncodec",
            "uncodec_",
            FinalizeStrategy::EnsembleUnion,
            dummy,
            vec![HyperParams::default()],
            vec![],
        );
        assert!(register(uncodec).is_err());
        // Empty grid.
        let nogrid = AlgorithmSpec::new(
            "NoGrid",
            "nogrid_",
            FinalizeStrategy::CoefficientAverage,
            dummy,
            vec![],
            vec![],
        );
        assert!(register(nogrid).is_err());
    }

    #[test]
    fn extras_binding_roundtrips() {
        let pd = ParamDef::extra("toy_k", ParamKind::Integer { lo: 1, hi: 9 }, 3.0);
        let mut hp = HyperParams::default();
        assert_eq!(
            ParamDef {
                warm: SpecValue::Int(3),
                ..pd
            }
            .read(&hp),
            SpecValue::Int(3)
        );
        let pd = ParamDef::extra("toy_k", ParamKind::Integer { lo: 1, hi: 9 }, 3.0);
        pd.apply(&mut hp, &SpecValue::Int(7));
        assert_eq!(pd.read(&hp), SpecValue::Int(7));
    }

    #[test]
    fn categorical_canonicalization_snaps_to_nearest_option() {
        let huber = AlgorithmKind::HUBER_REGRESSOR.spec();
        let eps = &huber.params()[0];
        assert_eq!(
            eps.canonical(&SpecValue::Float(1.34)),
            SpecValue::Cat("1.35".into())
        );
        assert_eq!(
            eps.canonical(&SpecValue::Float(0.05)),
            SpecValue::Cat("1.0".into())
        );
        assert_eq!(
            eps.canonical(&SpecValue::Cat("1.5".into())),
            SpecValue::Cat("1.5".into())
        );
    }
}
