//! Feature standardization shared by the linear models.

use ff_linalg::Matrix;

/// Per-column z-score standardizer fitted on training data.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns column means and standard deviations (zero-variance columns
    /// get std 1 so they standardize to 0).
    pub fn fit(x: &Matrix) -> Standardizer {
        let (n, p) = (x.rows(), x.cols());
        let mut means = vec![0.0; p];
        for i in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in means.iter_mut() {
            *m /= n.max(1) as f64;
        }
        let mut stds = vec![0.0; p];
        for i in 0..n {
            for ((s, &v), m) in stds.iter_mut().zip(x.row(i)).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n.max(1) as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Standardizer { means, stds }
    }

    /// Applies the transform.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x.get(i, j) - self.means[j]) / self.stds[j]
        })
    }

    /// Rebuilds a standardizer from previously exported statistics (e.g.
    /// shipped inside a serialized federated model blob).
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Standardizer {
        assert_eq!(means.len(), stds.len(), "scaler shape mismatch");
        let stds = stds
            .into_iter()
            .map(|s| if s.abs() < 1e-12 { 1.0 } else { s })
            .collect();
        Standardizer { means, stds }
    }

    /// Number of columns this standardizer was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Target z-score scaler.
#[derive(Debug, Clone, Copy)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (≥ 1e-12).
    pub std: f64,
}

impl TargetScaler {
    /// Learns mean/std of the target.
    pub fn fit(y: &[f64]) -> TargetScaler {
        let mean = ff_linalg::vector::mean(y);
        let std = ff_linalg::vector::stddev(y).max(1e-12);
        TargetScaler { mean, std }
    }

    /// Scales a target value.
    pub fn scale(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Inverts the scaling.
    pub fn unscale(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for j in 0..2 {
            let col = z.col(j);
            assert!(ff_linalg::vector::mean(&col).abs() < 1e-12);
            // Population std of the standardized column is 1.
            let var: f64 = col.iter().map(|v| v * v).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_standardizes_to_zero() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn target_scaler_roundtrip() {
        let y = [3.0, 5.0, 7.0];
        let s = TargetScaler::fit(&y);
        for &v in &y {
            assert!((s.unscale(s.scale(v)) - v).abs() < 1e-12);
        }
    }
}
