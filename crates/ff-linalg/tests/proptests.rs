//! Property-based tests for the linear-algebra substrate.

use ff_linalg::{cholesky::CholeskyFactor, fft, qr, special, vector, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for i in 0..lhs.rows() {
            for j in 0..lhs.cols() {
                prop_assert!((lhs.get(i, j) - rhs.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in matrix_strategy(6, 3)) {
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g.get(i, i) >= -1e-12);
            for j in 0..3 {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_solve_residual_is_small(m in matrix_strategy(5, 3), b in prop::collection::vec(-5.0f64..5.0, 3)) {
        // A = MᵀM + I is SPD.
        let mut a = m.gram();
        a.add_diagonal(1.0);
        let f = CholeskyFactor::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_reconstruction(m in matrix_strategy(4, 4)) {
        let mut a = m.gram();
        a.add_diagonal(0.5);
        let f = CholeskyFactor::new(&a).unwrap();
        let rec = f.l().matmul(&f.l().transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn qr_least_squares_residual_orthogonal_to_columns(
        m in matrix_strategy(8, 3),
        y in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        // Guard against accidental rank deficiency by adding distinct ramps.
        let a = Matrix::from_fn(8, 3, |i, j| m.get(i, j) + (i as f64 + 1.0) * (j as f64 + 1.0) * 0.01);
        if let Ok(beta) = qr::lstsq(&a, &y) {
            let pred = a.matvec(&beta).unwrap();
            let resid = vector::sub(&y, &pred);
            // Normal equations: Aᵀ r = 0 at the optimum.
            let atr = a.t_matvec(&resid).unwrap();
            for v in atr {
                prop_assert!(v.abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fft_roundtrip_via_conjugate(x in prop::collection::vec(-100.0f64..100.0, 32)) {
        // IFFT(X) = conj(FFT(conj(X)))/n; applied to a real signal this
        // must reproduce the input.
        let spec = fft::fft_real(&x);
        let mut conj: Vec<(f64, f64)> = spec.iter().map(|&(re, im)| (re, -im)).collect();
        fft::fft_in_place(&mut conj);
        let n = conj.len() as f64;
        for (i, &xi) in x.iter().enumerate() {
            prop_assert!((conj[i].0 / n - xi).abs() < 1e-8);
            prop_assert!((conj[i].1 / n).abs() < 1e-8);
        }
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (cl, ch) = (special::normal_cdf(lo), special::normal_cdf(hi));
        prop_assert!((0.0..=1.0).contains(&cl));
        prop_assert!((0.0..=1.0).contains(&ch));
        prop_assert!(cl <= ch + 1e-12);
    }

    #[test]
    fn quantile_cdf_roundtrip(p in 0.001f64..0.999) {
        let x = special::normal_quantile(p);
        prop_assert!((special::normal_cdf(x) - p).abs() < 1e-5);
    }
}
