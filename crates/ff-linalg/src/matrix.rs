//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense `rows × cols` matrix of `f64` stored in row-major order.
///
/// This is the workhorse container of the workspace: design matrices,
/// Gram matrices, and kernel matrices are all `Matrix` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Like [`Matrix::from_fn`] but fills row blocks on the ff-par pool.
    ///
    /// Every cell is written exactly once by `f(i, j)`, so the result is
    /// bit-identical to `from_fn` at any thread count. Small matrices stay
    /// on the calling thread; the cutoff is on cell count, not threads, so
    /// the sequential/parallel decision is itself deterministic.
    pub fn from_fn_par(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        /// Below this many cells, spawn overhead beats the fill work.
        const PAR_MIN_CELLS: usize = 4096;
        if rows * cols < PAR_MIN_CELLS {
            return Self::from_fn(rows, cols, f);
        }
        let mut m = Matrix::zeros(rows, cols);
        let rows_per = ff_par::partition_len(rows, 1);
        ff_par::par_chunks_mut(&mut m.data, rows_per * cols, |c, chunk| {
            let base = c * rows_per;
            for (r, row) in chunk.chunks_mut(cols).enumerate() {
                let i = base + r;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = f(i, j);
                }
            }
        });
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(i, j)` element.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the `(i, j)` element.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams contiguously over
    /// rows of `rhs`, which is markedly faster than the naive i-j-k order.
    ///
    /// Large products run row-parallel on the ff-par pool: each output row
    /// is produced whole by one task with the identical k-ascending inner
    /// loop, so the product is bit-identical at every thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("lhs.cols == rhs.rows ({})", self.cols),
                got: format!("rhs.rows = {}", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        /// Below ~128·128·8 multiply-adds, spawn overhead dominates.
        const PAR_MIN_FLOPS: usize = 131_072;
        if rhs.cols > 0 && self.rows * self.cols * rhs.cols >= PAR_MIN_FLOPS {
            let rows_per = ff_par::partition_len(self.rows, 4);
            ff_par::par_chunks_mut(&mut out.data, rows_per * rhs.cols, |c, chunk| {
                let base = c * rows_per;
                for (r, out_row) in chunk.chunks_mut(rhs.cols).enumerate() {
                    mul_row_into(self.row(base + r), rhs, out_row);
                }
            });
        } else {
            for i in 0..self.rows {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                mul_row_into(self.row(i), rhs, out_row);
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), v))
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                got: format!("length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += vi * x;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` computed without forming the transpose.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..p {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                let grow = &mut g.data[a * p..(a + 1) * p];
                for b in a..p {
                    grow[b] += ra * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..p {
            for b in (a + 1)..p {
                let v = g.get(a, b);
                g.set(b, a, v);
            }
        }
        g
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Adds `v` to the diagonal in place (useful for ridge terms / jitter).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += v;
        }
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// One output row of `lhs_row · rhs`, accumulated in k-ascending order.
/// Shared by the sequential and row-parallel matmul paths so both execute
/// the exact same floating-point operation sequence per row.
fn mul_row_into(lhs_row: &[f64], rhs: &Matrix, out_row: &mut [f64]) {
    for (k, &a) in lhs_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
            *o += a * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g.get(i, j) - explicit.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(1.5);
        assert_eq!(a, Matrix::from_rows(&[&[1.5, 0.0], &[0.0, 1.5]]));
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        // 80×80 crosses the parallel flop cutoff (80³ > 131_072).
        let n = 80;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) as f64).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) as f64).cos());
        let seq = ff_par::with_threads(1, || a.matmul(&b).unwrap());
        for &threads in &[2usize, 3, 8] {
            let par = ff_par::with_threads(threads, || a.matmul(&b).unwrap());
            for (x, y) in par.as_slice().iter().zip(seq.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn from_fn_par_matches_from_fn_bitwise() {
        let f = |i: usize, j: usize| 1.0 / ((i * 97 + j) as f64 + 0.5);
        for (rows, cols) in [(3, 5), (70, 70), (129, 33)] {
            let seq = Matrix::from_fn(rows, cols, f);
            for &threads in &[1usize, 2, 8] {
                let par = ff_par::with_threads(threads, || Matrix::from_fn_par(rows, cols, f));
                assert_eq!(par, seq, "{rows}x{cols} threads={threads}");
            }
        }
    }

    #[test]
    fn row_and_col_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }
}
