// Index-based loops across parallel arrays are the clearest form for the
// numeric kernels in this crate; the iterator rewrites clippy suggests
// obscure the math.
#![allow(clippy::needless_range_loop)]

//! Dense linear algebra, FFT, and special functions for the FedForecaster stack.
//!
//! Everything in this crate is implemented from scratch on `Vec<f64>` storage:
//! no BLAS, no external numeric crates. It provides exactly the kernels the
//! rest of the workspace needs:
//!
//! - [`Matrix`]: a row-major dense matrix with the usual algebra.
//! - [`cholesky`]: Cholesky factorization and linear solves (Gaussian
//!   processes, ridge regression).
//! - [`qr`]: Householder QR and least-squares solves (ADF regressions).
//! - [`solve`]: convenience OLS / ridge solvers used across the workspace.
//! - [`fft`]: iterative radix-2 FFT and real power spectra (periodograms).
//! - [`special`]: `erf`, the standard normal pdf/cdf/quantile (Expected
//!   Improvement, significance tests).
//! - [`vector`]: small dense-vector helpers (dot products, norms, axpy).
//!
//! # Example
//!
//! ```
//! use ff_linalg::{Matrix, solve::ols};
//!
//! // Fit y = 2x + 1 exactly.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
//! let y = [1.0, 3.0, 5.0];
//! let beta = ols(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-9 && (beta[1] - 2.0).abs() < 1e-9);
//! ```

pub mod cholesky;
pub mod fft;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod special;
pub mod vector;

pub use cholesky::CholeskyFactor;
pub use matrix::Matrix;

/// Errors produced by linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        got: String,
    },
    /// The matrix is not positive definite (Cholesky failed even with jitter).
    NotPositiveDefinite,
    /// The system is singular or too ill-conditioned to solve.
    Singular,
    /// The input is empty where a non-empty input is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular or ill-conditioned"),
            LinalgError::Empty => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
