//! Small dense-vector helpers used throughout the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ (the shorter length wins in
/// release builds, matching `zip` semantics).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `y *= alpha`.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Elementwise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Index of the maximum element (first on ties); `None` for empty input
/// or when every element is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` for empty input
/// or when every element is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|&x| -x).collect();
    argmax(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn mean_variance_known_values() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic example is 32/7.
        assert!((variance(&a) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_short_inputs_is_zero() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn argmax_skips_nan_and_handles_empty() {
        assert_eq!(argmax(&[1.0, f64::NAN, 3.0, 2.0]), Some(2));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), Some(1));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
    }
}
