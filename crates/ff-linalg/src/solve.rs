//! Convenience least-squares solvers built on Cholesky and QR.

use crate::{cholesky::CholeskyFactor, qr, LinalgError, Matrix, Result};

/// Ordinary least squares: solves `min ‖X β − y‖₂`.
///
/// Uses Householder QR, which tolerates the ill-conditioned design matrices
/// that show up in ADF regressions with many lag terms.
pub fn ols(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("{} targets", x.rows()),
            got: format!("{}", y.len()),
        });
    }
    qr::lstsq(x, y)
}

/// Ridge regression: solves `(XᵀX + λI) β = Xᵀy` via Cholesky.
///
/// `lambda` must be positive; the regularized Gram matrix is then SPD by
/// construction so the factorization cannot fail for finite inputs.
pub fn ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("{} targets", x.rows()),
            got: format!("{}", y.len()),
        });
    }
    if lambda.is_nan() || lambda <= 0.0 {
        return Err(LinalgError::Singular);
    }
    let mut gram = x.gram();
    gram.add_diagonal(lambda);
    let rhs = x.t_matvec(y)?;
    let f = CholeskyFactor::new_with_jitter(&gram, 1e-10, 10)?;
    f.solve(&rhs)
}

/// Result of [`ols_with_stats`]: coefficients plus the diagnostics needed by
/// statistical tests.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients.
    pub beta: Vec<f64>,
    /// Standard error of each coefficient.
    pub std_errors: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Residual degrees of freedom (`n - p`).
    pub dof: usize,
}

impl OlsFit {
    /// t-statistic of coefficient `j` (`beta[j] / se[j]`).
    pub fn t_stat(&self, j: usize) -> f64 {
        if self.std_errors[j] == 0.0 {
            0.0
        } else {
            self.beta[j] / self.std_errors[j]
        }
    }
}

/// OLS fit that also returns coefficient standard errors and the t-statistics
/// the ADF test needs: `Var(β) = σ² (XᵀX)⁻¹` with `σ² = RSS / (n − p)`.
pub fn ols_with_stats(x: &Matrix, y: &[f64]) -> Result<OlsFit> {
    let beta = ols(x, y)?;
    let n = x.rows();
    let p = x.cols();
    if n <= p {
        return Err(LinalgError::Singular);
    }
    let pred = x.matvec(&beta)?;
    let rss: f64 = y
        .iter()
        .zip(&pred)
        .map(|(&yi, &pi)| (yi - pi) * (yi - pi))
        .sum();
    let dof = n - p;
    let sigma2 = rss / dof as f64;
    // Invert the Gram matrix column by column through a (jittered) Cholesky.
    let gram = x.gram();
    let f = CholeskyFactor::new_with_jitter(&gram, 1e-12 * gram.max_abs().max(1.0), 12)?;
    let mut std_errors = Vec::with_capacity(p);
    for j in 0..p {
        let mut e = vec![0.0; p];
        e[j] = 1.0;
        let col = f.solve(&e)?;
        std_errors.push((sigma2 * col[j]).max(0.0).sqrt());
    }
    Ok(OlsFit {
        beta,
        std_errors,
        rss,
        dof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_shrinks_toward_zero() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64 / 10.0);
        let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 / 10.0).collect();
        let b_small = ridge(&x, &y, 1e-8).unwrap()[0];
        let b_large = ridge(&x, &y, 1e4).unwrap()[0];
        assert!((b_small - 2.0).abs() < 1e-4);
        assert!(b_large.abs() < b_small.abs());
        assert!(b_large > 0.0);
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        // Duplicate columns break OLS but ridge is fine.
        let x = Matrix::from_fn(10, 2, |i, _| i as f64);
        let y: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let b = ridge(&x, &y, 1e-3).unwrap();
        // The two coefficients should split the weight roughly evenly.
        assert!((b[0] + b[1] - 4.0).abs() < 1e-2);
        assert!((b[0] - b[1]).abs() < 1e-6);
    }

    #[test]
    fn ridge_rejects_nonpositive_lambda() {
        let x = Matrix::zeros(3, 1);
        assert!(ridge(&x, &[0.0; 3], 0.0).is_err());
    }

    #[test]
    fn ols_with_stats_perfect_fit_has_tiny_errors() {
        let x = Matrix::from_fn(30, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let y: Vec<f64> = (0..30).map(|i| 1.0 + 0.5 * i as f64).collect();
        let fit = ols_with_stats(&x, &y).unwrap();
        assert!((fit.beta[1] - 0.5).abs() < 1e-9);
        assert!(fit.rss < 1e-12);
        assert_eq!(fit.dof, 28);
    }

    #[test]
    fn ols_with_stats_t_statistic_is_large_for_strong_signal() {
        // Deterministic "noise" that is orthogonal-ish to the regressor.
        let n = 100;
        let x = Matrix::from_fn(n, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 + 3.0 * i as f64 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = ols_with_stats(&x, &y).unwrap();
        assert!(fit.t_stat(1).abs() > 100.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        let x = Matrix::zeros(3, 1);
        assert!(ols(&x, &[1.0, 2.0]).is_err());
        assert!(ridge(&x, &[1.0, 2.0], 1.0).is_err());
    }
}
