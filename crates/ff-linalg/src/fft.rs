//! Iterative radix-2 FFT and real power spectra.
//!
//! The periodogram used for seasonality detection in `ff-timeseries` is the
//! only spectral consumer in the workspace, so the API is deliberately small:
//! a complex in-place FFT on power-of-two lengths plus a real-input
//! periodogram helper that handles zero-padding.

/// A complex number represented as `(re, im)`.
pub type Complex = (f64, f64);

/// Smallest power of two `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut start = 0;
        while start < n {
            let (mut cr, mut ci) = (1.0, 0.0);
            for k in 0..len / 2 {
                let (ar, ai) = buf[start + k];
                let (br, bi) = buf[start + k + len / 2];
                let tr = br * cr - bi * ci;
                let ti = br * ci + bi * cr;
                buf[start + k] = (ar + tr, ai + ti);
                buf[start + k + len / 2] = (ar - tr, ai - ti);
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum of length `next_pow2(x.len())`.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let n = next_pow2(x.len());
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(x.iter().map(|&v| (v, 0.0)));
    buf.resize(n, (0.0, 0.0));
    fft_in_place(&mut buf);
    buf
}

/// One-sided periodogram of a real, mean-removed signal.
///
/// Returns `(frequencies, power)` where frequencies are in cycles-per-sample
/// over `(0, 0.5]` (the zero-frequency bin is dropped — the caller removed
/// the mean, so it carries no information) and power is `|X(f)|² / n`.
pub fn periodogram(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    if x.len() < 4 {
        return (Vec::new(), Vec::new());
    }
    let mean = crate::vector::mean(x);
    let centered: Vec<f64> = x.iter().map(|&v| v - mean).collect();
    let spec = fft_real(&centered);
    let nfft = spec.len();
    let half = nfft / 2;
    let norm = x.len() as f64;
    let mut freqs = Vec::with_capacity(half);
    let mut power = Vec::with_capacity(half);
    for (k, &(re, im)) in spec.iter().enumerate().take(half + 1).skip(1) {
        freqs.push(k as f64 / nfft as f64);
        power.push((re * re + im * im) / norm);
    }
    (freqs, power)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (t, &(re, im)) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| ((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = naive_dft(&x);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f.0 - s.0).abs() < 1e-9 && (f.1 - s.1).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![(0.0, 0.0); 8];
        buf[0] = (1.0, 0.0);
        fft_in_place(&mut buf);
        for &(re, im) in &buf {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn periodogram_peak_at_signal_frequency() {
        // Period-8 sine sampled 256 times: peak must land at f = 1/8.
        let x: Vec<f64> = (0..256)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 8.0).sin())
            .collect();
        let (freqs, power) = periodogram(&x);
        let imax = crate::vector::argmax(&power).unwrap();
        assert!((freqs[imax] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn periodogram_of_constant_is_zero() {
        let x = vec![5.0; 64];
        let (_, power) = periodogram(&x);
        assert!(power.iter().all(|&p| p < 1e-18));
    }

    #[test]
    fn periodogram_short_input_is_empty() {
        assert!(periodogram(&[1.0, 2.0]).0.is_empty());
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let spec = fft_real(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            spec.iter().map(|&(re, im)| re * re + im * im).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }
}
