//! Householder QR factorization and least-squares solves.
//!
//! The ADF stationarity regressions and Prophet-style trend fits solve tall
//! least-squares systems whose Gram matrices can be poorly conditioned;
//! QR is the numerically safe path for those.

use crate::{LinalgError, Matrix, Result};

/// QR factorization of an `m × n` matrix (`m ≥ n`) via Householder
/// reflections, stored in compact form.
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Householder vectors below the diagonal; R on and above it.
    qr: Matrix,
    /// Scaling factors of the Householder reflections.
    tau: Vec<f64>,
}

impl QrFactor {
    /// Factorizes `a`. Requires `a.rows() >= a.cols()` and a non-empty matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                expected: "rows >= cols".into(),
                got: format!("{m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the norm of the k-th column below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, normalized so v[k] = 1.
            let vkk = qr.get(k, k) - alpha;
            for i in (k + 1)..m {
                let v = qr.get(i, k) / vkk;
                qr.set(i, k, v);
            }
            tau[k] = -vkk / alpha;
            qr.set(k, k, alpha);
            // Apply the reflection to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr.get(k, j);
                for i in (k + 1)..m {
                    s += qr.get(i, k) * qr.get(i, j);
                }
                s *= tau[k];
                let v = qr.get(k, j) - s;
                qr.set(k, j, v);
                for i in (k + 1)..m {
                    let v = qr.get(i, j) - s * qr.get(i, k);
                    qr.set(i, j, v);
                }
            }
        }
        Ok(QrFactor { qr, tau })
    }

    /// Applies `Qᵀ` to `b` in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr.get(i, k) * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr.get(i, k);
            }
        }
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Returns [`LinalgError::Singular`] when R has a (near-)zero diagonal,
    /// i.e. the columns of `A` are linearly dependent.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {m}"),
                got: format!("length {}", b.len()),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution with R.
        let mut x = vec![0.0; n];
        let scale = self.qr.max_abs().max(1.0);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.qr.get(i, j) * x[j];
            }
            let rii = self.qr.get(i, i);
            if rii.abs() < 1e-12 * scale {
                return Err(LinalgError::Singular);
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }
}

/// One-shot least-squares solve `min ‖A x − b‖₂` via Householder QR.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_regression_recovers_line() {
        // y = 3 + 2t with noise-free observations.
        let n = 20;
        let a = Matrix::from_fn(n, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let b: Vec<f64> = (0..n).map(|i| 3.0 + 2.0 * i as f64).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: solution should be the projection.
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let b = [1.0, 2.0, 6.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10); // mean minimizes squared error
    }

    #[test]
    fn singular_columns_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(
            lstsq(&a, &[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(QrFactor::new(&a).is_err());
    }

    #[test]
    fn negative_leading_coefficient() {
        // Regression against a column starting negative exercises the
        // sign-handling branch of the Householder construction.
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[-2.0, 1.0], &[-3.0, 1.0]]);
        let b = [2.0, 3.0, 4.0]; // y = -x + 1
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] + 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }
}
