//! Special functions: `erf` and the standard normal distribution.
//!
//! Consumers: Expected Improvement in `ff-bayesopt`, significance thresholds
//! in `ff-timeseries`, and the Wilcoxon signed-rank normal approximation.

use std::f64::consts::{PI, SQRT_2};

/// Error function, via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, more than enough for acquisition functions and tests).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's algorithm
/// (relative error < 1.15e-9 on (0, 1)).
///
/// Returns `±INFINITY` at the boundaries and NaN outside `[0, 1]`.
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1.5e-7); // approximation error bound
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1.5e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn normal_pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 2e-7,
                "p={p} x={x} cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }
}
