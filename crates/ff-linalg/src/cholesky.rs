//! Cholesky factorization and triangular solves.
//!
//! Used by the Gaussian-process surrogate in `ff-bayesopt` and by ridge
//! solvers: for a symmetric positive-definite `A`, computes lower-triangular
//! `L` with `L Lᵀ = A`, then solves `A x = b` by forward/back substitution.

use crate::{LinalgError, Matrix, Result};

/// A lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a non-positive pivot
    /// is encountered; callers that work with nearly-singular kernels should
    /// prefer [`CholeskyFactor::new_with_jitter`].
    ///
    /// Large matrices use a blocked right-looking sweep whose trailing
    /// update runs row-parallel on the ff-par pool. Every element's
    /// subtractions are still applied in ascending-`k` order starting from
    /// `a[i][j]`, exactly as the textbook left-looking loop does, so the
    /// factor (and the first failing pivot, if any) is bit-identical to the
    /// sequential algorithm at every thread count.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        /// Columns factored per panel before the trailing update.
        const PANEL: usize = 32;
        // Seed the lower triangle with `a`; partial sums live in place
        // between panels (f64 stores are exact, so spilling the running sum
        // to memory does not change its bits).
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                l.set(i, j, a.get(i, j));
            }
        }
        let mut p0 = 0;
        while p0 < n {
            let p1 = (p0 + PANEL).min(n);
            // Factor the panel columns sequentially (each column depends on
            // the previous ones).
            for j in p0..p1 {
                let mut sum = l.get(j, j);
                for k in p0..j {
                    sum -= l.get(j, k) * l.get(j, k);
                }
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                let d = sum.sqrt();
                l.set(j, j, d);
                for i in (j + 1)..n {
                    let mut sum = l.get(i, j);
                    for k in p0..j {
                        sum -= l.get(i, k) * l.get(j, k);
                    }
                    l.set(i, j, sum / d);
                }
            }
            if p1 < n {
                Self::trailing_update(&mut l, n, p0, p1);
            }
            p0 = p1;
        }
        Ok(CholeskyFactor { l })
    }

    /// Subtracts the factored panel's contribution `Σ_{k∈[p0,p1)} L_ik·L_jk`
    /// from every trailing element `(i, j)` with `p1 ≤ j ≤ i`. Rows are
    /// independent, so the update is chunked over rows on the ff-par pool;
    /// the panel is snapshotted first so workers only read immutable data.
    fn trailing_update(l: &mut Matrix, n: usize, p0: usize, p1: usize) {
        let pw = p1 - p0;
        let panel: Vec<f64> = (p0..n)
            .flat_map(|i| l.row(i)[p0..p1].iter().copied())
            .collect();
        let rows_per = ff_par::partition_len(n - p1, 8);
        let tail = &mut l.as_mut_slice()[p1 * n..];
        ff_par::par_chunks_mut(tail, rows_per * n, |c, chunk| {
            let base = p1 + c * rows_per;
            for (r, row) in chunk.chunks_mut(n).enumerate() {
                let i = base + r;
                let pi = &panel[(i - p0) * pw..(i - p0 + 1) * pw];
                for j in p1..=i {
                    let pj = &panel[(j - p0) * pw..(j - p0 + 1) * pw];
                    let mut sum = row[j];
                    for (x, y) in pi.iter().zip(pj) {
                        sum -= x * y;
                    }
                    row[j] = sum;
                }
            }
        });
    }

    /// Factorizes `A + jitter·I`, growing the jitter geometrically (×10,
    /// up to `max_tries` attempts) until the factorization succeeds.
    ///
    /// This is the standard trick for kernel matrices that are PSD only up
    /// to floating-point error.
    pub fn new_with_jitter(a: &Matrix, mut jitter: f64, max_tries: usize) -> Result<Self> {
        match Self::new(a) {
            Ok(f) => return Ok(f),
            Err(LinalgError::NotPositiveDefinite) => {}
            Err(e) => return Err(e),
        }
        for _ in 0..max_tries {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match Self::new(&aj) {
                Ok(f) => return Ok(f),
                Err(LinalgError::NotPositiveDefinite) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                got: format!("length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                got: format!("length {}", y.len()),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Log-determinant of `A`: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let f = CholeskyFactor::new(&a).unwrap();
        let rec = f.l().matmul(&f.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let f = CholeskyFactor::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        assert_eq!(
            CholeskyFactor::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn jitter_rescues_singular_matrix() {
        // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(CholeskyFactor::new(&a).is_err());
        let f = CholeskyFactor::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert_eq!(f.dim(), 2);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let f = CholeskyFactor::new(&a).unwrap();
        assert!((f.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    /// The textbook left-looking loop the blocked algorithm must match
    /// bit-for-bit.
    fn reference_left_looking(a: &Matrix) -> Result<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// A well-conditioned SPD matrix big enough to span several panels.
    fn spd_large(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = if i == j { n as f64 } else { 0.0 };
            d + 1.0 / ((i + j) as f64 + 1.0)
        })
    }

    #[test]
    fn blocked_factor_matches_left_looking_bitwise() {
        // Sizes straddling the 32-column panel width, including ragged tails.
        for n in [1usize, 7, 31, 32, 33, 97, 130] {
            let a = spd_large(n);
            let reference = reference_left_looking(&a).unwrap();
            for &threads in &[1usize, 2, 8] {
                let f = ff_par::with_threads(threads, || CholeskyFactor::new(&a).unwrap());
                for (x, y) in f.l().as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn blocked_factor_fails_exactly_like_left_looking() {
        // SPD except one late diagonal entry is poisoned: both algorithms
        // must agree that the factorization fails (same first bad pivot).
        let n = 70;
        let mut a = spd_large(n);
        a.set(50, 50, -1.0);
        assert!(reference_left_looking(&a).is_err());
        for &threads in &[1usize, 2, 8] {
            let err = ff_par::with_threads(threads, || CholeskyFactor::new(&a).unwrap_err());
            assert_eq!(err, LinalgError::NotPositiveDefinite, "threads={threads}");
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
