//! Scenario: dynamic model adaptation under distribution shift — the
//! paper's future-work direction (§6), implemented as a walk-forward
//! deployment with drift-triggered re-tuning.
//!
//! Every client's stream changes regime halfway (seasonal period, amplitude,
//! level, and noise all jump). The adaptive wrapper detects the loss
//! degradation and re-runs the full AutoML pipeline; we compare against the
//! same deployment with adaptation disabled.
//!
//! ```text
//! cargo run --release --example drift_adaptation
//! ```

use fedforecaster::adaptive::{AdaptiveConfig, AdaptiveForecaster};
use fedforecaster::prelude::*;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::TimeSeries;

fn shifting_client(seed: u64) -> TimeSeries {
    let calm = generate(
        &SynthesisSpec {
            n: 700,
            seasons: vec![SeasonSpec {
                period: 24.0,
                amplitude: 2.0,
            }],
            snr: Some(25.0),
            level: 20.0,
            ..Default::default()
        },
        seed,
    );
    let turbulent = generate(
        &SynthesisSpec {
            n: 700,
            seasons: vec![SeasonSpec {
                period: 6.0,
                amplitude: 10.0,
            }],
            snr: Some(4.0),
            level: 80.0,
            ..Default::default()
        },
        seed + 100,
    );
    let mut values = calm.values().to_vec();
    values.extend_from_slice(turbulent.values());
    TimeSeries::with_regular_index(0, 3600, values)
}

fn main() {
    println!("training meta-model…");
    let kb = KnowledgeBase::build(&synthetic_kb(32), &[3, 5], 60);
    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("meta");

    let streams: Vec<TimeSeries> = (0..4).map(shifting_client).collect();
    println!(
        "federation: {} clients × {} observations, regime shift at the midpoint\n",
        streams.len(),
        streams[0].len()
    );

    let adaptive_cfg = AdaptiveConfig {
        initial_fraction: 0.4,
        n_chunks: 5,
        drift_factor: 4.0,
        engine: EngineConfig {
            budget: Budget::Iterations(8),
            ..Default::default()
        },
    };
    // With adaptation.
    let with = AdaptiveForecaster::new(adaptive_cfg.clone(), &meta)
        .run(&streams)
        .expect("adaptive run");
    // Without adaptation: drift threshold set unreachably high.
    let without = AdaptiveForecaster::new(
        AdaptiveConfig {
            drift_factor: f64::INFINITY,
            ..adaptive_cfg
        },
        &meta,
    )
    .run(&streams)
    .expect("static run");

    println!(
        "{:<7} {:>14} {:>10} {:>20}",
        "chunk", "loss(adaptive)", "retuned", "loss(static)"
    );
    for (a, s) in with.chunks.iter().zip(&without.chunks) {
        println!(
            "{:<7} {:>14.4} {:>10} {:>20.4}",
            a.chunk,
            a.loss,
            if a.retuned { "yes" } else { "-" },
            s.loss
        );
    }
    println!(
        "\nmean chunk loss: adaptive {:.4} ({} retunes) vs static {:.4}",
        with.mean_loss, with.retunes, without.mean_loss
    );
    println!(
        "deployed algorithm after the shift: {}",
        with.chunks.last().unwrap().algorithm.name()
    );
}
