//! Scenario: the offline phase end-to-end (Figure 2, left) — build a
//! knowledge base from synthetic + real-like datasets, compare the Table 4
//! classifier zoo, train the winning meta-model, and query it for an
//! unseen federation.
//!
//! ```text
//! cargo run --release --example metamodel_training
//! ```

use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{evaluate_zoo, MetaClassifierKind, MetaModel};
use ff_metalearn::synth::{reallike_kb, synthetic_kb};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};

fn main() {
    // 1. Knowledge base: synthetic factor grid + 30 real-like datasets,
    //    each labelled by federated grid search (§4.1.1).
    println!("building knowledge base…");
    let mut datasets = synthetic_kb(64);
    datasets.extend(reallike_kb());
    let kb = KnowledgeBase::build(&datasets, &[5, 10, 15, 20], 60);
    println!(
        "  {} records, {} features each",
        kb.len(),
        kb.records[0].features.len()
    );

    // 2. Classifier zoo comparison (Table 4).
    println!("\nclassifier zoo (80/20 split):");
    println!("  {:<22} {:>6} {:>6}", "model", "MRR@3", "F1");
    let mut results = evaluate_zoo(&kb, 0).expect("zoo");
    results.sort_by(|a, b| b.mrr3.total_cmp(&a.mrr3));
    for r in &results {
        println!("  {:<22} {:>6.3} {:>6.2}", r.kind.name(), r.mrr3, r.f1);
    }

    // 3. Train the production meta-model on the full KB.
    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("train");

    // 4. Query it for an unseen federation (the online phase, lines 3–10
    //    of Algorithm 1, without running the optimizer).
    let series = generate(
        &SynthesisSpec {
            n: 2500,
            seasons: vec![SeasonSpec {
                period: 24.0,
                amplitude: 5.0,
            }],
            snr: Some(10.0),
            ..Default::default()
        },
        99,
    );
    let clients = series.split_clients(10);
    let metas: Vec<ClientMetaFeatures> = clients
        .iter()
        .map(|c| ClientMetaFeatures::extract(&c.train_valid_split(0.2).0))
        .collect();
    let global = GlobalMetaFeatures::aggregate(&metas);
    let recommendation = meta.recommend(global.values(), 3).expect("recommend");
    println!(
        "\nrecommended search space for the unseen 10-client federation: {:?}",
        recommendation.iter().map(|a| a.name()).collect::<Vec<_>>()
    );
}
