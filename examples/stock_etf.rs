//! Scenario: the ETF federations of Table 3 — each client is one stock of
//! a sector ETF over a shared time window. Unlike the time-split datasets,
//! consolidating these into one series would be misleading (the paper
//! leaves the "N-Beats Cons." cell blank for exactly this reason).
//!
//! ```text
//! cargo run --release --example stock_etf
//! ```

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_bench::build_metamodel;

fn main() {
    let (kb, meta) = build_metamodel(32);
    println!("meta-model trained on {} KB records\n", kb.len());

    let budget = Budget::Iterations(10);
    for name in [
        "Energy Select Sector ETF",
        "The Technology Sector ETF",
        "Utilities Select Sector ETF",
    ] {
        let ds = ff_datasets::benchmark_datasets()
            .into_iter()
            .find(|d| d.name == name)
            .expect("registered dataset");
        let clients = ds.generate_federation(7, 0.3);
        let cfg = EngineConfig {
            budget,
            ..Default::default()
        };

        let ff = FedForecaster::new(cfg.clone(), &meta)
            .run(&clients)
            .expect("engine");
        let rs = RandomSearch::new(cfg).run(&clients).expect("random search");
        let nb = run_federated_nbeats(&clients, budget, 40, false, 7).expect("nbeats");

        println!("{name}: {} stocks × {} days", ds.clients, clients[0].len());
        println!(
            "  FedForecaster {:>10.4} ({})   RandomSearch {:>10.4}   N-Beats {:>10.4}",
            ff.test_mse,
            ff.best_algorithm.name(),
            rs.test_mse,
            nb.test_mse
        );
        println!(
            "  note: N-Beats Cons. is undefined here — concatenating different\n\
             stocks into one sequence fabricates price jumps at the seams.\n"
        );
    }
}
