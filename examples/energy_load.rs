//! Scenario: short-term residential load forecasting at the edge — the
//! motivating IoT deployment of the paper's introduction (smart meters
//! generating hourly consumption data that must stay on-device).
//!
//! Each of the 8 "households" has its own consumption profile (different
//! base load, daily/weekly seasonality amplitudes, and noise) — a genuinely
//! non-IID federation — and we compare FedForecaster against federated
//! N-BEATS under the same budget.
//!
//! ```text
//! cargo run --release --example energy_load
//! ```

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

/// One household's hourly load: base + daily cycle + weekly cycle + noise.
fn household(seed: u64, base: f64, daily_amp: f64, weekly_amp: f64) -> TimeSeries {
    generate(
        &SynthesisSpec {
            n: 24 * 90, // 90 days of hourly readings
            step_secs: 3600,
            trend: TrendSpec::None,
            seasons: vec![
                SeasonSpec {
                    period: 24.0,
                    amplitude: daily_amp,
                },
                SeasonSpec {
                    period: 168.0,
                    amplitude: weekly_amp,
                },
            ],
            snr: Some(8.0),
            missing_fraction: 0.01, // meter dropouts
            level: base,
            ..Default::default()
        },
        seed,
    )
}

fn main() {
    // Non-IID federation: 8 households with different profiles.
    let clients: Vec<TimeSeries> = (0..8)
        .map(|i| {
            household(
                100 + i,
                1.0 + 0.4 * i as f64,        // base load kW
                0.5 + 0.15 * (i % 4) as f64, // daily amplitude
                0.2 + 0.05 * (i % 3) as f64, // weekly amplitude
            )
        })
        .collect();
    println!(
        "federation: {} households × {} hourly readings (non-IID)",
        clients.len(),
        clients[0].len()
    );

    println!("training meta-model…");
    let kb = KnowledgeBase::build(&synthetic_kb(48), &[5, 10], 60);
    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 1).expect("meta-model");

    let budget = Budget::Iterations(12);
    let cfg = EngineConfig {
        budget,
        ..Default::default()
    };

    let ff = FedForecaster::new(cfg.clone(), &meta)
        .run(&clients)
        .expect("engine");
    let nb = run_federated_nbeats(&clients, budget, 40, false, 0).expect("nbeats");

    println!("\n{:<28} {:>12} {:>10}", "method", "test MSE", "time");
    println!(
        "{:<28} {:>12.5} {:>9.1?}",
        format!("FedForecaster ({})", ff.best_algorithm.name()),
        ff.test_mse,
        ff.elapsed
    );
    println!(
        "{:<28} {:>12.5} {:>9.1?}",
        "Federated N-BEATS", nb.test_mse, nb.elapsed
    );
    println!(
        "\nrecommended algorithms were {:?}; the winner generalizes across all\n\
         households through {} aggregation.",
        ff.recommended.iter().map(|a| a.name()).collect::<Vec<_>>(),
        if ff.best_algorithm.is_linear() {
            "coefficient (FedAvg)"
        } else {
            "serialized ensemble-union"
        }
    );
}
