//! Scenario: using the substrate crates directly — define a custom search
//! space, drive the GP Bayesian optimizer by hand against a federated
//! objective, and compare against random search on the same budget.
//!
//! This is the "library, not framework" path: everything the engine does
//! internally is public API.
//!
//! ```text
//! cargo run --release --example custom_search_space
//! ```

use ff_bayesopt::optimizer::BayesOpt;
use ff_bayesopt::space::{ParamSpec, SearchSpace};
use ff_models::linear::cd::Selection;
use ff_models::linear::lasso::Lasso;
use ff_models::metrics::mse;
use ff_models::Regressor;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::windowing::train_valid_lag_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A custom two-parameter space: Lasso alpha (log scale) + lag depth.
    let space = SearchSpace::new()
        .with("alpha", ParamSpec::LogContinuous { lo: 1e-6, hi: 1.0 })
        .with("n_lags", ParamSpec::Integer { lo: 1, hi: 12 });

    // Federated objective: weighted validation MSE across 4 client splits.
    let series = generate(
        &SynthesisSpec {
            n: 2000,
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 3.0,
            }],
            snr: Some(10.0),
            ..Default::default()
        },
        5,
    );
    let clients = series.split_clients(4);
    let objective = |alpha: f64, n_lags: usize| -> f64 {
        let lags: Vec<usize> = (1..=n_lags).collect();
        let mut weighted = 0.0;
        let mut total = 0usize;
        for c in &clients {
            let (train, valid) = c.train_valid_split(0.2);
            let Some((xtr, ytr, xva, yva)) =
                train_valid_lag_split(train.values(), valid.values(), &lags)
            else {
                return f64::INFINITY;
            };
            let mut model = Lasso::new(alpha, Selection::Cyclic);
            if model.fit(&xtr, &ytr).is_err() {
                return f64::INFINITY;
            }
            let pred = model.predict(&xva).expect("fitted");
            weighted += mse(&yva, &pred) * yva.len() as f64;
            total += yva.len();
        }
        weighted / total as f64
    };

    // Bayesian optimization, 20 evaluations.
    let mut bo = BayesOpt::new(space.clone(), 3).expect("space");
    for _ in 0..20 {
        let cfg = bo.ask().expect("ask");
        let loss = objective(cfg["alpha"].as_f64(), cfg["n_lags"].as_i64() as usize);
        bo.tell(&cfg, loss).expect("tell");
    }
    let (best_cfg, best_loss) = bo.best().expect("evaluated");
    println!(
        "BO best:     alpha = {:.2e}, n_lags = {:>2} → loss {:.5}",
        best_cfg["alpha"].as_f64(),
        best_cfg["n_lags"].as_i64(),
        best_loss
    );

    // Random search, same budget.
    let mut rng = StdRng::seed_from_u64(1003);
    let rs_best = (0..20)
        .map(|_| {
            let cfg = space.sample(&mut rng);
            objective(cfg["alpha"].as_f64(), cfg["n_lags"].as_i64() as usize)
        })
        .fold(f64::INFINITY, f64::min);
    println!("RS best:     loss {rs_best:.5} (same 20-evaluation budget)");
    println!(
        "\nBO {} random search on this problem.",
        if best_loss <= rs_best {
            "matched or beat"
        } else {
            "lost to"
        }
    );
}
