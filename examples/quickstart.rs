//! Quickstart: run the full FedForecaster pipeline on a small simulated
//! federation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps shown:
//! 1. Build a (small) knowledge base offline and train the meta-model.
//! 2. Simulate a federation: one seasonal series split across 5 clients.
//! 3. Run Algorithm 1 and inspect the result.

use fedforecaster::prelude::*;
use fedforecaster::FedForecaster;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};

fn main() {
    // ── Offline phase (done once, §4.1.1) ────────────────────────────────
    println!("building knowledge base (32 synthetic datasets)…");
    let kb = KnowledgeBase::build(&synthetic_kb(32), &[5, 10], 60);
    println!("  {} labelled records", kb.len());
    let meta =
        MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("meta-model training");

    // ── A federation of 5 clients (private splits of one daily series) ──
    let series = generate(
        &SynthesisSpec {
            n: 3000,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 7.0,
                amplitude: 3.0,
            }],
            snr: Some(15.0),
            missing_fraction: 0.02,
            ..Default::default()
        },
        42,
    );
    let clients = series.split_clients(5);
    println!(
        "federation: {} clients × ~{} observations",
        clients.len(),
        clients[0].len()
    );

    // ── Online phase (Algorithm 1) ───────────────────────────────────────
    let cfg = EngineConfig {
        budget: Budget::Iterations(12),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta)
        .run(&clients)
        .expect("engine run");

    println!(
        "\nmeta-model recommended: {:?}",
        result
            .recommended
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
    );
    println!("best algorithm:   {}", result.best_algorithm.name());
    println!("validation loss:  {:.5}", result.best_valid_loss);
    println!("test MSE:         {:.5}", result.test_mse);
    println!("evaluations:      {}", result.evaluations);
    println!(
        "communication:    {:.1} KiB down / {:.1} KiB up",
        result.bytes_to_clients as f64 / 1024.0,
        result.bytes_to_server as f64 / 1024.0
    );
    println!("elapsed:          {:.2?}", result.elapsed);
}
