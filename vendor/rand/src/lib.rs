//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds in a network-isolated container, so `rand` is
//! replaced via `[patch.crates-io]` by this std-only implementation of
//! the exact surface the code uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, well-distributed, and fast. Streams are
//! **not** bit-compatible with upstream `rand`; nothing in the workspace
//! pins upstream streams (seeds only guarantee reproducibility within a
//! build).

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the
/// real crate): floats uniform in `[0, 1)`, integers uniform over their
/// full range.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform dyadic rationals in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is ≤ span/2^64 — negligible for test workloads.
                (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let f = <$t as StandardSample>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing extension trait (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction; only the `seed_from_u64` entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        // Inclusive float upper bound behaves.
        let g = rng.gen_range(1.0f64..=1.0);
        assert_eq!(g, 1.0);
    }

    #[test]
    fn every_int_bucket_is_hit() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
