//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset the workspace uses, backed by
//! `std::sync::mpsc`. The receiver is wrapped in an `Arc<Mutex<…>>` so it
//! stays `Sync + Clone` like crossbeam's (std's receiver is neither);
//! contention is irrelevant here because each FL channel has exactly one
//! consumer.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel (`Sync + Clone`, like
    /// crossbeam's multi-consumer receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded::<u8>();
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
    }
}
