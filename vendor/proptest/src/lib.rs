//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in a network-isolated container; this crate
//! re-implements the proptest API subset its test suites use, keeping
//! every `proptest!` block compiling and running unmodified:
//!
//! - strategies: numeric ranges, [`Just`], `any::<T>()`, tuples,
//!   `prop::collection::{vec, btree_map}`, `&str` character-class
//!   patterns (`"[a-z0-9 ]{0,20}"`), `.prop_map`, `prop_oneof!`;
//! - the [`proptest!`] macro with `#![proptest_config(...)]`;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: case generation is **deterministic** (the
//! RNG seed is derived from the test's module path, overridable via
//! `PROPTEST_SEED`), and failing cases are reported but **not shrunk**.
//! Passing suites behave identically; only the failure-debugging
//! ergonomics are simpler.

pub mod test_runner {
    /// Deterministic SplitMix64 stream driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }

        /// Seed derived from the test name (stable across runs) xor'd
        /// with the optional `PROPTEST_SEED` env override.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let env: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            TestRng::from_seed(h ^ env)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            W: Debug,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, W, F> Strategy for Map<S, F>
    where
        S: Strategy,
        W: Debug,
        F: Fn(S::Value) -> W,
    {
        type Value = W;

        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<V>: Send + Sync {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy + Send + Sync> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.usize_in(0, self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty strategy range");
                    (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty strategy range");
                    (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, wide-range values (upstream also generates specials;
            // no workspace test relies on that).
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// `any::<T>()` strategy handle.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// `&str` character-class patterns: a sequence of `[class]` atoms or
    /// literal characters, each optionally quantified by `{n}`, `{m,n}`,
    /// `?`, `*`, or `+` (bounded at 8 for the unbounded quantifiers).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    rng.usize_in(*lo, hi + 1)
                };
                for _ in 0..n {
                    out.push(chars[rng.usize_in(0, chars.len())]);
                }
            }
            out
        }
    }

    /// Parses the supported pattern subset into (alphabet, min, max) runs.
    fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let alphabet: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    for d in chars.by_ref() {
                        match d {
                            ']' => break,
                            '-' if prev.is_some() => {
                                // Range like a-z: filled on the next char.
                                set.push('-');
                            }
                            d => {
                                if set.last() == Some(&'-') && prev.is_some() {
                                    set.pop();
                                    let start = prev.unwrap();
                                    for r in (start as u32 + 1)..=(d as u32) {
                                        set.push(char::from_u32(r).unwrap());
                                    }
                                } else {
                                    set.push(d);
                                }
                                prev = Some(d);
                            }
                        }
                    }
                    set
                }
                lit => vec![lit],
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                    match spec.split_once(',') {
                        Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                        None => {
                            let n = spec.parse().unwrap();
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!alphabet.is_empty(), "empty character class in pattern");
            atoms.push((alphabet, lo, hi));
        }
        atoms
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;

    /// Collection sizes: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo, self.hi + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// BTree maps; key collisions may yield fewer entries than drawn,
    /// matching upstream's best-effort sizing.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord + Debug,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord + Debug,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-block macro: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let described = format!("{:?}", values);
                let ($($arg,)+) = values;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || { $body; },
                ));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        described,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generates_within_class() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-z0-9 ]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
        for _ in 0..50 {
            let s = "[a-z_]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![
            (0.0f64..1.0).prop_map(|f| (f * 0.0) as i64),
            Just(7i64),
            (10i64..20),
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        let mut saw_seven = false;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || v == 7 || (10..20).contains(&v));
            saw_seven |= v == 7;
        }
        assert!(saw_seven);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(
            n in 1usize..10,
            v in prop::collection::vec(-1.0f64..1.0, 0..5),
            (a, b) in (0u64..5, 5u64..10),
        ) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!(v.len() < 5);
            prop_assert!(a < 5 && b >= 5);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..100) {
            prop_assert!(x < 100);
        }
    }
}
