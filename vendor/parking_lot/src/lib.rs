//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in a network-isolated container, so external
//! crates are replaced by minimal std-only equivalents via
//! `[patch.crates-io]` (see the workspace `Cargo.toml`). Only the API
//! surface the workspace actually uses is provided: `Mutex`/`RwLock`
//! with the parking_lot signature (no lock poisoning — a panic while
//! holding the lock simply releases it).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error:
/// like parking_lot, a panic in a critical section releases the lock and
/// later callers observe the (possibly partial) protected state.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the parking_lot (non-poisoning) signature.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
