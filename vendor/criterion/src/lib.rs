//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks compile and run as plain timed loops: each target executes
//! a fixed warm-up plus `sample_size` timed iterations and prints the
//! median wall-clock per iteration. No statistics, plots, or baselines —
//! just enough to keep `cargo bench` meaningful in a network-isolated
//! container and to keep the bench targets compiling under
//! `clippy --all-targets`.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A named benchmark id: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `sample` runs of `f` (after one warm-up call) and records
    /// each duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = black_box(f());
        for _ in 0..self.samples.capacity().max(1) {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                let _ = black_box(f());
            }
            self.samples.push(t.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size.min(10)),
            iters_per_sample: 1,
        };
        f(&mut b);
        println!("bench {}/{id}: median {:?}", self.name, b.median());
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
