//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the FL wire codec uses: a cheaply-cloneable
//! shared byte buffer ([`Bytes`], an `Arc<[u8]>` window), a growable
//! builder ([`BytesMut`]), and the little-endian cursor traits
//! ([`Buf`] / [`BufMut`]). Reading through [`Buf`] consumes from the
//! front of the window without copying or reallocating.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied once; the real crate borrows,
    /// but callers only observe the contents).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-window of this buffer.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = data.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts the accumulated bytes into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor over a byte source; reads consume from the
/// front. Callers must check [`Buf::remaining`] first — like the real
/// crate, reading past the end panics.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_bytes(&mut self, n: usize) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    fn advance(&mut self, cnt: usize) {
        self.take_bytes(cnt);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

impl Bytes {
    /// Consumes `len` bytes from the front as a zero-copy sub-buffer.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Little-endian write cursor.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(42);
        w.put_u64_le(u64::MAX);
        w.put_i64_le(-5);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 42);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(&b.copy_to_bytes(3)[..], b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[2]);
        // The parent window is untouched.
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(std::ptr::eq(&b.data[0], &c.data[0]));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
